"""Tracing overhead bench: the observability tax on the dispatch path.

The ISSUE acceptance floor: with the default :class:`NullTracer`, a fully
instrumented gateway dispatch must cost no more than 5% over a dispatch
with no tracing touchpoints at all — tracing must be free when off.  The
untraced baseline is re-created here as subclasses that strip every
tracer call from ``dispatch``/``submit`` (the pre-instrumentation code
path); a recording tracer is benched alongside so the cost of actually
keeping spans stays visible and bounded.
"""

import time

import pytest

from repro.gateway.gateway import APIGateway
from repro.gateway.services import (
    Machine,
    MicroService,
    RequestRecord,
    Request,
    ServiceTimeModel,
)
from repro.gateway.simulation import Simulator
from repro.tracing import NULL_TRACER, TraceCollector, Tracer

N_REQUESTS = 3000
REPEATS = 5
#: NullTracer dispatch may cost at most this fraction over untraced.
NULL_OVERHEAD_CEILING = 0.05
#: A recording tracer (8 spans/request, attributes, collection) stays
#: within this factor of the untraced baseline — the "tracing on" budget.
RECORDING_OVERHEAD_CEILING = 10.0


class UntracedMicroService(MicroService):
    """``submit``/``_start`` exactly as before the tracing PR: no spans."""

    def submit(self, request, sim, on_complete, tracer=None, parent=None):
        record = RequestRecord(request=request, arrival=sim.now)
        if not self.service_time.supports(request.payload):
            record.success = False
            record.error = f"unsupported payload {request.payload!r}"
            record.start = record.end = sim.now
            self.completed.append(record)
            on_complete(record)
            return
        if self._busy < self.concurrency:
            self._start(record, sim, on_complete)
        elif len(self._waiting) < self.queue_capacity:
            self._waiting.append((record, on_complete))
            self._peak_queue = max(self._peak_queue, len(self._waiting))
        else:
            self.rejected += 1
            record.success = False
            record.error = "queue full (503)"
            record.start = record.end = sim.now
            self.completed.append(record)
            on_complete(record)

    def _start(self, record, sim, on_complete, *span_args):
        self._busy += 1
        record.start = sim.now

        def finish():
            record.end = sim.now
            self._busy -= 1
            self._busy_seconds += record.end - record.start
            self.completed.append(record)
            if self._waiting:
                next_record, next_callback = self._waiting.pop(0)
                self._start(next_record, sim, next_callback)
            on_complete(record)

        sim.schedule(self.service_time.sample(record.request.payload), finish)


class UntracedGateway(APIGateway):
    """``dispatch`` exactly as before the tracing PR: no tracer touchpoints."""

    def dispatch(self, request, on_response):
        arrived = self.sim.now
        request.created_at = arrived
        if request.route not in self._routes:
            record = RequestRecord(
                request=request,
                arrival=arrived,
                start=arrived,
                end=arrived,
                success=False,
                error=f"404 unknown route {request.route!r}",
            )
            self.records.append(record)
            self.sim.schedule(self.overhead_seconds, lambda: on_response(record))
            return
        service = self._routes[request.route]

        def submit():
            service.submit(request, self.sim, service_done)

        def service_done(record):
            def deliver():
                record.arrival = arrived
                record.end = self.sim.now
                self.records.append(record)
                on_response(record)

            self.sim.schedule(self.overhead_seconds, deliver)

        self.sim.schedule(self.overhead_seconds, submit)


def run_dispatches(gateway_cls, service_cls, tracer_factory):
    """Drive N_REQUESTS through a fresh rig; return wall-clock seconds."""
    sim = Simulator()
    tracer = tracer_factory(sim)
    gateway = gateway_cls(sim, overhead_seconds=0.002, tracer=tracer)
    gateway.register(
        service_cls(
            name="svc",
            machine=Machine("host", vcpus=8, ram_gb=16),
            service_time=ServiceTimeModel({"tabular": 0.05}, jitter=0.0),
            concurrency=8,
            queue_capacity=N_REQUESTS,
            stages={"pipeline.preprocess": 1.0, "pipeline.predict": 3.0},
        )
    )
    done = []
    for i in range(N_REQUESTS):
        request = Request(request_id=i, route="svc")
        sim.schedule(
            i * 0.001,
            (lambda r: lambda: gateway.dispatch(r, done.append))(request),
        )
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert len(done) == N_REQUESTS
    assert all(r.success for r in done)
    return elapsed


def best_of(repeats, fn):
    return min(fn() for __ in range(repeats))


@pytest.fixture(scope="module")
def timings():
    results = {
        "untraced": best_of(
            REPEATS,
            lambda: run_dispatches(
                UntracedGateway, UntracedMicroService, lambda sim: NULL_TRACER
            ),
        ),
        "null_tracer": best_of(
            REPEATS,
            lambda: run_dispatches(
                APIGateway, MicroService, lambda sim: NULL_TRACER
            ),
        ),
        "recording": best_of(
            REPEATS,
            lambda: run_dispatches(
                APIGateway,
                MicroService,
                lambda sim: Tracer(
                    clock=lambda: sim.now,
                    collector=TraceCollector(max_traces=N_REQUESTS),
                    seed=0,
                ),
            ),
        ),
    }
    return results


def test_null_tracer_overhead_under_ceiling(timings, figure_printer):
    null_overhead = timings["null_tracer"] / timings["untraced"] - 1.0
    recording_factor = timings["recording"] / timings["untraced"]
    figure_printer(
        "Tracing overhead on the dispatch path "
        f"({N_REQUESTS} requests, best of {REPEATS})",
        ["variant", "seconds", "vs untraced"],
        [
            ["untraced", f"{timings['untraced']:.4f}", "1.00x"],
            [
                "null tracer",
                f"{timings['null_tracer']:.4f}",
                f"{timings['null_tracer'] / timings['untraced']:.2f}x",
            ],
            [
                "recording",
                f"{timings['recording']:.4f}",
                f"{recording_factor:.2f}x",
            ],
        ],
    )
    assert null_overhead <= NULL_OVERHEAD_CEILING, (
        f"NullTracer dispatch overhead {null_overhead:.1%} exceeds "
        f"{NULL_OVERHEAD_CEILING:.0%}"
    )
    assert recording_factor <= RECORDING_OVERHEAD_CEILING


def test_recording_run_collects_complete_traces():
    sim = Simulator()
    collector = TraceCollector(max_traces=N_REQUESTS)
    tracer = Tracer(clock=lambda: sim.now, collector=collector, seed=0)
    gateway = APIGateway(sim, tracer=tracer)
    gateway.register(
        MicroService(
            name="svc",
            machine=Machine("host", vcpus=4, ram_gb=8),
            service_time=ServiceTimeModel({"tabular": 0.01}, jitter=0.0),
        )
    )
    done = []
    for i in range(50):
        request = Request(request_id=i, route="svc")
        sim.schedule(
            0.0, (lambda r: lambda: gateway.dispatch(r, done.append))(request)
        )
    sim.run()
    assert len(collector.traces()) == 50
    assert tracer.active_spans == 0
