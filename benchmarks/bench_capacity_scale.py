"""Capacity-at-scale speedups: columnar pipeline vs the record path.

This bench gates the million-request capacity runner's four contracts:

* a 200k-request Fig. 8 closed-loop replay through
  :class:`~repro.gateway.capacity.CapacityRunner` must beat the seed
  record path by ``CAPACITY_SPEEDUP_FLOOR``.  The baseline is the
  preserved seed implementation
  (:class:`~repro.gateway._reference.ReferenceLoadGenerator` — closure
  chains, per-request record retention, re-filtering summary), mirroring
  how ``bench_inference.py`` measures against the pre-vectorization SHAP
  loop;
* the allocation-free event loop must sustain at least
  ``EVENTS_PER_SECOND_FLOOR`` simulator events per second on a
  near-capacity open-loop workload (best of three passes);
* the streaming quantile sketch must agree with the exact vectorized
  oracle (:func:`~repro.gateway.capacity.summary_from_log`) to within
  ``SKETCH_REL_ERROR_CEIL`` at p50/p95/p99 on the replay's retained log;
* a 1M-request open-loop run in ring mode must finish with the record
  log's capacity unchanged (memory bounded by in-flight count, not run
  length) while still publishing telemetry summaries and trace-linked
  latency exemplars.

``python benchmarks/bench_capacity_scale.py`` writes the measured
numbers to ``BENCH_capacity.json`` as the committed baseline.
"""

import gc
import json
import time
from pathlib import Path

import pytest

from repro.gateway import ThreadGroup, build_paper_deployment
from repro.gateway._reference import ReferenceLoadGenerator
from repro.gateway.arrivals import PoissonArrivalGroup
from repro.gateway.capacity import CapacityRunner, summary_from_log
from repro.telemetry import KIND_LOAD_SUMMARY, KIND_RESPONSE, TelemetryBus
from repro.tracing import TraceCollector, Tracer

#: Floors/ceilings the committed baseline and live measurements must
#: clear.  Measured values carry real headroom (replay speedup lands
#: well above 4x; throughput ~15% above the floor on the reference
#: machine) so only a genuine regression trips them.
CAPACITY_SPEEDUP_FLOOR = 4.0
EVENTS_PER_SECOND_FLOOR = 300_000.0
SKETCH_REL_ERROR_CEIL = 0.01

#: Wall-clock budget for the whole measurement pass; dominated by the
#: deliberately slow record-path replay.
MEASUREMENT_BUDGET_S = 300.0

#: Fig. 8 replay at 200k requests: the paper's 100-thread SHAP scenario
#: scaled up in iterations, plus a LIME image route for a second
#: service-time distribution.
REPLAY_GROUPS = (
    ThreadGroup(
        "shap", n_threads=100, rampup_seconds=1.0, iterations=1500
    ),
    ThreadGroup(
        "lime",
        n_threads=50,
        rampup_seconds=1.0,
        iterations=1000,
        payload="image",
    ),
)
REPLAY_REQUESTS = sum(g.n_threads * g.iterations for g in REPLAY_GROUPS)

_BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_capacity.json"


def _record_replay():
    sim, gateway = build_paper_deployment(seed=5)
    generator = ReferenceLoadGenerator(sim, gateway)
    for group in REPLAY_GROUPS:
        generator.add_thread_group(group)
    gc.collect()
    start = time.perf_counter()
    report = generator.run()
    return time.perf_counter() - start, report


def _columnar_replay():
    sim, gateway = build_paper_deployment(seed=5)
    runner = CapacityRunner(sim, gateway, retain_records=True, seed=5)
    for group in REPLAY_GROUPS:
        runner.add_thread_group(group)
    gc.collect()
    start = time.perf_counter()
    report = runner.run()
    return time.perf_counter() - start, report, runner


def _replay_pair(n=3):
    """Best-of-``n`` for both replay paths, passes interleaved.

    Alternating the two paths exposes them to the same clock-frequency
    drift (the first-measured path would otherwise soak up the cold-CPU
    boost window and skew the ratio).  Only the first pass's report and
    runner are retained: the record report drags ~400k timeline tuples
    behind it, and keeping three of those alive makes every later
    full GC pass — charged to whichever path happens to be running —
    scan them.  Each pass starts from a freshly collected heap
    (``gc.collect()`` before the clock starts) but runs with the
    collector *enabled*: the record path's closure cycles are real cost
    the seed implementation pays in production, so they stay on the
    clock.
    """
    record_times, columnar_times = [], []
    record_report = columnar_report = runner = None
    for __ in range(n):
        elapsed, report = _record_replay()
        record_times.append(elapsed)
        if record_report is None:
            record_report = report
        del report
        elapsed, report, run = _columnar_replay()
        columnar_times.append(elapsed)
        if columnar_report is None:
            columnar_report, runner = report, run
        del report, run
    return (
        (min(record_times), record_report),
        (min(columnar_times), columnar_report, runner),
    )


def _throughput_pass():
    """Events/s on a near-capacity open-loop workload (one pass)."""
    sim, gateway = build_paper_deployment(seed=2)
    runner = CapacityRunner(sim, gateway, retain_records=False, seed=2)
    runner.add_open_loop(
        PoissonArrivalGroup("shap", rate_rps=400.0, n_requests=200_000)
    )
    start = time.perf_counter()
    runner.run()
    elapsed = time.perf_counter() - start
    return sim.processed_events / elapsed


def _million_request_run():
    """1M open-loop requests in ring mode with tracing + telemetry on."""
    collector = TraceCollector()
    bus = TelemetryBus()
    received = []
    bus.subscribe("bench", "gateway", callback=received.append)
    sim, gateway = build_paper_deployment(seed=9)
    # the tracer's clock is the simulator built one line up, so it is
    # attached after construction rather than through the factory
    gateway.tracer = Tracer(lambda: sim.now, collector=collector, seed=9)
    runner = CapacityRunner(
        sim,
        gateway,
        retain_records=False,
        seed=9,
        trace_every=5000,
        telemetry=bus,
    )
    runner.add_open_loop(
        PoissonArrivalGroup("shap", rate_rps=4000.0, n_requests=875_000)
    )
    runner.add_open_loop(
        PoissonArrivalGroup(
            "lime", rate_rps=500.0, n_requests=125_000, payload="image"
        )
    )
    capacity_before = runner.log.capacity
    start = time.perf_counter()
    report = runner.run()
    elapsed = time.perf_counter() - start
    exemplars = runner.exemplar_events()
    recorded_traces = {t.trace_id for t in collector.traces()}
    return {
        "million_requests": report.n_requests,
        "million_seconds": elapsed,
        "million_events": sim.processed_events,
        "million_capacity_before": capacity_before,
        "million_capacity_after": runner.log.capacity,
        "million_rows_recycled": runner.log.recycled,
        "million_summary_events": sum(
            1 for e in received if e.kind == KIND_LOAD_SUMMARY
        ),
        "million_exemplars": len(exemplars),
        "million_exemplars_trace_linked": all(
            e.kind == KIND_RESPONSE
            and e.trace_id is not None
            and e.trace_id in recorded_traces
            for e in exemplars
        ),
    }


def measure_all():
    """Run every measurement once; returns the figures the asserts gate."""
    started = time.perf_counter()
    results = {}

    # -- 200k-request Fig. 8 replay: record path vs columnar path ---------
    # interleaved best-of-3 so one noisy pass or clock drift cannot skew
    # the ratio
    (record_s, record_report), (columnar_s, columnar_report, runner) = (
        _replay_pair(3)
    )
    results["replay_requests"] = REPLAY_REQUESTS
    results["replay_record_s"] = record_s
    results["replay_columnar_s"] = columnar_s
    results["replay_speedup"] = record_s / columnar_s
    results["replay_counts_equal"] = bool(
        columnar_report.n_requests == record_report.n_requests
        == REPLAY_REQUESTS
        and columnar_report.n_errors == record_report.n_errors
    )

    # -- sketch vs exact oracle on the replay's retained log --------------
    oracle = summary_from_log(runner.log, columnar_report.duration_seconds)
    for q, field in (
        (50, "median_response_ms"),
        (95, "p95_response_ms"),
        (99, "p99_response_ms"),
    ):
        exact = getattr(oracle, field)
        approx = getattr(columnar_report, field)
        results[f"sketch_p{q}_rel_error"] = abs(approx - exact) / exact
    results["sketch_max_rel_error"] = max(
        results[f"sketch_p{q}_rel_error"] for q in (50, 95, 99)
    )

    # -- event-loop throughput: best of three near-capacity passes --------
    results["events_per_second"] = max(_throughput_pass() for __ in range(3))

    # -- 1M-request open-loop run: flat memory + bounded observability ----
    results.update(_million_request_run())

    results["measurement_seconds"] = time.perf_counter() - started
    return results


@pytest.fixture(scope="module")
def measurements(figure_printer):
    results = measure_all()
    figure_printer(
        "capacity at scale: measured figures",
        ["metric", "value"],
        [
            ("replay record path (s)", results["replay_record_s"]),
            ("replay columnar path (s)", results["replay_columnar_s"]),
            ("replay speedup", results["replay_speedup"]),
            ("events/second", results["events_per_second"]),
            ("sketch max rel error", results["sketch_max_rel_error"]),
            ("1M-run seconds", results["million_seconds"]),
            ("1M-run rows recycled", results["million_rows_recycled"]),
        ],
    )
    return results


def bench_columnar_replay_speedup(check, measurements):
    """200k-request Fig. 8 replay: columnar >=4x over the record path."""

    def verify():
        assert measurements["replay_counts_equal"]
        assert measurements["replay_speedup"] >= CAPACITY_SPEEDUP_FLOOR, (
            f"capacity replay speedup {measurements['replay_speedup']:.2f}x "
            f"below the {CAPACITY_SPEEDUP_FLOOR}x floor"
        )

    check(verify)


def bench_event_loop_throughput_floor(check, measurements):
    """Allocation-free loop sustains >=300k events/s near capacity."""

    def verify():
        eps = measurements["events_per_second"]
        assert eps >= EVENTS_PER_SECOND_FLOOR, (
            f"simulator sustained {eps:,.0f} events/s, below the "
            f"{EVENTS_PER_SECOND_FLOOR:,.0f} floor"
        )

    check(verify)


def bench_sketch_matches_exact_oracle(check, measurements):
    """Streaming percentiles within 1% of the vectorized exact oracle."""

    def verify():
        assert measurements["sketch_max_rel_error"] <= SKETCH_REL_ERROR_CEIL

    check(verify)


def bench_million_request_memory_is_flat(check, measurements):
    """Ring mode: 1M requests never grow the log beyond its seed capacity."""

    def verify():
        assert measurements["million_requests"] == 1_000_000
        assert (
            measurements["million_capacity_after"]
            == measurements["million_capacity_before"]
        )
        assert measurements["million_rows_recycled"] > 900_000

    check(verify)


def bench_million_request_run_stays_observable(check, measurements):
    """The bounded run still emits summaries and trace-linked exemplars."""

    def verify():
        assert measurements["million_summary_events"] >= 1
        assert measurements["million_exemplars"] >= 1
        assert measurements["million_exemplars_trace_linked"]

    check(verify)


def bench_measurement_under_budget(check, measurements):
    """Whole pass stays interactive (wall-clock-budget pattern)."""

    def verify():
        elapsed = measurements["measurement_seconds"]
        assert elapsed < MEASUREMENT_BUDGET_S, (
            f"capacity measurements took {elapsed:.1f}s, "
            f"budget {MEASUREMENT_BUDGET_S}s"
        )

    check(verify)


def bench_matches_committed_baseline(check, measurements):
    """Committed BENCH_capacity.json must still clear the same floors.

    Only the floors are asserted (exact timings are machine-dependent)
    so the JSON cannot drift out of contract.
    """

    def verify():
        if not _BASELINE_PATH.exists():
            return
        baseline = json.loads(_BASELINE_PATH.read_text())
        assert baseline["replay_speedup"] >= CAPACITY_SPEEDUP_FLOOR
        assert baseline["events_per_second"] >= EVENTS_PER_SECOND_FLOOR
        assert baseline["sketch_max_rel_error"] <= SKETCH_REL_ERROR_CEIL
        assert baseline["replay_counts_equal"] is True
        assert (
            baseline["million_capacity_after"]
            == baseline["million_capacity_before"]
        )
        assert baseline["million_exemplars_trace_linked"] is True

    check(verify)


if __name__ == "__main__":
    figures = measure_all()
    _BASELINE_PATH.write_text(json.dumps(figures, indent=2) + "\n")
    for key, value in figures.items():
        print(f"{key:32s} {value}")
