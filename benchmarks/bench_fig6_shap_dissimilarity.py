"""Fig. 6(a)-iv: SHAP-dissimilarity of similar instances vs poison rate.

The paper explains the procedure: for each fall instance in the clean test
set take its five Euclidean nearest neighbours, average the distance of
their SHAP explanations, then average across instances.  The metric must be
*higher at higher poisoning rates*, "suggesting its capability of indicating
poisoning of the data set".
"""

import pytest

from repro.attacks import RandomLabelFlippingAttack
from repro.ml import MLPClassifier
from repro.xai import KernelShapExplainer, knn_explanation_dissimilarity

RATES = (0.0, 0.05, 0.10, 0.20, 0.30, 0.50)
N_FALL_INSTANCES = 20


def _dnn_factory():
    # a compact DNN keeps 6 retrain+explain cycles inside the bench budget
    return MLPClassifier(
        hidden_layers=(64, 32), n_epochs=25, learning_rate=0.01, seed=0
    )


@pytest.fixture(scope="module")
def dissimilarity_series(uc1_split, figure_printer):
    X_train, X_test, y_train, y_test = uc1_split
    falls = X_test[y_test == 1][:N_FALL_INSTANCES]
    series = {}
    for rate in RATES:
        poisoned = RandomLabelFlippingAttack(rate=rate, seed=0).apply(
            X_train, y_train
        )
        model = _dnn_factory().fit(poisoned.X, poisoned.y)
        explainer = KernelShapExplainer(
            model.predict_proba, X_train[:30], n_coalitions=48, seed=0
        )
        explanations = explainer.shap_values_batch(falls, class_index=1)
        series[rate] = knn_explanation_dissimilarity(falls, explanations, k=5)
    figure_printer(
        "Fig. 6(a)-iv: SHAP dissimilarity of 5-NN fall explanations",
        ["p", "dissimilarity"],
        [(f"{r:.0%}", v) for r, v in series.items()],
    )
    return series


def bench_fig6iv_metric_rises_with_poisoning(check, dissimilarity_series):
    """The detector signal: heavy poisoning well above the clean level."""

    def verify():
        assert dissimilarity_series[0.50] > dissimilarity_series[0.0]
        assert dissimilarity_series[0.30] > dissimilarity_series[0.0]

    check(verify)


def bench_fig6iv_trend_is_broadly_increasing(check, dissimilarity_series):
    """Rank correlation between rate and metric must be strongly positive."""

    def verify():
        rates = list(dissimilarity_series)
        values = [dissimilarity_series[r] for r in rates]
        # concordant-pair fraction (Kendall-style) must lean increasing
        increasing_pairs = sum(
            1
            for i in range(len(values))
            for j in range(i + 1, len(values))
            if values[j] > values[i]
        )
        total_pairs = len(values) * (len(values) - 1) // 2
        assert increasing_pairs / total_pairs > 0.6

    check(verify)


def bench_fig6iv_explanation_cost(benchmark, uc1_split):
    """Cost of one SHAP explanation batch — the sensor's polling cost."""
    X_train, X_test, y_train, y_test = uc1_split
    model = _dnn_factory().fit(X_train[:1000], y_train[:1000])
    explainer = KernelShapExplainer(
        model.predict_proba, X_train[:20], n_coalitions=32, seed=0
    )
    falls = X_test[y_test == 1][:5]
    benchmark(lambda: explainer.shap_values_batch(falls, class_index=1))
