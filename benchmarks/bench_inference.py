"""Inference-engine speedups: flat tree eval + single-call batched SHAP.

This bench gates the vectorized inference engine's two contracts:

* the flat-array forest kernel must beat the recursive per-node walk by
  ``FOREST_SPEEDUP_FLOOR`` on a >=10k-row batch while staying *bitwise*
  equal to it, and
* a single Kernel SHAP explanation (256 coalitions, d=8, 100 background
  rows) must beat the seed pipeline — the per-coalition Python loop
  driving recursive tree predictions — by ``SHAP_SPEEDUP_FLOOR`` while
  agreeing to 1e-8.

It also replays the Fig. 8 capacity experiment with the SHAP service
median rescaled by the measured speedup (via ``service_time_overrides``)
and shows the ``xai.shap`` span's critical-path share shrinking inside a
traced explain request.  ``python benchmarks/bench_inference.py`` writes
the measured numbers to ``BENCH_inference.json`` as the committed
baseline.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.gateway import LoadGenerator, ThreadGroup, build_paper_deployment
from repro.ml.forest import RandomForestClassifier
from repro.tracing import TraceCollector, Tracer, critical_path
from repro.xai._reference import loop_shap_values
from repro.xai.shap import KernelShapExplainer

import pytest

#: Speedup floors (new engine vs the seed implementation).  Measured
#: values carry ~30%+ headroom so only a real regression trips them.
FOREST_SPEEDUP_FLOOR = 3.0
SHAP_SPEEDUP_FLOOR = 5.0

#: Wall-clock budget for the whole measurement pass.  Dominated by the
#: deliberately slow "before" pipeline (a ~3 s recursive SHAP loop, run
#: twice); the budget is ~4x the observed total.
MEASUREMENT_BUDGET_S = 120.0

#: Paper-published SHAP tabular median (seconds) from the Fig. 8 cluster
#: config — the "before" service time the capacity replay rescales.
SHAP_TABULAR_MEDIAN_S = 0.0091

_BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_inference.json"


def _best_of(fn, repeats):
    """Minimum wall-clock over ``repeats`` runs (after one warm-up)."""
    fn()
    best = np.inf
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _forest_case():
    """RF at the use-case-1 depth on a network-traffic-width matrix."""
    gen = np.random.default_rng(0)
    X = gen.normal(size=(8000, 24))
    y = gen.integers(0, 2, size=8000)
    model = RandomForestClassifier(n_estimators=40, max_depth=14, seed=0)
    model.fit(X, y)
    X_eval = gen.normal(size=(12000, 24))
    return model, X_eval


def _shap_case():
    """d=8 explanation task: enumeration mode at n_coalitions=256."""
    gen = np.random.default_rng(1)
    X = gen.normal(size=(600, 8))
    y = gen.integers(0, 2, size=600)
    model = RandomForestClassifier(n_estimators=40, max_depth=14, seed=0)
    model.fit(X, y)
    background = gen.normal(size=(100, 8))
    x = gen.normal(size=8)
    X_batch = gen.normal(size=(16, 8))
    return model, background, x, X_batch


def measure_all():
    """Run every measurement once; returns the figures the asserts gate."""
    started = time.perf_counter()
    results = {}

    # -- flat vs recursive forest predict_proba on 12k rows ---------------
    forest, X_eval = _forest_case()
    flat_out = forest.predict_proba(X_eval)
    recursive_out = forest.predict_proba_recursive(X_eval)
    results["forest_bitwise_equal"] = bool(np.array_equal(flat_out, recursive_out))
    flat_s = _best_of(lambda: forest.predict_proba(X_eval), repeats=5)
    recursive_s = _best_of(
        lambda: forest.predict_proba_recursive(X_eval), repeats=3
    )
    results["forest_flat_ms"] = flat_s * 1000
    results["forest_recursive_ms"] = recursive_s * 1000
    results["forest_speedup"] = recursive_s / flat_s

    # -- single SHAP explanation: new engine vs the seed pipeline ---------
    model, background, x, X_batch = _shap_case()
    explainer = KernelShapExplainer(
        model.predict_proba, background, n_coalitions=256, seed=0
    )

    def old_pipeline():
        return loop_shap_values(
            model.predict_proba_recursive,
            background,
            x,
            n_coalitions=256,
            seed=0,
        )

    phi_new = explainer.shap_values(x)
    phi_old = old_pipeline()
    results["shap_max_abs_diff"] = float(np.abs(phi_new - phi_old).max())
    new_s = _best_of(lambda: explainer.shap_values(x), repeats=3)
    old_s = _best_of(old_pipeline, repeats=2)
    results["shap_new_ms"] = new_s * 1000
    results["shap_old_ms"] = old_s * 1000
    results["shap_speedup"] = old_s / new_s

    # -- batch amortization: shared coalitions + one KKT factorization ----
    batch_s = _best_of(lambda: explainer.shap_values_batch(X_batch), repeats=2)
    results["shap_batch_rows"] = X_batch.shape[0]
    results["shap_batch_per_row_ms"] = batch_s / X_batch.shape[0] * 1000

    # -- capacity replay: Fig. 8 with the rescaled SHAP service time ------
    before = _run_shap_route()
    after = _run_shap_route(
        service_time_overrides={
            "shap": {"tabular": SHAP_TABULAR_MEDIAN_S / results["shap_speedup"]}
        }
    )
    results["capacity_before_avg_ms"] = before.avg_response_ms
    results["capacity_after_avg_ms"] = after.avg_response_ms
    results["capacity_before_p95_ms"] = before.p95_response_ms
    results["capacity_after_p95_ms"] = after.p95_response_ms

    # -- critical-path share of xai.shap inside a traced request ----------
    results["shap_critical_share_before"] = _traced_share(
        lambda tracer, parent: _traced_old_shap(
            tracer, parent, model, background, x
        ),
        forest,
        X_eval,
    )
    results["shap_critical_share_after"] = _traced_share(
        lambda tracer, parent: explainer.shap_values(
            x, tracer=tracer, parent=parent
        ),
        forest,
        X_eval,
    )

    results["measurement_seconds"] = time.perf_counter() - started
    return results


def _run_shap_route(service_time_overrides=None):
    sim, gateway = build_paper_deployment(
        seed=1, service_time_overrides=service_time_overrides
    )
    generator = LoadGenerator(sim, gateway)
    generator.add_thread_group(
        ThreadGroup(
            route="shap",
            n_threads=100,
            rampup_seconds=1.0,
            iterations=30,
            payload="tabular",
        )
    )
    return generator.run()


def _traced_old_shap(tracer, parent, model, background, x):
    """The seed pipeline wrapped in the same span the new engine opens."""
    with tracer.span("xai.shap", parent=parent):
        loop_shap_values(
            model.predict_proba_recursive, background, x, n_coalitions=256, seed=0
        )


def _traced_share(explain, forest, X_eval):
    """Critical-path fraction of ``xai.shap`` in a scored+explained request."""
    collector = TraceCollector()
    tracer = Tracer(time.perf_counter, collector=collector)
    with tracer.span("explain.request") as root:
        with tracer.span("pipeline.predict", parent=root):
            forest.predict_proba(X_eval)
        explain(tracer, root)
    tree = collector.traces()[-1]
    segments = critical_path(tree)
    total = sum(segment.seconds for segment in segments)
    shap_time = sum(
        segment.seconds
        for segment in segments
        if segment.span.name == "xai.shap"
    )
    return shap_time / total


@pytest.fixture(scope="module")
def measurements(figure_printer):
    results = measure_all()
    figure_printer(
        "inference engine: measured speedups",
        ["metric", "before", "after", "speedup"],
        [
            (
                "forest 12k rows",
                results["forest_recursive_ms"],
                results["forest_flat_ms"],
                results["forest_speedup"],
            ),
            (
                "shap single",
                results["shap_old_ms"],
                results["shap_new_ms"],
                results["shap_speedup"],
            ),
            (
                "shap batch/row",
                results["shap_old_ms"],
                results["shap_batch_per_row_ms"],
                results["shap_old_ms"] / results["shap_batch_per_row_ms"],
            ),
            (
                "capacity avg ms",
                results["capacity_before_avg_ms"],
                results["capacity_after_avg_ms"],
                results["capacity_before_avg_ms"]
                / results["capacity_after_avg_ms"],
            ),
            (
                "critical share",
                results["shap_critical_share_before"],
                results["shap_critical_share_after"],
                float("nan"),
            ),
        ],
    )
    return results


def bench_forest_flat_vs_recursive(check, measurements):
    """Flat kernel: bitwise-equal and >=3x on a 12k-row batch."""

    def verify():
        assert measurements["forest_bitwise_equal"]
        assert measurements["forest_speedup"] >= FOREST_SPEEDUP_FLOOR, (
            f"forest flat speedup {measurements['forest_speedup']:.2f}x "
            f"below the {FOREST_SPEEDUP_FLOOR}x floor"
        )

    check(verify)


def bench_shap_single_explanation_speedup(check, measurements):
    """One explanation: batched engine >=5x over the seed loop pipeline."""

    def verify():
        assert measurements["shap_max_abs_diff"] < 1e-8
        assert measurements["shap_speedup"] >= SHAP_SPEEDUP_FLOOR, (
            f"shap speedup {measurements['shap_speedup']:.2f}x below the "
            f"{SHAP_SPEEDUP_FLOOR}x floor"
        )

    check(verify)


def bench_shap_batch_amortizes(check, measurements):
    """Batch rows share one coalition sample + KKT solve: per-row cost
    must not exceed the single-explanation cost (small noise margin)."""

    def verify():
        assert measurements["shap_batch_per_row_ms"] <= (
            1.15 * measurements["shap_new_ms"]
        )

    check(verify)


def bench_capacity_improves_with_measured_speedup(check, measurements):
    """Fig. 8 replay: rescaled SHAP median lifts the 100-thread capacity."""

    def verify():
        assert (
            measurements["capacity_after_avg_ms"]
            < measurements["capacity_before_avg_ms"]
        )
        assert (
            measurements["capacity_after_p95_ms"]
            < measurements["capacity_before_p95_ms"]
        )

    check(verify)


def bench_shap_critical_path_share_shrinks(check, measurements):
    """Traced request: xai.shap stops dominating the critical path."""

    def verify():
        before = measurements["shap_critical_share_before"]
        after = measurements["shap_critical_share_after"]
        assert after < before

    check(verify)


def bench_measurement_under_budget(check, measurements):
    """Whole pass stays interactive (wall-clock-budget pattern)."""

    def verify():
        elapsed = measurements["measurement_seconds"]
        assert elapsed < MEASUREMENT_BUDGET_S, (
            f"inference measurements took {elapsed:.1f}s, "
            f"budget {MEASUREMENT_BUDGET_S}s"
        )

    check(verify)


def bench_matches_committed_baseline(check, measurements):
    """Committed BENCH_inference.json must still clear the same floors.

    The baseline records the machine the numbers were taken on; this
    check only asserts the *floors* (not the exact timings, which are
    machine-dependent) so the JSON cannot drift out of contract.
    """

    def verify():
        if not _BASELINE_PATH.exists():
            return
        baseline = json.loads(_BASELINE_PATH.read_text())
        assert baseline["forest_speedup"] >= FOREST_SPEEDUP_FLOOR
        assert baseline["shap_speedup"] >= SHAP_SPEEDUP_FLOOR
        assert baseline["forest_bitwise_equal"] is True
        assert baseline["shap_max_abs_diff"] < 1e-8

    check(verify)


if __name__ == "__main__":
    figures = measure_all()
    _BASELINE_PATH.write_text(json.dumps(figures, indent=2) + "\n")
    for key, value in figures.items():
        print(f"{key:32s} {value}")
