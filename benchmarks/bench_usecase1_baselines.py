"""Use-case-1 clean baselines (§VII text).

Paper-reported accuracies on UniMiB SHAR fall detection:
LR 73 %, DT 90 %, RF 97 %, MLP 97 %, DNN 97 %.

The bench trains each of the five models on the synthetic equivalent and
asserts the paper's ordering (LR weakest, DT intermediate, ensemble/neural
models ≥ 0.93), then times a representative training run.
"""

import pytest

from benchmarks.conftest import uc1_model_factories


@pytest.fixture(scope="module")
def baseline_table(uc1_split, figure_printer):
    X_train, X_test, y_train, y_test = uc1_split
    paper = {"LR": 0.73, "DT": 0.90, "RF": 0.97, "MLP": 0.97, "DNN": 0.97}
    rows = []
    accuracies = {}
    for name, factory in uc1_model_factories().items():
        model = factory().fit(X_train, y_train)
        acc = model.score(X_test, y_test)
        accuracies[name] = acc
        rows.append((name, paper[name], acc))
    figure_printer(
        "§VII use case 1 baselines (paper vs reproduced accuracy)",
        ["model", "paper", "measured"],
        rows,
    )
    return accuracies


def bench_uc1_baseline_shape(check, baseline_table):
    """The ordering the paper reports must reproduce."""

    def verify():
        acc = baseline_table
        assert acc["LR"] < acc["DT"] < max(acc["RF"], acc["MLP"], acc["DNN"])
        assert acc["LR"] < 0.85
        assert acc["RF"] > 0.9
        assert acc["MLP"] > 0.93
        assert acc["DNN"] > 0.93

    check(verify)


def bench_uc1_rf_training_cost(benchmark, uc1_split, baseline_table):
    """Wall-clock of one RF training run (the pipeline micro-service cost)."""
    X_train, __, y_train, __ = uc1_split
    factory = uc1_model_factories()["RF"]
    benchmark(lambda: factory().fit(X_train[:1500], y_train[:1500]))
