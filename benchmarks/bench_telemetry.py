"""Telemetry subsystem bench: bus, WAL and rollup throughput at 100k events.

The ISSUE acceptance floor: the monitoring stream must sustain at least
50 000 events/s through bus + rollups, or it cannot keep up with the
paper's capacity experiments (Fig. 8 drives thousands of responses per
simulated second and every one becomes a telemetry event).  WAL write
and replay rates and query latency are reported alongside so regressions
in any tier show up in the same table.
"""

import time

import pytest

from repro.telemetry import (
    TelemetryBus,
    TelemetryEvent,
    TelemetryPipeline,
    TelemetryQuery,
    TumblingWindowAggregator,
    WriteAheadLog,
    replay,
)

N_EVENTS = 100_000
SUSTAINED_FLOOR = 50_000  # events/s through bus + rollups


@pytest.fixture(scope="module")
def event_stream():
    """100k events: 8 sources, ~100 events/simulated second."""
    return [
        TelemetryEvent(
            source=f"sensor-{i % 8}",
            value=(i % 100) / 100.0,
            timestamp=i * 0.01,
        )
        for i in range(N_EVENTS)
    ]


def rate(n, seconds):
    return n / seconds if seconds > 0 else float("inf")


@pytest.fixture(scope="module")
def throughput(event_stream, tmp_path_factory, figure_printer):
    """Run every tier once over the stream and report one table."""
    results = {}

    bus = TelemetryBus()
    sink = []
    bus.subscribe("sink", topics="t", capacity=N_EVENTS, callback=sink.append)
    start = time.perf_counter()
    for event in event_stream:
        bus.publish("t", event)
    bus.pump()
    results["bus_publish"] = rate(N_EVENTS, time.perf_counter() - start)
    assert len(sink) == N_EVENTS

    pipe = TelemetryPipeline(auto_pump_every=1024).start()
    start = time.perf_counter()
    for event in event_stream:
        pipe.publish("t", event)
    pipe.flush()
    results["bus_rollups"] = rate(N_EVENTS, time.perf_counter() - start)
    assert pipe.rollups.ingested == N_EVENTS
    pipe.close()

    wal_dir = tmp_path_factory.mktemp("bench-wal")
    start = time.perf_counter()
    with WriteAheadLog(wal_dir) as wal:
        for event in event_stream:
            wal.append(event)
    results["wal_write"] = rate(N_EVENTS, time.perf_counter() - start)

    start = time.perf_counter()
    replayed = sum(1 for __ in replay(wal_dir))
    results["wal_replay"] = rate(replayed, time.perf_counter() - start)
    assert replayed == N_EVENTS

    figure_printer(
        f"Telemetry throughput at {N_EVENTS} events (events/s)",
        ["tier", "events/s"],
        [(name, value) for name, value in results.items()],
    )
    return results


@pytest.fixture(scope="module")
def loaded_rollups(event_stream):
    agg = TumblingWindowAggregator(window_seconds=1.0, cascades=(10.0, 60.0))
    agg.ingest_many(event_stream)
    agg.flush()
    return agg


def bench_bus_alone_is_not_the_bottleneck(check, throughput):
    def verify():
        assert throughput["bus_publish"] > throughput["bus_rollups"]

    check(verify)


def bench_sustained_rate_meets_floor(check, throughput):
    """The acceptance criterion: ≥ 50k events/s through bus + rollups."""

    def verify():
        assert throughput["bus_rollups"] >= SUSTAINED_FLOOR

    check(verify)


def bench_wal_keeps_up_with_the_floor(check, throughput):
    def verify():
        assert throughput["wal_write"] >= SUSTAINED_FLOOR

    check(verify)


def bench_replay_recovers_full_stream(check, throughput):
    def verify():
        assert throughput["wal_replay"] > 0

    check(verify)


def bench_top_k_query_latency(benchmark, loaded_rollups):
    query = TelemetryQuery(rollups=loaded_rollups)
    ranking = benchmark(lambda: query.top_k(5))
    assert len(ranking) == 5


def bench_window_range_query_latency(benchmark, loaded_rollups):
    query = TelemetryQuery(rollups=loaded_rollups)
    subset = benchmark(lambda: query.windows(start=100.0, end=200.0))
    assert subset


def bench_rollup_memory_stays_bounded(check, loaded_rollups):
    """Retention caps mean 100k events cannot pin 100k windows."""

    def verify():
        stats = loaded_rollups.stats()
        retained = stats["open_windows"] + stats["closed_windows"]
        assert retained < N_EVENTS / 10

    check(verify)
