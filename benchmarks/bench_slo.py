"""SLO evaluator overhead gate: burn-rate monitoring must ride along free.

The evaluator subscribes to the rollup tier's ``on_finalize`` hook, so
its entire cost is once-per-window, never once-per-event.  This bench
replays a capacity-scale event stream (hundreds of thousands of events
across node-qualified cluster sources) against the *production* SLO
catalogue — full 5 m/1 h and 1 h/6 h window pairs, per-node wildcard
binding — and gates that the subscribed ingest sustains at least
``OVERHEAD_RATIO_FLOOR`` of the bare events/s (i.e. ≤5 % overhead).

Because the evaluator's only execution path is the synchronous
``on_finalize`` callback, a subscribed ingest costs exactly
``bare + evaluator`` time; the bench measures the two components
separately (min over trials each) and derives the ratio from the sum.
Comparing two full end-to-end passes instead would bury the few-percent
signal under run-to-run machine noise on a ~5 s measurement.

``python benchmarks/bench_slo.py`` writes the measured numbers to
``BENCH_slo.json`` as the committed baseline.
"""

import gc
import json
import time
from pathlib import Path

import pytest

from repro.slo import SLOEvaluator, default_definitions
from repro.telemetry.events import TelemetryEvent
from repro.telemetry.rollup import TumblingWindowAggregator

#: Subscribed ingest must keep >=95% of the bare aggregator's events/s.
OVERHEAD_RATIO_FLOOR = 0.95

#: Wall-clock budget for the whole measurement pass.
MEASUREMENT_BUDGET_S = 120.0

N_EVENTS = 480_000
N_NODES = 8
#: Stream span in simulated seconds; with 1 s windows every per-node
#: series holds ~3600 finalised windows, so the production 6 h rule's
#: long lookback covers the whole retained history — the worst case for
#: trailing-burn accounting.
SPAN_SECONDS = 3600.0
WINDOW_SECONDS = 1.0

_BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_slo.json"


def _event_stream():
    """Deterministic capacity-shaped stream: latency per node + 0/1
    availability ticks + a sensor series, every source SLO-monitored."""
    sources = [f"shap@node-{i}" for i in range(N_NODES)]
    sources += ["ok:shap", "performance"]
    n_sources = len(sources)
    step = SPAN_SECONDS / N_EVENTS
    events = []
    for i in range(N_EVENTS):
        source = sources[i % n_sources]
        if source == "ok:shap":
            value = 0.0 if i % 97 == 0 else 1.0
        elif source == "performance":
            value = 0.6 + 0.004 * (i % 100)
        else:
            # latency ms straddling the 250 ms objective threshold
            value = 20.0 + 9.0 * (i % 31)
        events.append(
            TelemetryEvent(source=source, value=value, timestamp=i * step)
        )
    return events


def _bare_pass(events):
    """Seconds for one bare ingest+flush at the capacity window size."""
    aggregator = TumblingWindowAggregator(
        window_seconds=WINDOW_SECONDS, cascades=()
    )
    gc.collect()
    start = time.perf_counter()
    aggregator.ingest_many(events)
    aggregator.flush()
    return time.perf_counter() - start


def _finalized_windows(events):
    """The exact window stream an attached evaluator would consume."""
    aggregator = TumblingWindowAggregator(
        window_seconds=WINDOW_SECONDS, cascades=()
    )
    stats = []
    aggregator.on_finalize(stats.append)
    aggregator.ingest_many(events)
    aggregator.flush()
    return stats


def _evaluator_pass(stats):
    """Seconds a fresh production evaluator spends on the window stream."""
    evaluator = SLOEvaluator(default_definitions())
    observe = evaluator.observe
    gc.collect()
    start = time.perf_counter()
    for stat in stats:
        observe(stat)
    return time.perf_counter() - start, evaluator


def measure_all():
    """Run every measurement once; returns the figures the asserts gate."""
    started = time.perf_counter()
    events = _event_stream()
    stats = _finalized_windows(events)
    bare_seconds = min(_bare_pass(events) for __ in range(3))
    evaluator_seconds = None
    evaluator = None
    for __ in range(3):
        elapsed, evaluator = _evaluator_pass(stats)
        if evaluator_seconds is None or elapsed < evaluator_seconds:
            evaluator_seconds = elapsed
    bare_eps = len(events) / bare_seconds
    subscribed_eps = len(events) / (bare_seconds + evaluator_seconds)
    series = evaluator.status()
    return {
        "n_events": len(events),
        "bare_seconds": bare_seconds,
        "evaluator_seconds": evaluator_seconds,
        "bare_events_per_second": bare_eps,
        "subscribed_events_per_second": subscribed_eps,
        "overhead_ratio": subscribed_eps / bare_eps,
        "windows_evaluated": evaluator.windows_seen,
        "series_bound": len(series),
        "per_node_series": sum(1 for s in series if "@" in s.source),
        "alert_edges": len(evaluator.alerts),
        "measurement_seconds": time.perf_counter() - started,
    }


@pytest.fixture(scope="module")
def measurements(figure_printer):
    results = measure_all()
    figure_printer(
        "slo evaluator overhead: measured figures",
        ["metric", "value"],
        [
            ("bare events/s", results["bare_events_per_second"]),
            ("subscribed events/s", results["subscribed_events_per_second"]),
            ("throughput ratio", results["overhead_ratio"]),
            ("windows evaluated", results["windows_evaluated"]),
            ("series bound", results["series_bound"]),
            ("alert edges", results["alert_edges"]),
        ],
    )
    return results


def bench_subscribed_ingest_keeps_95_percent_throughput(check, measurements):
    """The attached evaluator costs <=5% of bare rollup events/s."""

    def verify():
        ratio = measurements["overhead_ratio"]
        assert ratio >= OVERHEAD_RATIO_FLOOR, (
            f"SLO-subscribed ingest ran at {ratio:.1%} of bare throughput, "
            f"below the {OVERHEAD_RATIO_FLOOR:.0%} floor"
        )

    check(verify)


def bench_the_comparison_is_not_vacuous(check, measurements):
    """The subscribed pass genuinely evaluated the full catalogue."""

    def verify():
        # every finalised window crossed the evaluator...
        assert measurements["windows_evaluated"] >= N_EVENTS / 200
        # ...and the catalogue bound real series, including per-node ones
        assert measurements["series_bound"] >= N_NODES + 2
        assert measurements["per_node_series"] == N_NODES

    check(verify)


def bench_measurement_under_budget(check, measurements):
    """Whole pass stays interactive (wall-clock-budget pattern)."""

    def verify():
        elapsed = measurements["measurement_seconds"]
        assert elapsed < MEASUREMENT_BUDGET_S, (
            f"slo measurements took {elapsed:.1f}s, "
            f"budget {MEASUREMENT_BUDGET_S}s"
        )

    check(verify)


def bench_matches_committed_baseline(check, measurements):
    """Committed BENCH_slo.json must still clear the same floors."""

    def verify():
        if not _BASELINE_PATH.exists():
            return
        baseline = json.loads(_BASELINE_PATH.read_text())
        assert baseline["overhead_ratio"] >= OVERHEAD_RATIO_FLOOR
        assert baseline["n_events"] == N_EVENTS
        assert baseline["per_node_series"] == N_NODES

    check(verify)


if __name__ == "__main__":
    figures = measure_all()
    _BASELINE_PATH.write_text(json.dumps(figures, indent=2) + "\n")
    for key, value in figures.items():
        print(f"{key:36s} {value}")
