"""Static-analysis bench: the full-tree lint must stay interactive.

The lint runs inside tier-1 on every test invocation, so its cost is a
tax on the whole development loop.  The budget asserts the complete
pass — parse every module once, run all rules, build the import graph,
check the contract, detect cycles — finishes well inside a wall-clock
second on the ~90-module tree, with headroom for the tree to triple.
"""

import time

from repro.analysis import run_analysis

#: Full-tree budget in seconds.  The pass is pure-python AST walking;
#: 5 s is ~10x the observed cost so only a real regression trips it.
FULL_TREE_BUDGET_S = 5.0


def test_full_tree_lint_under_budget(figure_printer, benchmark):
    start = time.perf_counter()
    report = benchmark.pedantic(run_analysis, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    figure_printer(
        "static analysis: full-tree lint",
        ["modules", "rules", "findings", "seconds", "budget"],
        [
            [
                report.modules,
                len(report.rule_ids),
                len(report.findings),
                elapsed,
                FULL_TREE_BUDGET_S,
            ]
        ],
    )
    assert report.modules > 20
    assert elapsed < FULL_TREE_BUDGET_S, (
        f"full-tree lint took {elapsed:.2f}s, budget {FULL_TREE_BUDGET_S}s"
    )


def test_per_module_cost_scales(figure_printer):
    """Amortised per-module cost stays in single-digit milliseconds."""
    start = time.perf_counter()
    report = run_analysis()
    elapsed = time.perf_counter() - start
    per_module_ms = 1000.0 * elapsed / max(report.modules, 1)
    figure_printer(
        "static analysis: per-module cost",
        ["modules", "ms/module"],
        [[report.modules, per_module_ms]],
    )
    assert per_module_ms < 50.0
