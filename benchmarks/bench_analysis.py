"""Static-analysis bench: the full-tree lint must stay interactive.

The lint runs inside tier-1 on every test invocation, so its cost is a
tax on the whole development loop.  The budget asserts the complete
pass — parse every module once, run all rules, build the import graph
and call graph, run the whole-program taint rules, check the contract,
detect cycles — finishes well inside a wall-clock second on the
~110-module tree, with headroom for the tree to triple.

The incremental gate protects the edit loop: a warm ``--changed`` run
after a one-file edit replays every clean module from the on-disk
cache and re-analyses only the dirty import closure, so it must beat
the cold whole-tree pass by a wide margin.
"""

import shutil
import time

from repro.analysis import run_analysis
from repro.analysis.runner import default_root, find_baseline

#: Full-tree budget in seconds.  The pass is pure-python AST walking;
#: 5 s is ~10x the observed cost so only a real regression trips it.
FULL_TREE_BUDGET_S = 5.0


def test_full_tree_lint_under_budget(figure_printer, benchmark):
    start = time.perf_counter()
    report = benchmark.pedantic(run_analysis, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    figure_printer(
        "static analysis: full-tree lint",
        ["modules", "rules", "findings", "seconds", "budget"],
        [
            [
                report.modules,
                len(report.rule_ids),
                len(report.findings),
                elapsed,
                FULL_TREE_BUDGET_S,
            ]
        ],
    )
    assert report.modules > 20
    assert elapsed < FULL_TREE_BUDGET_S, (
        f"full-tree lint took {elapsed:.2f}s, budget {FULL_TREE_BUDGET_S}s"
    )


def test_per_module_cost_scales(figure_printer):
    """Amortised per-module cost stays in single-digit milliseconds."""
    start = time.perf_counter()
    report = run_analysis()
    elapsed = time.perf_counter() - start
    per_module_ms = 1000.0 * elapsed / max(report.modules, 1)
    figure_printer(
        "static analysis: per-module cost",
        ["modules", "ms/module"],
        [[report.modules, per_module_ms]],
    )
    assert per_module_ms < 50.0


#: A warm ``--changed`` run after a one-file edit must beat the cold
#: whole-tree pass by at least this factor.
INCREMENTAL_SPEEDUP_FLOOR = 5.0

#: The module edited between warm runs.  A leaf-ish module with a small
#: reverse-import closure models the common edit; modules imported by a
#: third of the tree legitimately dirty a third of the tree.
EDIT_TARGET = "attacks/fgsm.py"


def test_incremental_changed_beats_cold_run(figure_printer, tmp_path):
    """Warm ``--changed`` on a one-file edit is >=5x faster than cold."""
    tree = tmp_path / "repro"
    shutil.copytree(default_root(), tree)
    baseline = find_baseline(default_root())
    cache = tmp_path / "cache.json"

    start = time.perf_counter()
    cold_report = run_analysis(tree, baseline=baseline, cache_path=cache)
    cold = time.perf_counter() - start
    assert cold_report.analyzed == cold_report.modules

    # Re-edit before each warm run so the dirty closure stays dirty;
    # best-of-three filters scheduler noise out of the ratio.
    target = tree / EDIT_TARGET
    warm_samples = []
    analyzed = reused = 0
    for round_no in range(3):
        target.write_text(
            target.read_text(encoding="utf-8") + f"\n# edit {round_no}\n",
            encoding="utf-8",
        )
        start = time.perf_counter()
        warm_report = run_analysis(
            tree, baseline=baseline, cache_path=cache, changed=True
        )
        warm_samples.append(time.perf_counter() - start)
        analyzed, reused = warm_report.analyzed, warm_report.reused
        assert [f.to_dict() for f in warm_report.findings] == [
            f.to_dict() for f in cold_report.findings
        ]
    warm = min(warm_samples)
    speedup = cold / warm

    figure_printer(
        "static analysis: incremental --changed",
        ["cold s", "warm s", "speedup", "analyzed", "replayed"],
        [[cold, warm, speedup, analyzed, reused]],
    )
    assert 0 < analyzed < cold_report.modules
    assert analyzed + reused == cold_report.modules
    assert speedup >= INCREMENTAL_SPEEDUP_FLOOR, (
        f"warm --changed run only {speedup:.1f}x faster than cold "
        f"({warm:.3f}s vs {cold:.3f}s); floor {INCREMENTAL_SPEEDUP_FLOOR}x"
    )
