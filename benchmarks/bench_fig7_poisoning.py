"""Fig. 7(c/d): impact and complexity vs poison percentage.

Poisoning rates {0, 10, 20, 30, 40, 50} % for the label-level attacks plus
the CTGAN-style GAN poisoning, each followed by retraining the NN on the
manipulated data and comparing to the clean baseline.  The paper observes
"an increasing relative trend between increased poisoning and drift in
impact and complexity" — impact grows with the poison fraction, and
complexity (the poisoned fraction itself) grows by construction.
"""

import numpy as np
import pytest

from repro.attacks import (
    GanPoisoningAttack,
    RandomLabelSwappingAttack,
    TargetedLabelFlippingAttack,
)
from repro.ml import MLPClassifier, accuracy_score
from repro.trust.resilience import poisoning_resilience

RATES = (0.0, 0.10, 0.20, 0.30, 0.40, 0.50)


def _nn_factory():
    return MLPClassifier(
        hidden_layers=(32, 16), n_epochs=100, learning_rate=0.01, seed=0
    )


def _attack_for(kind, rate, n_train):
    if kind == "targeted_flip":
        return TargetedLabelFlippingAttack(rate=rate, target_label="video", seed=0)
    if kind == "label_swap":
        return RandomLabelSwappingAttack(rate=rate, seed=0)
    if kind == "gan":
        return GanPoisoningAttack(
            n_synthetic=int(rate * n_train * 4), poison_label="video", seed=0
        )
    raise ValueError(kind)


@pytest.fixture(scope="module")
def poisoning_sweep(uc2_split, figure_printer):
    X_train, X_test, y_train, y_test = uc2_split
    baseline_model = _nn_factory().fit(X_train, y_train)
    baseline = {
        "accuracy": accuracy_score(y_test, baseline_model.predict(X_test))
    }
    results = {}
    for kind in ("targeted_flip", "label_swap", "gan"):
        results[kind] = {}
        for rate in RATES:
            if rate == 0.0:
                results[kind][rate] = poisoning_resilience(
                    baseline, baseline, poison_fraction=0.0
                )
                continue
            attacked = _attack_for(kind, rate, len(y_train)).apply(
                X_train, y_train
            )
            model = _nn_factory().fit(attacked.X, attacked.y)
            metrics = {
                "accuracy": accuracy_score(y_test, model.predict(X_test))
            }
            results[kind][rate] = poisoning_resilience(
                baseline, metrics, poison_fraction=rate
            )
    for panel, field in (("c: impact%", "impact_percent"), ("d: complexity", "complexity")):
        rows = [
            (kind, *(getattr(results[kind][r], field if field != "impact_percent" else "impact_percent") for r in RATES))
            for kind in results
        ]
        figure_printer(
            f"Fig. 7({panel}) vs poison rate",
            ["attack", *(f"{r:.0%}" for r in RATES)],
            rows,
        )
    return results


def bench_fig7c_impact_increases_with_poisoning(check, poisoning_sweep):
    """Heavy targeted flipping must hurt far more than none."""

    def verify():
        flips = poisoning_sweep["targeted_flip"]
        assert flips[0.50].impact > flips[0.0].impact
        assert flips[0.50].impact > 0.2

    check(verify)


def bench_fig7c_trend_broadly_increasing(check, poisoning_sweep):
    """Concordant-pair fraction of the targeted-flip impact series > 0.6."""

    def verify():
        series = [poisoning_sweep["targeted_flip"][r].impact for r in RATES]
        pairs = [
            (i, j)
            for i in range(len(series))
            for j in range(i + 1, len(series))
        ]
        concordant = sum(1 for i, j in pairs if series[j] >= series[i])
        assert concordant / len(pairs) > 0.6

    check(verify)


def bench_fig7d_complexity_tracks_poison_fraction(check, poisoning_sweep):
    """Poisoning complexity is the poisoned fraction — exactly linear."""

    def verify():
        for kind in poisoning_sweep:
            for rate in RATES:
                assert poisoning_sweep[kind][rate].complexity == pytest.approx(
                    rate
                )

    check(verify)


def bench_fig7_gan_poisoning_hurts(check, poisoning_sweep):
    """The GAN attack at 50 %-equivalent volume must register impact."""

    def verify():
        gan = poisoning_sweep["gan"]
        assert gan[0.50].impact >= gan[0.0].impact

    check(verify)


def bench_fig7_single_poison_cycle_cost(benchmark, uc2_split):
    """One poison-retrain-evaluate cycle — the experiment's unit of work."""
    X_train, X_test, y_train, y_test = uc2_split

    def cycle():
        attacked = TargetedLabelFlippingAttack(
            rate=0.2, target_label="video", seed=0
        ).apply(X_train, y_train)
        model = MLPClassifier(
            hidden_layers=(16,), n_epochs=30, learning_rate=0.01, seed=0
        ).fit(attacked.X, attacked.y)
        model.score(X_test, y_test)

    benchmark(cycle)
