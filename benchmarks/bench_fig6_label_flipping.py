"""Fig. 6(a) i-iii: accuracy/precision/recall vs label-flipping rate.

The paper flips labels at p ∈ {0, 1, 5, 10, 20, 30, 40, 50} % and retrains
each of the five models, evaluating on the retained clean test set.  The
reproduced series must show the paper's shape: monotone-ish degradation,
small losses for the strong models at p ≤ 5 %, RF holding near baseline at
30 % and collapsing by 40-50 %.
"""

import numpy as np
import pytest

from benchmarks.conftest import uc1_model_factories
from repro.attacks import RandomLabelFlippingAttack
from repro.ml import accuracy_score, precision_score, recall_score

RATES = (0.0, 0.01, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50)


@pytest.fixture(scope="module")
def flipping_sweep(uc1_split, figure_printer):
    X_train, X_test, y_train, y_test = uc1_split
    results = {}  # model -> rate -> (acc, prec, rec)
    for name, factory in uc1_model_factories().items():
        results[name] = {}
        for rate in RATES:
            poisoned = RandomLabelFlippingAttack(rate=rate, seed=0).apply(
                X_train, y_train
            )
            model = factory().fit(poisoned.X, poisoned.y)
            y_pred = model.predict(X_test)
            results[name][rate] = (
                accuracy_score(y_test, y_pred),
                precision_score(y_test, y_pred),
                recall_score(y_test, y_pred),
            )
    for metric_index, metric_name in enumerate(
        ("accuracy", "precision", "recall")
    ):
        rows = [
            (name, *(results[name][r][metric_index] for r in RATES))
            for name in results
        ]
        figure_printer(
            f"Fig. 6(a)-{'i' * (metric_index + 1)}: {metric_name} vs poison rate",
            ["model", *(f"p={r:.0%}" for r in RATES)],
            rows,
        )
    return results


def bench_fig6_monotone_degradation(check, flipping_sweep):
    """Accuracy at 50 % poison must sit far below the clean baseline."""

    def verify():
        for name, series in flipping_sweep.items():
            assert series[0.50][0] < series[0.0][0] - 0.15, name

    check(verify)


def bench_fig6_strong_models_resist_small_rates(check, flipping_sweep):
    """Paper: DNN/MLP/RF lose little at p ≤ 5 %."""

    def verify():
        for name in ("DNN", "MLP", "RF"):
            series = flipping_sweep[name]
            assert series[0.05][0] > series[0.0][0] - 0.05, name

    check(verify)


def bench_fig6_rf_is_most_resilient_at_30pct(check, flipping_sweep):
    """Paper: at 30 % poison the RF keeps ≈ baseline accuracy, beating the
    average of the other models."""

    def verify():
        rf_drop = flipping_sweep["RF"][0.0][0] - flipping_sweep["RF"][0.30][0]
        others = [
            flipping_sweep[m][0.0][0] - flipping_sweep[m][0.30][0]
            for m in ("LR", "DT")
        ]
        assert rf_drop < np.mean(others)

    check(verify)


def bench_fig6_rf_collapses_past_40pct(check, flipping_sweep):
    """Paper: a significant RF decrease only occurs at 40 %+."""

    def verify():
        series = flipping_sweep["RF"]
        assert series[0.50][0] < series[0.30][0]

    check(verify)


def bench_fig6_average_fall_detection_drop(check, flipping_sweep):
    """Paper: mean accuracy across models falls from ≈0.90 to ≈0.75 over
    the sweep; we assert a substantial mean drop (> 10 points)."""

    def verify():
        mean_clean = np.mean([s[0.0][0] for s in flipping_sweep.values()])
        mean_worst = np.mean([s[0.50][0] for s in flipping_sweep.values()])
        assert mean_clean - mean_worst > 0.10

    check(verify)


def bench_fig6_single_retrain_cost(benchmark, uc1_split):
    """Cost of one poisoned-retrain cycle (the monitoring-loop unit)."""
    X_train, __, y_train, __ = uc1_split
    factory = uc1_model_factories()["DT"]

    def cycle():
        poisoned = RandomLabelFlippingAttack(rate=0.2, seed=0).apply(
            X_train[:1500], y_train[:1500]
        )
        factory().fit(poisoned.X, poisoned.y)

    benchmark(cycle)
