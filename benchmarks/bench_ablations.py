"""Ablations of the design choices DESIGN.md §6 calls out.

1. Kernel-SHAP coalition budget vs attribution error (why 48-128 coalitions
   suffice for the sensors);
2. Random-forest ensemble size vs label-flipping resilience (why bagging is
   the Fig. 6 robustness mechanism);
3. Image-LIME superpixel size vs explanation cost (what drives the Fig. 8d
   latency wall);
4. Gateway worker concurrency vs tabular-SHAP latency (why each metric
   needs its own machine — §IX "cost and complexity").
"""

import numpy as np
import pytest

from repro.attacks import RandomLabelFlippingAttack
from repro.datasets import generate_shape_images
from repro.gateway import LoadGenerator, ThreadGroup
from repro.gateway.gateway import APIGateway
from repro.gateway.services import Machine, MicroService, ServiceTimeModel
from repro.gateway.simulation import Simulator
from repro.ml import MLPClassifier, RandomForestClassifier
from repro.xai import KernelShapExplainer, LimeImageExplainer, exact_shap_values


@pytest.fixture(scope="module")
def shap_budget_ablation(figure_printer):
    gen = np.random.default_rng(0)
    weights = gen.normal(size=10)

    def predict(X):
        return (np.asarray(X) @ weights).reshape(-1, 1)

    background = gen.normal(size=(40, 10))
    x = gen.normal(size=10)
    exact = exact_shap_values(predict, x, background)[:, 0]
    errors = {}
    for budget in (16, 32, 64, 128, 256):
        explainer = KernelShapExplainer(
            predict, background, n_coalitions=budget, seed=0
        )
        phi = explainer.shap_values(x)[:, 0]
        errors[budget] = float(np.abs(phi - exact).mean())
    figure_printer(
        "Ablation 1: Kernel-SHAP coalition budget vs mean |error|",
        ["coalitions", "mean_abs_err"],
        list(errors.items()),
    )
    return errors


def bench_ablation_shap_budget_error_shrinks(check, shap_budget_ablation):
    def verify():
        errors = shap_budget_ablation
        assert errors[256] <= errors[16]
        assert errors[256] < 0.05

    check(verify)


@pytest.fixture(scope="module")
def forest_size_ablation(uc1_split, figure_printer):
    X_train, X_test, y_train, y_test = uc1_split
    poisoned = RandomLabelFlippingAttack(rate=0.3, seed=0).apply(
        X_train[:2000], y_train[:2000]
    )
    accuracies = {}
    for n_trees in (1, 5, 20, 40):
        model = RandomForestClassifier(
            n_estimators=n_trees, max_depth=12, seed=0
        ).fit(poisoned.X, poisoned.y)
        accuracies[n_trees] = model.score(X_test, y_test)
    figure_printer(
        "Ablation 2: RF size vs accuracy under 30% label flipping",
        ["n_trees", "accuracy"],
        list(accuracies.items()),
    )
    return accuracies


def bench_ablation_bagging_drives_poison_resilience(
    check, forest_size_ablation
):
    """More trees must buy back accuracy lost to label noise."""

    def verify():
        acc = forest_size_ablation
        assert acc[40] > acc[1]

    check(verify)


@pytest.fixture(scope="module")
def superpixel_ablation(figure_printer):
    import time

    images, labels = generate_shape_images(n_samples=90, size=16, seed=0)
    X = images.reshape(len(images), -1)
    model = MLPClassifier(
        hidden_layers=(32,), n_epochs=25, learning_rate=0.01, seed=0
    ).fit(X, labels)

    def predict(batch):
        batch = np.asarray(batch)
        return model.predict_proba(batch.reshape(len(batch), -1))

    costs = {}
    for patch in (2, 4, 8):
        explainer = LimeImageExplainer(
            predict, patch=patch, n_samples=150, seed=0
        )
        started = time.perf_counter()
        explainer.explain(images[0], 0)
        costs[patch] = time.perf_counter() - started
    figure_printer(
        "Ablation 3: image-LIME patch size vs explanation seconds",
        ["patch", "seconds"],
        list(costs.items()),
    )
    return costs


def bench_ablation_superpixel_cost_positive(check, superpixel_ablation):
    def verify():
        assert all(c > 0 for c in superpixel_ablation.values())

    check(verify)


@pytest.fixture(scope="module")
def concurrency_ablation(figure_printer):
    def run_with_workers(workers):
        sim = Simulator()
        gateway = APIGateway(sim, overhead_seconds=0.002)
        gateway.register(
            MicroService(
                name="shap",
                machine=Machine("host", vcpus=workers, ram_gb=4),
                service_time=ServiceTimeModel(
                    {"tabular": 0.0091}, jitter=0.12, seed=0
                ),
            )
        )
        generator = LoadGenerator(sim, gateway)
        generator.add_thread_group(
            ThreadGroup(
                route="shap", n_threads=100, rampup_seconds=1.0, iterations=40
            )
        )
        return generator.run().avg_response_ms

    latencies = {w: run_with_workers(w) for w in (1, 2, 4, 8, 16)}
    figure_printer(
        "Ablation 4: SHAP-service workers vs avg latency (100 threads)",
        ["workers", "avg_ms"],
        list(latencies.items()),
    )
    return latencies


def bench_ablation_scaling_workers_cuts_latency(check, concurrency_ablation):
    """Dedicated capacity is the §IX answer to XAI load: latency must fall
    roughly in proportion to worker count."""

    def verify():
        lat = concurrency_ablation
        assert lat[16] < lat[4] < lat[1]
        assert lat[1] / lat[16] > 4.0

    check(verify)


def bench_ablation_sim_throughput(benchmark):
    """Simulator event-processing throughput (engine health check)."""

    def run():
        sim = Simulator()
        for i in range(2000):
            sim.schedule(i * 0.001, lambda: None)
        sim.run()

    benchmark(run)
