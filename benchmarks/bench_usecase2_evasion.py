"""Use-case-2 baselines + FGSM evasion (§VII text).

Paper numbers: baselines NN 96 %, LightGBM 94 %, XGBoost 94 %; after the
FGSM evasion (103 adversarial samples generated from the 103 test samples
on the NN) accuracy falls to NN 71 %, LGBM 72 %, XGB 54 %.  Resilience:
impact NN 29 %, LGBM 28 %, XGB 45 % — XGBoost ≈ 17 points more vulnerable —
with complexity constant ≈ 37.86 µs/sample because generation happens once
on the NN.
"""

import pytest

from repro.attacks import FgsmAttack, ThreatModel
from repro.trust.resilience import evasion_resilience

EPSILON = 0.45  # places the NN impact at ≈29 %, the paper's exact figure


@pytest.fixture(scope="module")
def evasion_results(uc2_split, uc2_models, figure_printer):
    X_train, X_test, y_train, y_test = uc2_split
    attack = FgsmAttack(
        uc2_models["NN"], epsilon=EPSILON, threat_model=ThreatModel.white_box()
    )
    adversarial = attack.apply(X_test, y_test)
    reports = {}
    rows = []
    paper = {
        "NN": (0.96, 0.71, 29.0),
        "LightGBM": (0.94, 0.72, 28.0),
        "XGBoost": (0.94, 0.54, 45.0),
    }
    for name, model in uc2_models.items():
        report = evasion_resilience(
            model, X_test, adversarial.X, y_test, adversarial.cost_seconds
        )
        reports[name] = report
        rows.append(
            (
                name,
                paper[name][0],
                report.details["clean_accuracy"],
                paper[name][1],
                report.details["adversarial_accuracy"],
                paper[name][2],
                report.impact_percent,
            )
        )
    figure_printer(
        "§VII use case 2: FGSM evasion (paper vs measured)",
        [
            "model",
            "p.clean",
            "m.clean",
            "p.adv",
            "m.adv",
            "p.impact%",
            "m.impact%",
        ],
        rows,
    )
    figure_printer(
        "FGSM complexity (paper: constant 37.86 µs/sample)",
        ["model", "µs/sample"],
        [(name, r.complexity) for name, r in reports.items()],
    )
    return reports, adversarial


def bench_uc2_test_set_size_is_103(check, uc2_split):
    """The paper generates 103 adversarial samples from 103 test samples."""

    def verify():
        __, X_test, __, __ = uc2_split
        assert X_test.shape[0] == 103

    check(verify)


def bench_uc2_baselines_high(check, evasion_results, uc2_models, uc2_split):
    def verify():
        __, X_test, __, y_test = uc2_split
        for name, model in uc2_models.items():
            assert model.score(X_test, y_test) > 0.9, name

    check(verify)


def bench_uc2_evasion_degrades_all_models(check, evasion_results):
    def verify():
        reports, __ = evasion_results
        for name, report in reports.items():
            assert report.impact > 0.05, name

    check(verify)


def bench_uc2_tree_ensembles_comparably_vulnerable(check, evasion_results):
    """Paper: XGBoost impact (45 %) ≥ LightGBM (28 %).  Under transfer from
    a generic NN surrogate the two GBDT flavours land close together (the
    paper's large gap reflects their specific XGBoost configuration, which
    the text does not specify); we assert XGBoost is at least as vulnerable
    as LightGBM up to a 5-point tolerance and record the deviation in
    EXPERIMENTS.md."""

    def verify():
        reports, __ = evasion_results
        assert reports["XGBoost"].impact >= reports["LightGBM"].impact - 0.05

    check(verify)


def bench_uc2_complexity_constant_across_victims(check, evasion_results):
    def verify():
        reports, __ = evasion_results
        complexities = {round(r.complexity, 9) for r in reports.values()}
        assert len(complexities) == 1

    check(verify)


def bench_uc2_complexity_order_of_magnitude(check, evasion_results):
    """Paper: ~37.86 µs/sample; ours must be the same order (µs, not ms)."""

    def verify():
        reports, __ = evasion_results
        complexity = next(iter(reports.values())).complexity
        assert 1.0 < complexity < 1000.0

    check(verify)


def bench_uc2_fgsm_generation_cost(benchmark, uc2_split, uc2_models):
    X_train, X_test, y_train, y_test = uc2_split
    attack = FgsmAttack(uc2_models["NN"], epsilon=EPSILON)
    benchmark(lambda: attack.apply(X_test, y_test))
