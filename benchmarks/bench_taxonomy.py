"""Fig. 1 and Fig. 3: the attack taxonomy and pipeline-vulnerability maps.

These figures are qualitative matrices; the bench regenerates both tables
and asserts their structural claims — every training algorithm is
poisonable (Fig. 1), every pipeline stage carries vulnerabilities and all
three CIA attributes appear (Fig. 3) — plus times the registry lookups the
dashboard performs per request.
"""

import pytest

from repro.attacks.taxonomy import (
    ATTACK_TAXONOMY,
    AttackClass,
    algorithms_vulnerable_to,
    attacks_for_algorithm,
)
from repro.attacks.vulnerabilities import (
    PIPELINE_VULNERABILITIES,
    CiaProperty,
    vulnerabilities_at_stage,
)
from repro.ml.pipeline import STAGE_ORDER


@pytest.fixture(scope="module")
def taxonomy_tables(figure_printer):
    attack_columns = list(AttackClass)
    rows = []
    for entry in ATTACK_TAXONOMY:
        marks = [
            "x" if attack in entry.attacks else "." for attack in attack_columns
        ]
        rows.append((entry.algorithm, *marks))
    figure_printer(
        "Fig. 1: attack classes per AI algorithm",
        ["algorithm", *(a.name[:10] for a in attack_columns)],
        rows,
    )
    stage_rows = []
    for stage in STAGE_ORDER:
        for v in vulnerabilities_at_stage(stage):
            cia = "/".join(sorted(p.value[:1].upper() for p in v.compromises))
            stage_rows.append((stage.value, v.name, cia))
    figure_printer(
        "Fig. 3: vulnerabilities per pipeline stage (CIA)",
        ["stage", "vulnerability", "CIA"],
        stage_rows,
    )
    return rows, stage_rows


def bench_fig1_every_algorithm_poisonable(check, taxonomy_tables):
    def verify():
        for entry in ATTACK_TAXONOMY:
            assert AttackClass.DATA_POISONING in entry.attacks

    check(verify)


def bench_fig1_nn_widest_attack_surface(check, taxonomy_tables):
    def verify():
        nn = attacks_for_algorithm("neural_networks")
        assert all(len(e.attacks) <= len(nn) for e in ATTACK_TAXONOMY)

    check(verify)


def bench_fig3_every_stage_vulnerable(check, taxonomy_tables):
    def verify():
        for stage in STAGE_ORDER:
            assert vulnerabilities_at_stage(stage)

    check(verify)


def bench_fig3_cia_complete(check, taxonomy_tables):
    def verify():
        covered = set()
        for v in PIPELINE_VULNERABILITIES:
            covered |= v.compromises
        assert covered == set(CiaProperty)

    check(verify)


def bench_taxonomy_lookup_cost(benchmark):
    """Dashboard-path cost: column lookup across the whole matrix."""
    benchmark(lambda: algorithms_vulnerable_to(AttackClass.MODEL_STEALING))
