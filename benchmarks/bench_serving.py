"""Serving-layer gate: batching must pay for itself without changing bits.

The serving layer (DESIGN.md §15) promises three things at once: fused
kernel calls raise throughput, the explanation cache absorbs repeated
content, and neither changes a single result bit.  This bench runs the
same Zipf-skewed mixed predict/SHAP workload (~3000 requests over ~48
distinct feature vectors, ~30% explains) down both paths and gates:

- **throughput**: the batched+cached engine completes the workload at
  >= ``KERNEL_SPEEDUP_FLOOR`` (3x) the per-request kernel loop;
- **latency**: on the simulated deployment at a rate that saturates the
  per-request path, the batched p95 is equal or better;
- **fidelity**: every engine result — fused predict rows, fused SHAP
  attributions, cache hits — is bitwise-equal to the per-request
  kernel oracle (``np.array_equal``, no tolerance);
- **cache effectiveness**: the Zipf replay produces a non-zero hit
  rate (skew means a handful of vectors dominate arrivals).

``python benchmarks/bench_serving.py`` writes the measured numbers to
``BENCH_serving.json`` as the committed baseline.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.gateway import (
    CapacityRunner,
    PoissonArrivalGroup,
    build_paper_deployment,
)
from repro.ml import RandomForestClassifier
from repro.serving import ServingEngine, ServingPolicy
from repro.xai.shap import KernelShapExplainer

#: Batched engine must finish the workload at >=3x the per-request loop.
KERNEL_SPEEDUP_FLOOR = 3.0

#: Wall-clock budget for the whole measurement pass.
MEASUREMENT_BUDGET_S = 120.0

N_REQUESTS = 3000
N_VECTORS = 48
EXPLAIN_SHARE = 0.3
ZIPF_EXPONENT = 1.1
N_FEATURES = 6

#: Simulated-deployment comparison point: past the per-request path's
#: saturation knee (its p95 blows up to ~270 ms) but comfortably inside
#: the batched path's capacity.
SIM_RATE_RPS = 450.0
SIM_REQUESTS = 3000

POLICY = ServingPolicy(
    max_batch=8, batch_window=0.004, cache_size=256, shed_depth=0
)
#: Logical inter-arrival step fed to the engine clock (pure given now).
ARRIVAL_DT = 0.001

_BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _fixtures():
    """Model, explainer and the Zipf workload, all seeded."""
    rng = np.random.default_rng(7)
    X = rng.normal(size=(400, N_FEATURES))
    y = (X[:, 0] + X[:, 1] * X[:, 2] > 0).astype(int)
    model = RandomForestClassifier(n_estimators=10, max_depth=6, seed=0).fit(
        X, y
    )
    explainer = KernelShapExplainer(
        model.predict_proba, X[:32], n_coalitions=64, seed=0
    )
    vectors = rng.normal(size=(N_VECTORS, N_FEATURES))
    weights = (np.arange(N_VECTORS) + 1.0) ** -ZIPF_EXPONENT
    weights /= weights.sum()
    vector_ids = rng.choice(N_VECTORS, size=N_REQUESTS, p=weights)
    explains = rng.random(N_REQUESTS) < EXPLAIN_SHARE
    return model, explainer, vectors, vector_ids, explains


def _batched_pass(model, explainer, vectors, vector_ids, explains):
    """Seconds + per-request results for one engine (batched) replay."""
    engine = ServingEngine(model.predict_proba, explainer, POLICY)
    requests = []
    start = time.perf_counter()
    for i in range(N_REQUESTS):
        now = i * ARRIVAL_DT
        deadline = engine.next_deadline()
        if deadline is not None and deadline <= now:
            engine.flush_due(now)
        x = vectors[vector_ids[i]]
        if explains[i]:
            requests.append(engine.submit_explain(x, now))
        else:
            requests.append(engine.submit_predict(x, now))
    engine.drain(N_REQUESTS * ARRIVAL_DT)
    elapsed = time.perf_counter() - start
    return elapsed, requests, engine


def _unbatched_pass(model, explainer, vectors, vector_ids, explains):
    """Seconds for the per-request kernel loop over the same workload."""
    start = time.perf_counter()
    for i in range(N_REQUESTS):
        x = vectors[vector_ids[i]]
        if explains[i]:
            explainer.shap_values(x)
        else:
            model.predict_proba(x[None])
    return time.perf_counter() - start


def _oracle(model, explainer, vectors):
    """Per-request kernel results, one call per distinct vector.

    Both kernels are pure functions of the feature vector, so the
    oracle is computed once per distinct vector and compared against
    every request that carried it.
    """
    predictions = [model.predict_proba(v[None])[0] for v in vectors]
    attributions = [explainer.shap_values(v) for v in vectors]
    return predictions, attributions


def _equality(requests, vector_ids, explains, predictions, attributions):
    """Count bitwise mismatches between engine results and the oracle."""
    mismatches = 0
    for i, request in enumerate(requests):
        if request.error is not None:
            mismatches += 1
            continue
        oracle = (
            attributions[vector_ids[i]]
            if explains[i]
            else predictions[vector_ids[i]]
        )
        if not np.array_equal(request.value, oracle):
            mismatches += 1
    return mismatches


def _sim_pass(policy):
    """One saturated open-loop run on the simulated paper deployment."""
    sim, gateway = build_paper_deployment(seed=11)
    runner = CapacityRunner(sim, gateway, serving=policy, seed=11)
    runner.add_open_loop(
        PoissonArrivalGroup(
            route="shap", rate_rps=SIM_RATE_RPS, n_requests=SIM_REQUESTS
        )
    )
    return runner.run()


def measure_all():
    """Run every measurement once; returns the figures the asserts gate."""
    started = time.perf_counter()
    model, explainer, vectors, vector_ids, explains = _fixtures()
    # warm both kernel paths once so neither trial pays first-call costs
    explainer.shap_values_batch_exact(vectors[:2])
    explainer.shap_values(vectors[0])
    batched_seconds = None
    requests = engine = None
    for __ in range(2):
        elapsed, reqs, eng = _batched_pass(
            model, explainer, vectors, vector_ids, explains
        )
        if batched_seconds is None or elapsed < batched_seconds:
            batched_seconds, requests, engine = elapsed, reqs, eng
    unbatched_seconds = min(
        _unbatched_pass(model, explainer, vectors, vector_ids, explains)
        for __ in range(2)
    )
    predictions, attributions = _oracle(model, explainer, vectors)
    mismatches = _equality(
        requests, vector_ids, explains, predictions, attributions
    )
    unserved = _sim_pass(None)
    served = _sim_pass(POLICY)
    return {
        "n_requests": N_REQUESTS,
        "n_vectors": N_VECTORS,
        "explain_requests": int(explains.sum()),
        "batched_seconds": batched_seconds,
        "unbatched_seconds": unbatched_seconds,
        "kernel_speedup": unbatched_seconds / batched_seconds,
        "batched_rps": N_REQUESTS / batched_seconds,
        "unbatched_rps": N_REQUESTS / unbatched_seconds,
        "bitwise_mismatches": mismatches,
        "cache_hit_rate": engine.cache.hit_rate,
        "cache_hits": engine.cache.hits,
        "mean_batch_size": engine.mean_batch_size,
        "batches": engine.batches,
        "sim_rate_rps": SIM_RATE_RPS,
        "sim_p95_unbatched_ms": unserved.p95_response_ms,
        "sim_p95_batched_ms": served.p95_response_ms,
        "sim_tput_unbatched_rps": unserved.throughput_rps,
        "sim_tput_batched_rps": served.throughput_rps,
        "measurement_seconds": time.perf_counter() - started,
    }


@pytest.fixture(scope="module")
def measurements(figure_printer):
    results = measure_all()
    figure_printer(
        "serving layer: batched vs per-request",
        ["metric", "value"],
        [
            ("kernel speedup", f"{results['kernel_speedup']:.1f}x"),
            ("batched rps", f"{results['batched_rps']:,.0f}"),
            ("unbatched rps", f"{results['unbatched_rps']:,.0f}"),
            ("cache hit rate", f"{results['cache_hit_rate']:.1%}"),
            ("mean batch size", f"{results['mean_batch_size']:.2f}"),
            ("bitwise mismatches", results["bitwise_mismatches"]),
            ("sim p95 unbatched", f"{results['sim_p95_unbatched_ms']:.1f}ms"),
            ("sim p95 batched", f"{results['sim_p95_batched_ms']:.1f}ms"),
        ],
    )
    return results


def bench_batched_engine_is_3x_per_request(check, measurements):
    """The fused+cached path completes the workload >=3x faster."""

    def verify():
        speedup = measurements["kernel_speedup"]
        assert speedup >= KERNEL_SPEEDUP_FLOOR, (
            f"batched engine ran at {speedup:.2f}x the per-request loop, "
            f"below the {KERNEL_SPEEDUP_FLOOR:.0f}x floor"
        )

    check(verify)


def bench_batched_p95_equal_or_better(check, measurements):
    """At per-request saturation, batching must not trade p95 away."""

    def verify():
        batched = measurements["sim_p95_batched_ms"]
        unbatched = measurements["sim_p95_unbatched_ms"]
        assert batched <= unbatched, (
            f"batched p95 {batched:.1f}ms worse than "
            f"per-request {unbatched:.1f}ms"
        )
        assert (
            measurements["sim_tput_batched_rps"]
            >= measurements["sim_tput_unbatched_rps"]
        )

    check(verify)


def bench_batched_results_bitwise_equal(check, measurements):
    """Fused kernels and cache hits never change a result bit."""

    def verify():
        assert measurements["bitwise_mismatches"] == 0

    check(verify)


def bench_cache_effective_on_zipf_replay(check, measurements):
    """Skewed content must actually hit the explanation cache."""

    def verify():
        assert measurements["cache_hit_rate"] > 0.0
        assert measurements["cache_hits"] > 0
        # and the comparison is not cache-only: real fusion happened
        assert measurements["mean_batch_size"] > 1.0
        assert measurements["batches"] > 0

    check(verify)


def bench_measurement_under_budget(check, measurements):
    """Whole pass stays interactive (wall-clock-budget pattern)."""

    def verify():
        elapsed = measurements["measurement_seconds"]
        assert elapsed < MEASUREMENT_BUDGET_S, (
            f"serving measurements took {elapsed:.1f}s, "
            f"budget {MEASUREMENT_BUDGET_S}s"
        )

    check(verify)


def bench_matches_committed_baseline(check, measurements):
    """Committed BENCH_serving.json must still clear the same floors."""

    def verify():
        if not _BASELINE_PATH.exists():
            return
        baseline = json.loads(_BASELINE_PATH.read_text())
        assert baseline["kernel_speedup"] >= KERNEL_SPEEDUP_FLOOR
        assert baseline["bitwise_mismatches"] == 0
        assert baseline["cache_hit_rate"] > 0.0
        assert baseline["n_requests"] == N_REQUESTS

    check(verify)


if __name__ == "__main__":
    figures = measure_all()
    _BASELINE_PATH.write_text(json.dumps(figures, indent=2) + "\n")
    for key, value in figures.items():
        print(f"{key:28s} {value}")
