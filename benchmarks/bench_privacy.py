"""Extension bench: the §VIII accuracy-vs-privacy trade-off, quantified.

"Data removal degrades the decision making process performance" — the
sweep trains on differentially-private releases of the traffic dataset and
reports accuracy alongside membership-inference risk per privacy budget ε,
so the dashboard's privacy sensor and the performance sensor can be read
as two ends of one dial.
"""

import numpy as np
import pytest

from repro.ml import StandardScaler, lightgbm_like
from repro.privacy import (
    k_anonymize,
    membership_inference_risk,
    privatize_dataset,
    smallest_group_size,
)

EPSILONS = (1000.0, 50.0, 10.0, 2.0)


@pytest.fixture(scope="module")
def privacy_sweep(uc2_split, figure_printer):
    X_train, X_test, y_train, y_test = uc2_split
    rows = {}
    for epsilon in EPSILONS:
        X_tr = privatize_dataset(X_train, epsilon=epsilon, seed=0)
        X_te = privatize_dataset(X_test, epsilon=epsilon, seed=1)
        model = lightgbm_like(n_estimators=15, seed=0).fit(X_tr, y_train)
        accuracy = model.score(X_te, y_test)
        risk = membership_inference_risk(model, X_tr[:60], X_te[:60])
        rows[epsilon] = (accuracy, risk)
    figure_printer(
        "Extension: DP budget vs accuracy and membership risk",
        ["epsilon", "accuracy", "memb_risk"],
        [(e, a, r) for e, (a, r) in rows.items()],
    )
    return rows


def bench_privacy_accuracy_falls_with_budget(check, privacy_sweep):
    def verify():
        generous = privacy_sweep[EPSILONS[0]][0]
        tight = privacy_sweep[EPSILONS[-1]][0]
        assert generous > 0.9
        assert tight < generous - 0.1

    check(verify)


def bench_privacy_risk_bounded(check, privacy_sweep):
    def verify():
        for accuracy, risk in privacy_sweep.values():
            assert 0.0 <= risk <= 1.0

    check(verify)


def bench_privacy_k_anonymity_coarsens(check, uc2_split):
    """Higher k forces coarser generalisation (fewer quantile bins)."""

    def verify():
        X_train, __, __, __ = uc2_split
        two_features = X_train[:, :2]
        __, bins_k2 = k_anonymize(two_features, k=2)
        out, bins_k40 = k_anonymize(two_features, k=40)
        assert bins_k40 <= bins_k2
        assert smallest_group_size(out) >= 40

    check(verify)


def bench_privacy_dp_release_cost(benchmark, uc2_split):
    X_train, __, __, __ = uc2_split
    benchmark(lambda: privatize_dataset(X_train, epsilon=10.0, seed=0))
