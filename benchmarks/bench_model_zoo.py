"""Library-grade performance benchmarks of the ML substrate.

Not a paper figure: these time the training and inference of every model
family (plus the XAI explainers) on fixed workloads, so performance
regressions in the substrate that would silently skew the capacity
calibrations show up in CI.
"""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    GradientBoostedTreesClassifier,
    LogisticRegressionClassifier,
    MLPClassifier,
    RandomForestClassifier,
)
from repro.xai import KernelShapExplainer, LimeTabularExplainer


@pytest.fixture(scope="module")
def workload():
    gen = np.random.default_rng(0)
    X = gen.normal(size=(1000, 20))
    y = (X[:, 0] + np.sin(X[:, 1] * 2) + 0.3 * gen.normal(size=1000) > 0).astype(
        int
    )
    return X, y


MODEL_FACTORIES = {
    "logreg": lambda: LogisticRegressionClassifier(n_epochs=20, seed=0),
    "tree": lambda: DecisionTreeClassifier(max_depth=8, seed=0),
    "forest": lambda: RandomForestClassifier(n_estimators=10, max_depth=8, seed=0),
    "gbdt": lambda: GradientBoostedTreesClassifier(n_estimators=10, seed=0),
    "mlp": lambda: MLPClassifier(hidden_layers=(32,), n_epochs=20, seed=0),
}


@pytest.mark.parametrize("name", list(MODEL_FACTORIES))
def bench_training(benchmark, workload, name):
    X, y = workload
    factory = MODEL_FACTORIES[name]
    benchmark(lambda: factory().fit(X, y))


@pytest.mark.parametrize("name", list(MODEL_FACTORIES))
def bench_inference(benchmark, workload, name):
    X, y = workload
    model = MODEL_FACTORIES[name]().fit(X, y)
    benchmark(lambda: model.predict_proba(X))


def bench_kernel_shap_single(benchmark, workload):
    X, y = workload
    model = MLPClassifier(hidden_layers=(16,), n_epochs=15, seed=0).fit(X, y)
    explainer = KernelShapExplainer(
        model.predict_proba, X[:30], n_coalitions=128, seed=0
    )
    benchmark(lambda: explainer.shap_values(X[0], class_index=1))


def bench_lime_tabular_single(benchmark, workload):
    X, y = workload
    model = MLPClassifier(hidden_layers=(16,), n_epochs=15, seed=0).fit(X, y)
    explainer = LimeTabularExplainer(
        model.predict_proba, X, n_samples=500, seed=0
    )
    benchmark(lambda: explainer.explain(X[0], 1))
