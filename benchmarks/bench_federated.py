"""Extension bench: the Fig. 2(c) federated architecture under attack.

Not a paper figure — the paper's background section motivates the
federated setting and Fig. 1 lists its poisoning attacks; this bench
quantifies the ablation DESIGN.md's extension section calls for: final
global accuracy per (malicious-client count × aggregation rule), showing
where FedAvg collapses and the robust rules hold.
"""

import numpy as np
import pytest

from repro.federated import (
    FederatedClient,
    FederatedTrainer,
    MaliciousClient,
    coordinate_median,
    trimmed_mean,
)
from repro.ml import StandardScaler, train_test_split

N_CLIENTS = 8
ROUNDS = 6
LOCAL_EPOCHS = 3

AGGREGATORS = {
    "fedavg": None,
    "median": coordinate_median,
    "trimmed2": lambda u: trimmed_mean(u, trim=2),
}


@pytest.fixture(scope="module")
def federated_setup(uc1_split):
    X_train, X_test, y_train, y_test = uc1_split
    return X_train[:1600], X_test[:400], y_train[:1600], y_test[:400]


def build_clients(X, y, n_malicious):
    per = len(y) // N_CLIENTS
    clients = []
    for i in range(N_CLIENTS):
        shard = slice(i * per, (i + 1) * per)
        if i < n_malicious:
            clients.append(
                MaliciousClient(i, X[shard], y[shard], update_scale=-4.0)
            )
        else:
            clients.append(FederatedClient(i, X[shard], y[shard]))
    return clients


def final_accuracy(setup, n_malicious, aggregator):
    X_train, X_test, y_train, y_test = setup
    trainer = FederatedTrainer(
        build_clients(X_train, y_train, n_malicious),
        hidden_layers=(32,),
        learning_rate=3e-3,
        seed=0,
        aggregator=aggregator,
    )
    trainer.run(ROUNDS, local_epochs=LOCAL_EPOCHS)
    return trainer.global_model.score(X_test, y_test)


@pytest.fixture(scope="module")
def federated_grid(federated_setup, figure_printer):
    grid = {}
    for name, aggregator in AGGREGATORS.items():
        grid[name] = {
            m: final_accuracy(federated_setup, m, aggregator)
            for m in (0, 2)
        }
    figure_printer(
        "Extension: federated accuracy vs malicious clients × aggregator",
        ["aggregator", "0 malicious", "2 malicious"],
        [(name, row[0], row[2]) for name, row in grid.items()],
    )
    return grid


def bench_federated_clean_convergence(check, federated_grid):
    """All aggregators converge with honest clients."""

    def verify():
        for name, row in federated_grid.items():
            assert row[0] > 0.75, name

    check(verify)


def bench_federated_fedavg_breaks_under_model_poisoning(check, federated_grid):
    def verify():
        assert federated_grid["fedavg"][2] < federated_grid["fedavg"][0] - 0.1

    check(verify)


def bench_federated_robust_rules_hold(check, federated_grid):
    """Median/trimmed-mean keep most of the clean accuracy at 2/8 attackers."""

    def verify():
        for name in ("median", "trimmed2"):
            assert federated_grid[name][2] > federated_grid["fedavg"][2]
            assert federated_grid[name][2] > 0.7, name

    check(verify)


def bench_federated_round_cost(benchmark, federated_setup):
    """Wall-clock of one full federated round (8 clients, 3 local epochs)."""
    X_train, X_test, y_train, y_test = federated_setup
    trainer = FederatedTrainer(
        build_clients(X_train, y_train, 0),
        hidden_layers=(32,),
        learning_rate=3e-3,
        seed=0,
    )
    benchmark.pedantic(
        lambda: trainer.run_round(local_epochs=LOCAL_EPOCHS),
        rounds=3,
        iterations=1,
    )
