"""Fig. 7(a/b): SHAP feature importances before vs after the FGSM evasion.

The paper shows the NN's SHAP summary for the web class on benign data and
on evasion data: "shapley values for web activities have decreased around
16 % for the udp protocol, causing the feature to drop to the second place
in ranking, while the importance of the tcp protocol has almost doubled."
The reproducible shape: the per-feature importance vector shifts
substantially under attack, protocol features are material to the web
class, and at least one feature changes rank in the top of the list.
"""

import numpy as np
import pytest

from repro.attacks import FgsmAttack
from repro.datasets.nettraffic import FEATURE_NAMES
from repro.xai import KernelShapExplainer

N_EXPLAINED = 12


@pytest.fixture(scope="module")
def shap_shift(uc2_split, uc2_models, figure_printer):
    X_train, X_test, y_train, y_test = uc2_split
    nn = uc2_models["NN"]
    adversarial = FgsmAttack(nn, epsilon=0.3).apply(X_test, y_test)
    web_class = int(np.flatnonzero(nn.classes_ == "web")[0])
    explainer = KernelShapExplainer(
        nn.predict_proba, X_train[:40], n_coalitions=128, seed=0
    )
    benign = explainer.mean_abs_importance(X_test[:N_EXPLAINED], web_class)
    evaded = explainer.mean_abs_importance(
        adversarial.X[:N_EXPLAINED], web_class
    )
    order = np.argsort(-benign)
    rows = [
        (FEATURE_NAMES[j], benign[j], evaded[j]) for j in order[:10]
    ]
    figure_printer(
        "Fig. 7(a/b): web-class SHAP importance, benign vs evasion",
        ["feature", "benign", "evasion"],
        rows,
    )
    return benign, evaded


def bench_fig7ab_importances_shift_under_attack(check, shap_shift):
    """The global importance vector must move by a material margin."""

    def verify():
        benign, evaded = shap_shift
        relative_shift = np.abs(evaded - benign).sum() / benign.sum()
        assert relative_shift > 0.15

    check(verify)


def bench_fig7ab_ranking_changes(check, shap_shift):
    """At least one of the top-5 benign features changes rank."""

    def verify():
        benign, evaded = shap_shift
        top_benign = np.argsort(-benign)[:5].tolist()
        top_evaded = np.argsort(-evaded)[:5].tolist()
        assert top_benign != top_evaded

    check(verify)


def bench_fig7ab_protocol_features_material(check, shap_shift):
    """tcp/udp protocol ratios carry non-trivial weight for the web class."""

    def verify():
        benign, __ = shap_shift
        tcp = benign[FEATURE_NAMES.index("protocol_tcp_ratio")]
        udp = benign[FEATURE_NAMES.index("protocol_udp_ratio")]
        # protocol features together must be inside the top half of mass
        threshold = np.median(benign)
        assert max(tcp, udp) >= threshold

    check(verify)


def bench_fig7ab_explainer_cost(benchmark, uc2_split, uc2_models):
    """Cost of one mean-|SHAP| pass — the accountability sensor's poll."""
    X_train, X_test, __, __ = uc2_split
    nn = uc2_models["NN"]
    explainer = KernelShapExplainer(
        nn.predict_proba, X_train[:20], n_coalitions=64, seed=0
    )
    benchmark(lambda: explainer.mean_abs_importance(X_test[:3], 0))
