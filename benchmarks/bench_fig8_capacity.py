"""Fig. 8(b/c): capacity-load results on the simulated deployment.

Experiment 1 (§VI-B): a JMeter ultimate thread group with 100 threads
against the metric micro-services.  Paper findings: the impact-resilience
metric "converges to an average of around 1600 ms across the ramp-up time"
even near 100 parallel requests; SHAP and LIME explanations average 228.6 ms
and 243.4 ms respectively — "latencies that are tolerable by end-users and
also can be used for continuous monitoring".
"""

import pytest

from repro.gateway import LoadGenerator, ThreadGroup, build_paper_deployment


def run_route(route, n_threads, iterations, payload="tabular", seed=1):
    sim, gateway = build_paper_deployment(seed=seed)
    generator = LoadGenerator(sim, gateway)
    generator.add_thread_group(
        ThreadGroup(
            route=route,
            n_threads=n_threads,
            rampup_seconds=1.0,
            iterations=iterations,
            payload=payload,
        )
    )
    return generator.run()


@pytest.fixture(scope="module")
def experiment1(figure_printer):
    reports = {
        "impact": run_route("impact", 100, 3),
        "shap": run_route("shap", 100, 60),
        "lime": run_route("lime", 100, 60),
    }
    paper = {"impact": 1600.0, "shap": 228.6, "lime": 243.4}
    figure_printer(
        "Fig. 8(b/c): 100-thread capacity results (avg response, ms)",
        ["service", "paper", "measured", "p95", "err%"],
        [
            (
                route,
                paper[route],
                rep.avg_response_ms,
                rep.p95_response_ms,
                100 * rep.error_rate,
            )
            for route, rep in reports.items()
        ],
    )
    return reports


def bench_fig8b_impact_converges_near_1600ms(check, experiment1):
    def verify():
        assert experiment1["impact"].avg_response_ms == pytest.approx(
            1600.0, rel=0.15
        )

    check(verify)


def bench_fig8b_impact_insensitive_to_thread_count(check):
    """Convergence: 25 vs 100 threads lands on the same average."""

    def verify():
        low = run_route("impact", 25, 3).avg_response_ms
        high = run_route("impact", 100, 3).avg_response_ms
        assert high == pytest.approx(low, rel=0.2)

    check(verify)


def bench_fig8c_shap_near_228ms(check, experiment1):
    def verify():
        assert experiment1["shap"].avg_response_ms == pytest.approx(
            228.6, rel=0.2
        )

    check(verify)


def bench_fig8c_lime_near_243ms(check, experiment1):
    def verify():
        assert experiment1["lime"].avg_response_ms == pytest.approx(
            243.4, rel=0.2
        )

    check(verify)


def bench_fig8c_tabular_latency_tolerable(check, experiment1):
    """Paper: tabular XAI latencies suit continuous monitoring (< 1 s)."""

    def verify():
        assert experiment1["shap"].p95_response_ms < 1000.0
        assert experiment1["lime"].p95_response_ms < 1000.0
        assert experiment1["shap"].error_rate == 0.0

    check(verify)


def bench_fig8_simulation_cost(benchmark):
    """Wall-clock of simulating the full 100-thread SHAP experiment."""
    benchmark(lambda: run_route("shap", 100, 20))
