"""Kernel-pool gate: multi-core overlap must pay without changing bits.

The pool (DESIGN.md §16) makes four promises, each gated here:

- **throughput**: on the simulated deployment (a concurrency-1 station,
  so kernel execution is the bottleneck), four pool workers complete a
  saturating SHAP workload at >= ``POOL_SPEEDUP_FLOOR`` (2.5x) the
  single-process station at equal-or-better p95;
- **fidelity**: every result the forked pool returns — predict rows and
  SHAP attributions alike — is bitwise-equal to the in-process kernels
  (``np.array_equal``, no tolerance);
- **resilience**: with workers crashing mid-run, every submitted batch
  still resolves exactly once (0 lost requests, no double-counted
  dispatches);
- **zero tax when off**: ``NullPool`` (the ``--pool-workers 0`` tier)
  stays within ``NULLPOOL_OVERHEAD_CEILING`` (5%) of the plain engine.

A real-fork wall-clock speedup is also recorded; it is only *gated*
when the host has >= 4 cores, since a single-core container cannot
overlap anything (CI images vary — the simulated gate carries the
scaling claim deterministically).

``python benchmarks/bench_pool.py`` writes the measured numbers to
``BENCH_pool.json`` as the committed baseline.
"""

import json
import multiprocessing
import time
from pathlib import Path

import numpy as np
import pytest

from repro.gateway import (
    APIGateway,
    CapacityRunner,
    Machine,
    MicroService,
    PoissonArrivalGroup,
    ServiceTimeModel,
)
from repro.gateway.simulation import Simulator
from repro.ml import RandomForestClassifier
from repro.pool import KernelPool, NullPool
from repro.serving import ServingEngine, ServingPolicy
from repro.xai.shap import KernelShapExplainer

#: Four simulated pool workers vs the single-process station.
POOL_SPEEDUP_FLOOR = 2.5

#: NullPool must cost at most 5% over calling the engine without a pool.
NULLPOOL_OVERHEAD_CEILING = 1.05

#: Wall-clock budget for the whole measurement pass.
MEASUREMENT_BUDGET_S = 120.0

N_FEATURES = 6
#: Real-pool fidelity/crash workload: mixed batches through the fork.
N_BATCHES = 16
BATCH_ROWS = 6
#: NullPool parity workload: the serving mix the pool exists for —
#: mostly predictions with a stream of SHAP explanations mixed in.
PARITY_REQUESTS = 2000
PARITY_EXPLAIN_EVERY = 10
PARITY_BATCH = 8
PARITY_TRIALS = 5

#: Simulated saturating workload on the concurrency-1 station.
SIM_RATE_RPS = 2000.0
SIM_REQUESTS = 3000
SIM_SERVICE_S = 0.016

_BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_pool.json"


def _fixtures():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(400, N_FEATURES))
    y = (X[:, 0] + X[:, 1] * X[:, 2] > 0).astype(int)
    model = RandomForestClassifier(n_estimators=10, max_depth=6, seed=0).fit(
        X, y
    )
    explainer = KernelShapExplainer(
        model.predict_proba, X[:32], n_coalitions=64, seed=0
    )
    batches = [
        rng.normal(size=(BATCH_ROWS, N_FEATURES)) for _ in range(N_BATCHES)
    ]
    return model, explainer, batches


def _fidelity_pass(model, explainer, batches, crash_every=0):
    """Submit every batch through a forked pool; count mismatches/losses.

    With ``crash_every`` > 0 a worker is killed before every k-th
    submission, exercising respawn + resubmission under load.
    """
    pool = KernelPool(
        model.predict_proba, explainer, workers=2, arena_mb=4.0
    )
    try:
        futures = []
        for index, X in enumerate(batches):
            if crash_every and index % crash_every == 0:
                pool.inject_crash(worker_id=index % pool.workers)
            if index % 2 == 0:
                futures.append(("predict", X, pool.submit_predict(X)))
            else:
                futures.append(("explain", X, pool.submit_explain(X)))
        released = pool.drain(now=1.0)
        lost = len(batches) - len(released)
        mismatches = 0
        for kind, X, future in futures:
            if not future.done or future.error is not None:
                mismatches += 1
                continue
            oracle = (
                model.predict_proba(X)
                if kind == "predict"
                else explainer.shap_values_batch_exact(X)
            )
            if not np.array_equal(future.result(), oracle):
                mismatches += 1
        counters = pool.counters()
        return {
            "mismatches": mismatches,
            "lost": lost,
            "dispatched": counters["dispatched"],
            "completed": counters["completed"],
            "crashes": counters["crashes"],
            "resubmitted": counters["resubmitted"],
        }
    finally:
        pool.close()


def _parity_workload(rng):
    vectors = rng.normal(size=(32, N_FEATURES))
    ids = rng.integers(0, 32, size=PARITY_REQUESTS)
    return vectors, ids


def _engine_pass(model, explainer, vectors, ids, pool):
    """Wall-clock seconds for one engine replay (pool=None or NullPool)."""
    policy = ServingPolicy(
        max_batch=PARITY_BATCH, batch_window=0.004, cache_size=0
    )
    engine = ServingEngine(model.predict_proba, explainer, policy, pool=pool)
    start = time.perf_counter()
    for i, vector_id in enumerate(ids):
        if i % PARITY_EXPLAIN_EVERY == 0:
            engine.submit_explain(vectors[vector_id], now=i * 0.001)
        else:
            engine.submit_predict(vectors[vector_id], now=i * 0.001)
    engine.drain(now=PARITY_REQUESTS * 0.001)
    return time.perf_counter() - start


def _real_speedup(model, explainer, batches):
    """Forked-pool vs inline wall-clock on the SHAP workload (recorded)."""
    inline_start = time.perf_counter()
    for X in batches:
        explainer.shap_values_batch_exact(X)
    inline_seconds = time.perf_counter() - inline_start
    workers = min(4, multiprocessing.cpu_count())
    with KernelPool(
        model.predict_proba, explainer, workers=workers, arena_mb=4.0
    ) as pool:
        start = time.perf_counter()
        for X in batches:
            pool.submit_explain(X)
        pool.drain(now=1.0)
        pooled_seconds = time.perf_counter() - start
    return inline_seconds / pooled_seconds, workers


def _sim_pass(pool_workers):
    """Saturating open loop against one concurrency-1 simulated station."""
    sim = Simulator()
    gateway = APIGateway(sim, overhead_seconds=0.0)
    gateway.register(
        MicroService(
            name="shap",
            machine=Machine("host", vcpus=4, ram_gb=8),
            service_time=ServiceTimeModel(
                {"tabular": SIM_SERVICE_S}, jitter=0.1
            ),
            concurrency=1,
        )
    )
    policy = ServingPolicy(
        max_batch=8,
        batch_window=0.004,
        cache_size=0,
        shed_depth=0,
        pool_workers=pool_workers,
    )
    runner = CapacityRunner(sim, gateway, serving=policy, seed=11)
    runner.add_open_loop(
        PoissonArrivalGroup(
            route="shap", rate_rps=SIM_RATE_RPS, n_requests=SIM_REQUESTS
        )
    )
    return runner.run()


def measure_all():
    """Run every measurement once; returns the figures the asserts gate."""
    started = time.perf_counter()
    model, explainer, batches = _fixtures()
    explainer.shap_values_batch_exact(batches[0][:2])  # warm the kernels

    clean = _fidelity_pass(model, explainer, batches)
    crashed = _fidelity_pass(model, explainer, batches, crash_every=5)

    rng = np.random.default_rng(3)
    vectors, ids = _parity_workload(rng)
    # alternate inline/NullPool trials so clock drift hits both equally;
    # min-of-N is the usual noise floor for sub-second passes
    inline_trials, nullpool_trials = [], []
    for __ in range(PARITY_TRIALS):
        inline_trials.append(
            _engine_pass(model, explainer, vectors, ids, None)
        )
        nullpool_trials.append(
            _engine_pass(
                model,
                explainer,
                vectors,
                ids,
                NullPool(model.predict_proba, explainer),
            )
        )
    inline_seconds = min(inline_trials)
    nullpool_seconds = min(nullpool_trials)

    real_speedup, real_workers = _real_speedup(model, explainer, batches)

    single = _sim_pass(pool_workers=1)
    pooled = _sim_pass(pool_workers=4)

    return {
        "n_batches": N_BATCHES,
        "batch_rows": BATCH_ROWS,
        "bitwise_mismatches": clean["mismatches"],
        "lost_requests": clean["lost"],
        "crash_bitwise_mismatches": crashed["mismatches"],
        "crash_lost_requests": crashed["lost"],
        "crash_worker_crashes": crashed["crashes"],
        "crash_resubmitted": crashed["resubmitted"],
        "crash_dispatched": crashed["dispatched"],
        "crash_completed": crashed["completed"],
        "inline_engine_seconds": inline_seconds,
        "nullpool_engine_seconds": nullpool_seconds,
        "nullpool_overhead": nullpool_seconds / inline_seconds,
        "real_pool_workers": real_workers,
        "real_pool_speedup": real_speedup,
        "cpu_count": multiprocessing.cpu_count(),
        "sim_rate_rps": SIM_RATE_RPS,
        "sim_tput_single_rps": single.throughput_rps,
        "sim_tput_pooled_rps": pooled.throughput_rps,
        "sim_pool_speedup": single.throughput_rps
        and pooled.throughput_rps / single.throughput_rps,
        "sim_p95_single_ms": single.p95_response_ms,
        "sim_p95_pooled_ms": pooled.p95_response_ms,
        "sim_errors": single.n_errors + pooled.n_errors,
        "measurement_seconds": time.perf_counter() - started,
    }


@pytest.fixture(scope="module")
def measurements(figure_printer):
    results = measure_all()
    figure_printer(
        "kernel pool: pooled vs single-process",
        ["metric", "value"],
        [
            ("sim pool speedup", f"{results['sim_pool_speedup']:.1f}x"),
            ("sim p95 single", f"{results['sim_p95_single_ms']:.0f}ms"),
            ("sim p95 pooled", f"{results['sim_p95_pooled_ms']:.0f}ms"),
            ("bitwise mismatches", results["bitwise_mismatches"]),
            ("crash lost requests", results["crash_lost_requests"]),
            ("crash resubmitted", results["crash_resubmitted"]),
            ("nullpool overhead", f"{results['nullpool_overhead']:.3f}x"),
            ("real-fork speedup", f"{results['real_pool_speedup']:.2f}x"),
        ],
    )
    return results


def bench_pooled_station_is_2p5x_single_process(check, measurements):
    """Four simulated pool workers must beat one process >=2.5x."""

    def verify():
        speedup = measurements["sim_pool_speedup"]
        assert speedup >= POOL_SPEEDUP_FLOOR, (
            f"4-worker pool ran at {speedup:.2f}x the single-process "
            f"station, below the {POOL_SPEEDUP_FLOOR:.1f}x floor"
        )
        assert (
            measurements["sim_p95_pooled_ms"]
            <= measurements["sim_p95_single_ms"]
        ), "pooling must not trade p95 away"
        assert measurements["sim_errors"] == 0

    check(verify)


def bench_pool_results_bitwise_equal(check, measurements):
    """The forked pool never changes a result bit."""

    def verify():
        assert measurements["bitwise_mismatches"] == 0
        assert measurements["lost_requests"] == 0

    check(verify)


def bench_crashes_lose_nothing(check, measurements):
    """Worker crashes resubmit; every batch resolves exactly once."""

    def verify():
        assert measurements["crash_lost_requests"] == 0
        assert measurements["crash_bitwise_mismatches"] == 0
        # telemetry advanced once per submission, crashes notwithstanding
        assert (
            measurements["crash_dispatched"]
            == measurements["crash_completed"]
            == N_BATCHES
        )

    check(verify)


def bench_nullpool_within_5_percent(check, measurements):
    """The tier-off wrapper must be free when the pool is disabled."""

    def verify():
        overhead = measurements["nullpool_overhead"]
        assert overhead <= NULLPOOL_OVERHEAD_CEILING, (
            f"NullPool engine ran at {overhead:.3f}x the plain engine, "
            f"over the {NULLPOOL_OVERHEAD_CEILING:.2f}x ceiling"
        )

    check(verify)


def bench_real_fork_speedup_on_multicore(check, measurements):
    """Wall-clock overlap gated only where cores exist to overlap on."""

    def verify():
        if measurements["cpu_count"] < 4:
            return  # recorded, not gated, on small containers
        assert measurements["real_pool_speedup"] >= 1.5

    check(verify)


def bench_measurement_under_budget(check, measurements):
    """Whole pass stays interactive (wall-clock-budget pattern)."""

    def verify():
        elapsed = measurements["measurement_seconds"]
        assert elapsed < MEASUREMENT_BUDGET_S, (
            f"pool measurements took {elapsed:.1f}s, "
            f"budget {MEASUREMENT_BUDGET_S}s"
        )

    check(verify)


def bench_matches_committed_baseline(check, measurements):
    """Committed BENCH_pool.json must still clear the same floors."""

    def verify():
        if not _BASELINE_PATH.exists():
            return
        baseline = json.loads(_BASELINE_PATH.read_text())
        assert baseline["sim_pool_speedup"] >= POOL_SPEEDUP_FLOOR
        assert baseline["bitwise_mismatches"] == 0
        assert baseline["crash_lost_requests"] == 0
        assert baseline["nullpool_overhead"] <= NULLPOOL_OVERHEAD_CEILING

    check(verify)


if __name__ == "__main__":
    figures = measure_all()
    _BASELINE_PATH.write_text(json.dumps(figures, indent=2) + "\n")
    for key, value in figures.items():
        print(f"{key:28s} {value}")
