"""Fig. 8(d): image-LIME under incremental concurrent load.

Experiment 2 (§VI-B): "we select incremental concurrent load from 5 to 25
requests … with a ramp-up period of 1 s".  Paper findings: "XAI are not
able to handle concurrent workload below 1 s.  In fact, we can observe a
steady increase in response time that depends on the number of concurrent
users accessing the service."

Two layers are validated: the *deployment* shape on the simulator, and the
*cost model itself* — our real ``LimeImageExplainer`` is measured against
tabular LIME to confirm the orders-of-magnitude gap that justifies the
calibrated service times.
"""

import numpy as np
import pytest

from repro.datasets import generate_shape_images
from repro.gateway import LoadGenerator, ThreadGroup, build_paper_deployment
from repro.ml import MLPClassifier
from repro.xai import LimeImageExplainer, LimeTabularExplainer

THREAD_LEVELS = (5, 10, 15, 20, 25)


def run_image_lime(n_threads, seed=1):
    sim, gateway = build_paper_deployment(seed=seed)
    generator = LoadGenerator(sim, gateway)
    generator.add_thread_group(
        ThreadGroup(
            route="lime",
            n_threads=n_threads,
            rampup_seconds=1.0,
            iterations=3,
            payload="image",
        )
    )
    return generator.run()


@pytest.fixture(scope="module")
def experiment2(figure_printer):
    series = {n: run_image_lime(n) for n in THREAD_LEVELS}
    figure_printer(
        "Fig. 8(d): image-LIME avg response vs concurrent threads",
        ["threads", "avg_ms", "p95_ms"],
        [
            (n, rep.avg_response_ms, rep.p95_response_ms)
            for n, rep in series.items()
        ],
    )
    return series


def bench_fig8d_response_grows_steadily(check, experiment2):
    def verify():
        averages = [experiment2[n].avg_response_ms for n in THREAD_LEVELS]
        assert all(b > a for a, b in zip(averages, averages[1:]))

    check(verify)


def bench_fig8d_exceeds_one_second(check, experiment2):
    """Paper: image XAI cannot serve concurrent load below 1 s."""

    def verify():
        assert experiment2[10].avg_response_ms > 1000.0
        assert experiment2[25].avg_response_ms > 1000.0

    check(verify)


def bench_fig8d_growth_roughly_linear(check, experiment2):
    """Closed-loop M/G/c: response ≈ N·s/c, i.e. linear in thread count."""

    def verify():
        n = np.array(THREAD_LEVELS, dtype=float)
        avg = np.array(
            [experiment2[k].avg_response_ms for k in THREAD_LEVELS]
        )
        correlation = np.corrcoef(n, avg)[0, 1]
        assert correlation > 0.99

    check(verify)


@pytest.fixture(scope="module")
def real_xai_costs(shape_classifier, uc2_split, uc2_models):
    """Measure the real explainers to validate the calibrated cost gap.

    The paper's comparison is tabular traffic features (21 dims) vs image
    inputs; an image explanation needs a model pass over hundreds of
    *full-resolution masked images* (and more perturbations, one ablation
    axis per superpixel) where the tabular case perturbs a 21-vector.
    Each cost is the best of three runs to suppress timer noise.
    """
    import time

    model, images, __ = shape_classifier

    def image_predict(batch):
        batch = np.asarray(batch)
        return model.predict_proba(batch.reshape(len(batch), -1))

    X_train, __, __, __ = uc2_split
    nn = uc2_models["NN"]
    lime_image = LimeImageExplainer(image_predict, patch=4, n_samples=400, seed=0)
    lime_tab = LimeTabularExplainer(nn.predict_proba, X_train, n_samples=200, seed=0)

    def best_of(fn, repeats=3):
        costs = []
        for __ in range(repeats):
            started = time.perf_counter()
            fn()
            costs.append(time.perf_counter() - started)
        return min(costs)

    image_cost = best_of(lambda: lime_image.explain(images[0], 0))
    tabular_cost = best_of(lambda: lime_tab.explain(X_train[0], 0))
    return image_cost, tabular_cost


@pytest.fixture(scope="module")
def shape_classifier():
    images, labels = generate_shape_images(n_samples=150, size=16, seed=0)
    X = images.reshape(len(images), -1)
    model = MLPClassifier(
        hidden_layers=(32,), n_epochs=30, learning_rate=0.01, seed=0
    ).fit(X, labels)
    return model, images, X


def bench_fig8d_real_image_lime_costs_more_than_tabular(check, real_xai_costs):
    """The premise behind the calibrated 0.8 s vs 9.7 ms service times."""

    def verify():
        image_cost, tabular_cost = real_xai_costs
        assert image_cost > 2.0 * tabular_cost

    check(verify)


def bench_fig8d_real_image_lime_explain(benchmark, shape_classifier):
    model, images, __ = shape_classifier

    def image_predict(batch):
        batch = np.asarray(batch)
        return model.predict_proba(batch.reshape(len(batch), -1))

    lime = LimeImageExplainer(image_predict, patch=4, n_samples=150, seed=0)
    benchmark(lambda: lime.explain(images[0], 0))
