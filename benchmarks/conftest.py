"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables or figures.
Expensive artifacts (datasets, trained model zoos, adversarial sets) are
built once per session here and printed tables are emitted via the
``figure_printer`` helper so ``pytest benchmarks/ --benchmark-only -s``
shows the reproduced series next to the paper's numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    generate_network_dataset,
    generate_unimib_like,
    to_binary_fall_task,
)
from repro.ml import (
    DNNClassifier,
    DecisionTreeClassifier,
    LogisticRegressionClassifier,
    MLPClassifier,
    RandomForestClassifier,
    StandardScaler,
    lightgbm_like,
    train_test_split,
    xgboost_like,
)

#: Sample count for the use-case-1 sweeps.  The paper uses the full 11 771
#: UniMiB windows; 4000 keeps every model family trainable inside the bench
#: budget while preserving the accuracy ordering.
UC1_SAMPLES = 4000


def uc1_model_factories():
    """The five use-case-1 models with the configurations the benches use."""
    return {
        "LR": lambda: LogisticRegressionClassifier(n_epochs=30, seed=0),
        "DT": lambda: DecisionTreeClassifier(max_depth=14, seed=0),
        "RF": lambda: RandomForestClassifier(
            n_estimators=40, max_depth=14, seed=0
        ),
        "MLP": lambda: MLPClassifier(
            hidden_layers=(64, 32), n_epochs=40, seed=0
        ),
        "DNN": lambda: DNNClassifier(
            hidden_layers=(128, 64, 32), n_epochs=40, seed=0
        ),
    }


@pytest.fixture(scope="session")
def uc1_split():
    """Standardised train/test split of the binary fall task."""
    dataset = generate_unimib_like(n_samples=UC1_SAMPLES, seed=0)
    X, y = to_binary_fall_task(dataset)
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_size=0.25, seed=0
    )
    scaler = StandardScaler().fit(X_train)
    return (
        scaler.transform(X_train),
        scaler.transform(X_test),
        y_train,
        y_test,
    )


@pytest.fixture(scope="session")
def uc2_split():
    """The full 382-trace dataset split so the test set has 103 samples."""
    dataset = generate_network_dataset(seed=0)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.27, seed=0
    )
    scaler = StandardScaler().fit(X_train)
    return (
        scaler.transform(X_train),
        scaler.transform(X_test),
        y_train,
        y_test,
    )


@pytest.fixture(scope="session")
def uc2_models(uc2_split):
    """The use-case-2 model zoo, trained once."""
    X_train, __, y_train, __ = uc2_split
    return {
        "NN": MLPClassifier(
            hidden_layers=(32, 16), n_epochs=150, learning_rate=0.01, seed=0
        ).fit(X_train, y_train),
        "LightGBM": lightgbm_like(n_estimators=30, seed=0).fit(X_train, y_train),
        "XGBoost": xgboost_like(n_estimators=30, seed=0).fit(X_train, y_train),
    }


@pytest.fixture()
def check(benchmark):
    """Run a shape-assertion once under the benchmark harness.

    ``pytest benchmarks/ --benchmark-only`` skips tests that don't use the
    ``benchmark`` fixture; wrapping each figure-shape assertion in a
    single-round pedantic call keeps every check executing under that
    command while still reporting its (trivial) timing.
    """

    def run(fn):
        benchmark.pedantic(fn, rounds=1, iterations=1)

    return run


@pytest.fixture(scope="session")
def figure_printer():
    """Emit a labelled table so -s runs show the regenerated figure."""

    def emit(title: str, headers, rows):
        print(f"\n=== {title} ===")
        print("  " + "  ".join(f"{h:>12s}" for h in headers))
        for row in rows:
            cells = []
            for value in row:
                if isinstance(value, float):
                    cells.append(f"{value:12.4f}")
                else:
                    cells.append(f"{str(value):>12s}")
            print("  " + "  ".join(cells))

    return emit
