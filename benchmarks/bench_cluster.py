"""Cluster-at-scale gates: throughput, flat memory, zero-loss failover.

This bench gates the multi-node deployment's four contracts (ISSUE 6 /
DESIGN.md §12):

* an 8-node ring-mode run **with the fault plan active** — crash +
  restart, a network partition and a slow-node window, all landing on
  route primaries so failover genuinely fires — must sustain at least
  ``EVENTS_PER_SECOND_FLOOR`` simulator events per second (best of
  three passes);
* a **1M-request** open-loop run over three routes under the same fault
  kinds must finish with the conservation ledger balanced: every
  appended row observed exactly once, nothing in flight, every failure
  typed — zero lost events despite crashing primaries mid-request;
* that run must keep **flat memory in ring mode**: the record log's
  capacity after 1M requests equals its capacity before the first one
  (bounded by in-flight count, not run length), with per-node rollups
  accounting for every successful request;
* the sampled traces must include at least one **cross-node trace**
  whose critical path provably spans two nodes (entry legs on the
  gateway node, processing on the ring-placed serving node).

``python benchmarks/bench_cluster.py`` writes the measured numbers to
``BENCH_cluster.json`` as the committed baseline.
"""

import gc
import json
import time
from pathlib import Path

import pytest

from repro.cluster import ClusterRunner, ClusterTopology, FaultPlan, RouteSpec
from repro.gateway.arrivals import PoissonArrivalGroup
from repro.gateway.simulation import Simulator
from repro.tracing import NODE_ID_ATTR
from repro.tracing.analysis import critical_path

#: Aggregate event-loop floor for the 8-node faulted run.  Measured
#: values land well above (the cluster dispatch adds one serving-flag
#: check per request over the single-node hot path) so only a genuine
#: regression trips it.
EVENTS_PER_SECOND_FLOOR = 200_000.0

#: Wall-clock budget for the whole measurement pass.
MEASUREMENT_BUDGET_S = 180.0

N_NODES = 8
REPLICATION = 2

#: Three routes with distinct service-time scales; rates sit just under
#: each primary's capacity so queues breathe without running away.
ROUTES = (
    RouteSpec("shap", base_seconds={"tabular": 0.010}, concurrency=4),
    RouteSpec("lime", base_seconds={"tabular": 0.014}, concurrency=6),
    RouteSpec("ai_pipeline", base_seconds={"tabular": 0.024}, concurrency=10),
)

_BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"


def _build(seed, **runner_kwargs):
    topology = ClusterTopology(
        Simulator(),
        list(ROUTES),
        n_nodes=N_NODES,
        replication=REPLICATION,
        seed=seed,
    )
    return topology, ClusterRunner(topology, seed=seed, **runner_kwargs)


def _fault_plan(topology, scale=1.0):
    """Crash/restart + partition + slow, aimed at route *primaries*.

    Targeting primaries (rather than fixed node ids) guarantees the plan
    actually forces failover: the crashed node is the one the ring sends
    traffic to.  ``scale`` stretches the schedule for longer runs.
    """
    primaries = [
        topology.ring.preference(spec.route, REPLICATION)[0]
        for spec in ROUTES
    ]
    plan = FaultPlan()
    plan.add_crash(primaries[0], 2.0 * scale, restart_at=6.0 * scale)
    plan.add_partition(primaries[1], 4.0 * scale, 3.0 * scale)
    plan.add_slow(primaries[2], 8.0 * scale, 4.0 * scale, 3.0)
    # a second crash cycle late in the run keeps the tail honest
    plan.add_crash(primaries[0], 20.0 * scale, restart_at=24.0 * scale)
    return plan


def _throughput_pass():
    """Events/s on an 8-node faulted ring-mode run (one pass)."""
    topology, runner = _build(seed=2)
    for spec, n in zip(ROUTES, (90_000, 60_000, 50_000)):
        runner.add_open_loop(
            PoissonArrivalGroup(spec.route, rate_rps=320.0, n_requests=n)
        )
    runner.apply_fault_plan(_fault_plan(topology))
    gc.collect()
    start = time.perf_counter()
    runner.run()
    elapsed = time.perf_counter() - start
    cons = runner.conservation()
    assert cons["observed"] == cons["appended"] == 200_000
    return runner.sim.processed_events / elapsed


def _million_request_run():
    """1M requests, ring mode, faults on primaries, traces sampled."""
    topology, runner = _build(
        seed=9,
        retain_records=False,
        trace_every=2_000,
        initial_capacity=16_384,
    )
    for spec, n in zip(ROUTES, (400_000, 300_000, 300_000)):
        runner.add_open_loop(
            PoissonArrivalGroup(spec.route, rate_rps=320.0, n_requests=n)
        )
    runner.apply_fault_plan(_fault_plan(topology, scale=12.0))
    capacity_before = runner.log.capacity
    gc.collect()
    start = time.perf_counter()
    report = runner.run()
    elapsed = time.perf_counter() - start

    cons = runner.conservation()
    per_node = runner.summary_by_node(report.duration_seconds)
    cross_node_paths = 0
    for tree in runner.collector.traces():
        path_nodes = {
            seg.span.attributes[NODE_ID_ATTR]
            for seg in critical_path(tree)
            if NODE_ID_ATTR in seg.span.attributes
        }
        if len(path_nodes) >= 2:
            cross_node_paths += 1
    return {
        "million_requests": cons["appended"],
        "million_observed": cons["observed"],
        "million_in_flight": cons["in_flight"],
        "million_failovers": cons["failovers"],
        "million_lost_in_flight": cons["lost_in_flight"],
        "million_lost_responses": cons["lost_responses"],
        "million_stale_completions": cons["stale_completions"],
        "million_final_failures": cons["final_failures"],
        "million_errors_typed": bool(
            report.n_errors == cons["final_failures"]
        ),
        "million_seconds": elapsed,
        "million_events": runner.sim.processed_events,
        "million_capacity_before": capacity_before,
        "million_capacity_after": runner.log.capacity,
        "million_rows_recycled": runner.log.recycled,
        "million_nodes_with_rollups": len(per_node),
        "million_rollup_requests": sum(
            r.n_requests for r in per_node.values()
        ),
        "million_traces": len(runner.collector.traces()),
        "million_cross_node_traces": runner.cross_node_traces,
        "million_cross_node_critical_paths": cross_node_paths,
    }


def measure_all():
    """Run every measurement once; returns the figures the asserts gate."""
    started = time.perf_counter()
    results = {
        "events_per_second": max(_throughput_pass() for __ in range(3))
    }
    results.update(_million_request_run())
    results["measurement_seconds"] = time.perf_counter() - started
    return results


@pytest.fixture(scope="module")
def measurements(figure_printer):
    results = measure_all()
    figure_printer(
        "cluster at scale: measured figures",
        ["metric", "value"],
        [
            ("events/second", results["events_per_second"]),
            ("1M-run seconds", results["million_seconds"]),
            ("1M-run failovers", results["million_failovers"]),
            ("1M-run lost in flight", results["million_lost_in_flight"]),
            ("1M-run final failures", results["million_final_failures"]),
            ("1M-run rows recycled", results["million_rows_recycled"]),
            ("cross-node traces", results["million_cross_node_traces"]),
        ],
    )
    return results


def bench_faulted_event_loop_throughput_floor(check, measurements):
    """8-node ring-mode run with active faults sustains >=200k events/s."""

    def verify():
        eps = measurements["events_per_second"]
        assert eps >= EVENTS_PER_SECOND_FLOOR, (
            f"cluster sustained {eps:,.0f} events/s, below the "
            f"{EVENTS_PER_SECOND_FLOOR:,.0f} floor"
        )

    check(verify)


def bench_million_request_zero_loss_under_faults(check, measurements):
    """Crash/partition injection loses nothing: the ledger balances."""

    def verify():
        assert measurements["million_requests"] == 1_000_000
        assert measurements["million_observed"] == 1_000_000
        assert measurements["million_in_flight"] == 0
        # the faults genuinely fired mid-request...
        assert measurements["million_lost_in_flight"] > 0
        assert measurements["million_failovers"] > 0
        assert measurements["million_stale_completions"] > 0
        # ...and every failure that survived retries is typed
        assert measurements["million_errors_typed"] is True

    check(verify)


def bench_million_request_memory_is_flat(check, measurements):
    """Ring mode: 1M faulted requests never grow the record log."""

    def verify():
        assert (
            measurements["million_capacity_after"]
            == measurements["million_capacity_before"]
        )
        assert measurements["million_rows_recycled"] > 900_000

    check(verify)


def bench_per_node_rollups_account_for_every_success(check, measurements):
    """Per-node reports shard the run and sum back to the total."""

    def verify():
        assert measurements["million_nodes_with_rollups"] >= 2
        assert (
            measurements["million_rollup_requests"]
            + measurements["million_final_failures"]
            == 1_000_000
        )

    check(verify)


def bench_cross_node_trace_critical_path(check, measurements):
    """>=1 sampled trace's critical path provably spans two nodes."""

    def verify():
        assert measurements["million_traces"] >= 1
        assert measurements["million_cross_node_traces"] >= 1
        assert measurements["million_cross_node_critical_paths"] >= 1

    check(verify)


def bench_measurement_under_budget(check, measurements):
    """Whole pass stays interactive (wall-clock-budget pattern)."""

    def verify():
        elapsed = measurements["measurement_seconds"]
        assert elapsed < MEASUREMENT_BUDGET_S, (
            f"cluster measurements took {elapsed:.1f}s, "
            f"budget {MEASUREMENT_BUDGET_S}s"
        )

    check(verify)


def bench_matches_committed_baseline(check, measurements):
    """Committed BENCH_cluster.json must still clear the same floors."""

    def verify():
        if not _BASELINE_PATH.exists():
            return
        baseline = json.loads(_BASELINE_PATH.read_text())
        assert baseline["events_per_second"] >= EVENTS_PER_SECOND_FLOOR
        assert baseline["million_requests"] == 1_000_000
        assert baseline["million_observed"] == 1_000_000
        assert baseline["million_in_flight"] == 0
        assert baseline["million_errors_typed"] is True
        assert (
            baseline["million_capacity_after"]
            == baseline["million_capacity_before"]
        )
        assert baseline["million_cross_node_critical_paths"] >= 1

    check(verify)


if __name__ == "__main__":
    figures = measure_all()
    _BASELINE_PATH.write_text(json.dumps(figures, indent=2) + "\n")
    for key, value in figures.items():
        print(f"{key:36s} {value}")
