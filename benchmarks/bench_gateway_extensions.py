"""Extension bench: autoscaling and the sponge availability attack.

Two deployment-side extensions the paper motivates:

* §V's dynamic capacity ("augment dynamically the capacity of each
  individual metric to handle the workload") — the autoscaler must cut the
  Fig. 8(d) image-LIME latency versus a static pool;
* §VIII's sponge attacks — an image-payload flood at the LIME host must
  inflate legitimate tabular latency into denial-of-service territory,
  quantified by the availability-impact metric.
"""

import pytest

from repro.attacks.sponge import run_sponge_experiment, sponge_thread_group
from repro.gateway import (
    Autoscaler,
    AutoscalerPolicy,
    LoadGenerator,
    ThreadGroup,
    build_paper_deployment,
)


def image_lime_latency(autoscale: bool, seed: int = 1) -> float:
    sim, gateway = build_paper_deployment(seed=seed)
    if autoscale:
        scaler = Autoscaler(
            sim,
            interval_seconds=1.0,
            policy=AutoscalerPolicy(min_workers=4, max_workers=16),
        )
        scaler.watch(gateway._routes["lime"])
        scaler.start(horizon_seconds=120.0)
    generator = LoadGenerator(sim, gateway)
    generator.add_thread_group(
        ThreadGroup(route="lime", n_threads=20, iterations=3, payload="image")
    )
    return generator.run().avg_response_ms


@pytest.fixture(scope="module")
def autoscale_comparison(figure_printer):
    static = image_lime_latency(autoscale=False)
    scaled = image_lime_latency(autoscale=True)
    figure_printer(
        "Extension: image-LIME latency, static 4 workers vs autoscaled",
        ["setup", "avg_ms"],
        [("static", static), ("autoscaled", scaled)],
    )
    return static, scaled


def bench_autoscaler_cuts_latency(check, autoscale_comparison):
    def verify():
        static, scaled = autoscale_comparison
        assert scaled < static * 0.85

    check(verify)


@pytest.fixture(scope="module")
def sponge_results(figure_printer):
    legitimate = ThreadGroup(
        route="lime", n_threads=8, iterations=5, payload="tabular"
    )
    sponge = sponge_thread_group("lime", n_threads=8, iterations=3)
    impact, baseline, attacked = run_sponge_experiment(
        build_paper_deployment, "lime", legitimate, sponge, seed=0
    )
    figure_printer(
        "Extension: sponge attack on the LIME host (legitimate traffic)",
        ["metric", "baseline", "under attack"],
        [
            ("avg_ms", baseline.avg_response_ms, attacked.avg_response_ms),
            ("err_rate", baseline.error_rate, attacked.error_rate),
        ],
    )
    return impact


def bench_sponge_inflates_legitimate_latency(check, sponge_results):
    def verify():
        assert sponge_results.latency_inflation > 3.0

    check(verify)


def bench_sponge_classified_as_dos(check, sponge_results):
    def verify():
        assert sponge_results.denial_of_service

    check(verify)


def bench_autoscaled_sponge_mitigation(check):
    """Autoscaling partially absorbs the sponge flood: the legitimate
    traffic's latency inflation shrinks versus the static deployment."""

    def verify():
        legitimate = ThreadGroup(
            route="lime", n_threads=8, iterations=5, payload="tabular"
        )
        sponge = sponge_thread_group("lime", n_threads=8, iterations=3)

        def scaled_builder(seed=0):
            sim, gateway = build_paper_deployment(seed=seed)
            scaler = Autoscaler(
                sim,
                interval_seconds=0.5,
                policy=AutoscalerPolicy(min_workers=4, max_workers=32),
            )
            scaler.watch(gateway._routes["lime"])
            scaler.start(horizon_seconds=120.0)
            return sim, gateway

        static_impact, __, __ = run_sponge_experiment(
            build_paper_deployment, "lime", legitimate, sponge, seed=0
        )
        scaled_impact, __, __ = run_sponge_experiment(
            scaled_builder, "lime", legitimate, sponge, seed=0
        )
        assert scaled_impact.latency_inflation < static_impact.latency_inflation

    check(verify)


def bench_gateway_sim_with_autoscaler_cost(benchmark):
    benchmark(lambda: image_lime_latency(autoscale=True))
