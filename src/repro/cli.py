"""Command-line interface: quick access to the reproduction's experiments.

``python -m repro <command>`` runs compact versions of the paper's
experiments without writing any code — useful for smoke-checking an
install and for demos.  The full experiment regeneration lives in
``benchmarks/`` (see EXPERIMENTS.md); these commands trade sweep size for
seconds-scale runtimes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

import repro


def _cmd_version(args: argparse.Namespace) -> int:
    print(f"repro {repro.__version__} — SPATIAL architecture reproduction")
    return 0


def _cmd_taxonomy(args: argparse.Namespace) -> int:
    from repro.attacks.taxonomy import ATTACK_TAXONOMY
    from repro.attacks.vulnerabilities import PIPELINE_VULNERABILITIES

    print("Fig. 1 — attack classes per AI algorithm:")
    for entry in ATTACK_TAXONOMY:
        attacks = ", ".join(sorted(a.value for a in entry.attacks))
        print(f"  {entry.algorithm:24s} {attacks}")
    print("\nFig. 3 — pipeline vulnerabilities (stage: name [CIA]):")
    for v in PIPELINE_VULNERABILITIES:
        cia = "/".join(sorted(p.value[0].upper() for p in v.compromises))
        print(f"  {v.stage.value:18s} {v.name:26s} [{cia}]")
    return 0


def _cmd_baselines(args: argparse.Namespace) -> int:
    from repro.datasets import generate_unimib_like, to_binary_fall_task
    from repro.ml import (
        DecisionTreeClassifier,
        DNNClassifier,
        LogisticRegressionClassifier,
        MLPClassifier,
        RandomForestClassifier,
        StandardScaler,
        train_test_split,
    )

    print(f"use case 1 baselines on {args.samples} synthetic samples "
          "(paper: LR 0.73, DT 0.90, RF/MLP/DNN 0.97)")
    dataset = generate_unimib_like(n_samples=args.samples, seed=args.seed)
    X, y = to_binary_fall_task(dataset)
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_size=0.25, seed=args.seed
    )
    scaler = StandardScaler().fit(X_train)
    X_train, X_test = scaler.transform(X_train), scaler.transform(X_test)
    models = {
        "LR": LogisticRegressionClassifier(n_epochs=30, seed=0),
        "DT": DecisionTreeClassifier(max_depth=14, seed=0),
        "RF": RandomForestClassifier(n_estimators=30, max_depth=14, seed=0),
        "MLP": MLPClassifier(hidden_layers=(64, 32), n_epochs=40, seed=0),
        "DNN": DNNClassifier(n_epochs=40, seed=0),
    }
    for name, model in models.items():
        accuracy = model.fit(X_train, y_train).score(X_test, y_test)
        print(f"  {name:4s} accuracy={accuracy:.3f}")
    return 0


def _cmd_poison(args: argparse.Namespace) -> int:
    from repro.attacks import RandomLabelFlippingAttack
    from repro.datasets import generate_unimib_like, to_binary_fall_task
    from repro.ml import RandomForestClassifier, StandardScaler, train_test_split

    dataset = generate_unimib_like(n_samples=args.samples, seed=args.seed)
    X, y = to_binary_fall_task(dataset)
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_size=0.25, seed=args.seed
    )
    scaler = StandardScaler().fit(X_train)
    X_train, X_test = scaler.transform(X_train), scaler.transform(X_test)
    print("Fig. 6 (compact): RF accuracy vs label-flip rate")
    for rate in (0.0, 0.1, 0.3, 0.5):
        result = RandomLabelFlippingAttack(rate=rate, seed=0).apply(
            X_train, y_train
        )
        model = RandomForestClassifier(
            n_estimators=20, max_depth=12, seed=0
        ).fit(result.X, result.y)
        print(f"  p={rate:4.0%}  accuracy={model.score(X_test, y_test):.3f}")
    return 0


def _serving_policy_from_args(args: argparse.Namespace):
    """Build a ServingPolicy when any serving flag was given, else None."""
    from repro.serving import ServingPolicy

    flags = (args.batch_window, args.max_batch, args.cache_size,
             args.shed_depth, args.pool_workers)
    if all(value is None for value in flags):
        return None
    defaults = ServingPolicy()
    return ServingPolicy(
        max_batch=(
            args.max_batch if args.max_batch is not None
            else defaults.max_batch
        ),
        batch_window=(
            args.batch_window / 1000.0 if args.batch_window is not None
            else defaults.batch_window
        ),
        cache_size=args.cache_size if args.cache_size is not None else 0,
        shed_depth=args.shed_depth if args.shed_depth is not None else 0,
        pool_workers=(
            args.pool_workers if args.pool_workers is not None else 0
        ),
        pool_arena_mb=(
            args.pool_arena_mb if args.pool_arena_mb is not None
            else defaults.pool_arena_mb
        ),
    )


def _add_serving_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch-window", type=float, default=None, metavar="MS",
        help="micro-batch flush deadline in milliseconds "
             "(enables the serving layer)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=None, metavar="N",
        help="micro-batch size trigger (enables the serving layer)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=None, metavar="N",
        help="explanation-cache capacity, 0 disables "
             "(enables the serving layer)",
    )
    parser.add_argument(
        "--shed-depth", type=int, default=None, metavar="N",
        help="admission-control queue depth per service, 0 disables "
             "(enables the serving layer)",
    )
    parser.add_argument(
        "--pool-workers", type=int, default=None, metavar="N",
        help="kernel-pool workers per station: flushed batches run on "
             "the pool tier instead of station workers, 0 keeps them "
             "inline (enables the serving layer)",
    )
    parser.add_argument(
        "--pool-arena-mb", type=float, default=None, metavar="MB",
        help="shared-memory arena size for the real kernel pool "
             "(documentation of the deployment; the simulation only "
             "records it)",
    )


def _print_serving_summary(summary: dict) -> None:
    from repro.core.dashboard import AIDashboard

    rows = AIDashboard._serving_rows(summary)
    if not rows:
        return
    print("  serving layer:")
    for row in rows:
        line = (
            f"    {row['route']:>12}  {row['batches']:>6} batches "
            f"(mean {row['mean_batch']:4.1f} rows)"
        )
        if row["cache_hits"] or row["cache_misses"]:
            line += f"  cache hit-rate {row['cache_hit_rate']:.1%}"
        if row["shed_rows"]:
            line += f"  shed {row['shed_rows']}"
        print(line)
    for row in AIDashboard._pool_rows(summary):
        line = (
            f"    {row['route']:>12}  pool x{row['workers']} "
            f"(fan-out {row['mean_fan_out']:4.1f}, "
            f"peak {row['peak_inflight']})"
        )
        if row["crashes"]:
            line += (
                f"  crashes {row['crashes']} "
                f"(resubmitted {row['resubmitted']})"
            )
        print(line)
    totals = summary.get("_totals")
    if totals:
        print(
            "    totals: "
            + ", ".join(f"{key}={value}" for key, value in totals.items())
        )


def _cmd_capacity(args: argparse.Namespace) -> int:
    import time as _time

    from repro.gateway import LoadGenerator, ThreadGroup, build_paper_deployment
    from repro.gateway.arrivals import PoissonArrivalGroup
    from repro.gateway.capacity import CapacityRunner

    sim, gateway = build_paper_deployment(seed=args.seed)
    if args.route not in gateway.routes:
        print(f"unknown route {args.route!r}; available: {gateway.routes}",
              file=sys.stderr)
        return 2
    serving = _serving_policy_from_args(args)
    if args.engine == "records":
        if args.open_loop is not None:
            print("--open-loop requires --engine columnar", file=sys.stderr)
            return 2
        if serving is not None:
            print(
                "--batch-window/--max-batch/--cache-size/--shed-depth "
                "require --engine columnar",
                file=sys.stderr,
            )
            return 2
        generator = LoadGenerator(sim, gateway)
        generator.add_thread_group(
            ThreadGroup(
                route=args.route,
                n_threads=args.threads,
                rampup_seconds=1.0,
                iterations=args.iterations,
                payload=args.payload,
            )
        )
        report = generator.run()
        print(f"capacity test: route={args.route} threads={args.threads} "
              f"payload={args.payload} engine=records")
        print("  " + report.render_text())
        return 0
    runner = CapacityRunner(
        sim,
        gateway,
        retain_records=not args.no_retain,
        seed=args.seed,
        trace_every=args.trace_every,
        serving=serving,
    )
    if args.open_loop is not None:
        runner.add_open_loop(
            PoissonArrivalGroup(
                route=args.route,
                rate_rps=args.open_loop,
                n_requests=args.requests,
                payload=args.payload,
            )
        )
        shape = f"open-loop rate={args.open_loop:g}rps requests={args.requests}"
    else:
        runner.add_thread_group(
            ThreadGroup(
                route=args.route,
                n_threads=args.threads,
                rampup_seconds=1.0,
                iterations=args.iterations,
                payload=args.payload,
            )
        )
        shape = f"threads={args.threads} iterations={args.iterations}"
    started = _time.perf_counter()
    report = runner.run()
    elapsed = _time.perf_counter() - started
    print(f"capacity test: route={args.route} {shape} "
          f"payload={args.payload} engine=columnar"
          f"{' (ring)' if args.no_retain else ''}")
    print("  " + report.render_text())
    if serving is not None:
        _print_serving_summary(runner.serving_summary())
    print(f"  {sim.processed_events} events in {elapsed:.3f}s wall "
          f"({sim.processed_events / elapsed:,.0f} events/s), "
          f"log capacity {runner.log.capacity} rows"
          + (f", {runner.log.recycled} recycled" if args.no_retain else ""))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import time as _time

    from repro.cluster import (
        AutoscalePolicy,
        ClusterAutoscaler,
        ClusterRunner,
        ClusterTopology,
        FaultPlan,
        paper_route_specs,
    )
    from repro.gateway.arrivals import PoissonArrivalGroup
    from repro.gateway.loadgen import ThreadGroup
    from repro.gateway.simulation import Simulator
    from repro.telemetry import TumblingWindowAggregator

    specs = paper_route_specs()
    known = [spec.route for spec in specs]
    routes = [r.strip() for r in args.routes.split(",") if r.strip()]
    unknown = [r for r in routes if r not in known]
    if unknown:
        print(f"unknown routes {unknown}; available: {known}", file=sys.stderr)
        return 2
    sim = Simulator()
    topology = ClusterTopology(
        sim,
        specs,
        n_nodes=args.nodes,
        replication=args.replication,
        seed=args.seed,
    )
    plan = None
    if args.fault_plan:
        try:
            plan = FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            print(f"bad --fault-plan: {exc}", file=sys.stderr)
            return 2
        off_cluster = set(plan.nodes()) - set(topology.node_ids())
        if off_cluster:
            print(
                f"--fault-plan names unknown nodes {sorted(off_cluster)}; "
                f"cluster has {topology.node_ids()}",
                file=sys.stderr,
            )
            return 2
    serving = _serving_policy_from_args(args)
    runner = ClusterRunner(
        topology,
        retain_records=not args.no_retain,
        seed=args.seed,
        trace_every=args.trace_every,
        serving=serving,
    )
    per_route = max(1, args.requests // len(routes))
    if args.open_loop is not None:
        for route in routes:
            runner.add_open_loop(
                PoissonArrivalGroup(
                    route=route,
                    rate_rps=args.open_loop / len(routes),
                    n_requests=per_route,
                )
            )
        shape = f"open-loop rate={args.open_loop:g}rps requests={args.requests}"
    else:
        iterations = max(1, per_route // args.threads)
        for route in routes:
            runner.add_thread_group(
                ThreadGroup(
                    route=route,
                    n_threads=args.threads,
                    rampup_seconds=1.0,
                    iterations=iterations,
                )
            )
        shape = f"threads={args.threads}x{len(routes)} iterations={iterations}"
    if plan is not None:
        runner.apply_fault_plan(plan)
    scaler = None
    if args.autoscale:
        scaler = ClusterAutoscaler(
            runner,
            TumblingWindowAggregator(window_seconds=1.0),
            AutoscalePolicy(min_nodes=args.nodes, max_nodes=4 * args.nodes),
        )
        scaler.start()
    started = _time.perf_counter()
    report = runner.run()
    elapsed = _time.perf_counter() - started
    ring = " (ring)" if args.no_retain else ""
    print(
        f"cluster run: nodes={args.nodes} replication={args.replication} "
        f"routes={','.join(routes)} {shape}{ring}"
    )
    print("  " + report.render_text())
    print("  per-node rollup:")
    for node_id, node_report in runner.summary_by_node(
        report.duration_seconds
    ).items():
        print(
            f"    {node_id:>8}  {node_report.n_requests:>8} req  "
            f"{node_report.n_errors:>6} err  "
            f"p95 {node_report.p95_response_ms:8.2f}ms"
        )
    if serving is not None:
        _print_serving_summary(runner.serving_summary())
    ledger = runner.conservation()
    print(
        "  failover ledger: "
        + ", ".join(f"{key}={value}" for key, value in ledger.items())
    )
    if runner.trace_every:
        print(
            f"  traces: {len(runner.collector.traces())} collected, "
            f"{runner.cross_node_traces} cross-node"
        )
    if scaler is not None:
        for decision in scaler.decisions:
            print(
                f"  autoscale @{decision.at:.2f}s {decision.action} "
                f"{decision.node_id} (pressure {decision.pressure:.1f})"
            )
    print(
        f"  {sim.processed_events} events in {elapsed:.3f}s wall "
        f"({sim.processed_events / elapsed:,.0f} events/s), "
        f"log capacity {runner.log.capacity} rows"
        + (f", {runner.log.recycled} recycled" if args.no_retain else "")
    )
    return 0


def _cmd_dashboard_demo(args: argparse.Namespace) -> int:
    from repro.core import (
        AIDashboard,
        AlertRule,
        ContinuousMonitor,
        DataQualitySensor,
        ModelContext,
        PerformanceSensor,
        SensorRegistry,
    )
    from repro.datasets import generate_unimib_like, to_binary_fall_task
    from repro.ml import RandomForestClassifier, StandardScaler
    from repro.ml.pipeline import AIPipeline

    dataset = generate_unimib_like(n_samples=args.samples, seed=args.seed)
    X, y = to_binary_fall_task(dataset)
    X = StandardScaler().fit_transform(X)
    pipeline = AIPipeline(
        data_provider=lambda: (X, y),
        model_factory=lambda: RandomForestClassifier(
            n_estimators=15, max_depth=12, seed=0
        ),
        seed=args.seed,
    )
    registry = SensorRegistry()
    registry.register(PerformanceSensor())
    registry.register(DataQualitySensor())
    dashboard = AIDashboard()
    dashboard.add_rule(AlertRule(sensor="performance", threshold=0.9))
    monitor = ContinuousMonitor(
        registry,
        dashboard,
        lambda: ModelContext(
            model=pipeline.context.model,
            X_train=pipeline.context.X_train,
            y_train=pipeline.context.y_train,
            X_test=pipeline.context.X_test,
            y_test=pipeline.context.y_test,
            model_version=pipeline.context.model_version,
        ),
    )
    pipeline.run()
    monitor.on_model_update()
    monitor.run(2)
    print(dashboard.render_text())
    score = dashboard.trust_panel()
    print(f"\naggregate trust score: {score.value:.3f}")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    """Replay/inspect a telemetry WAL: rollups, worst sensors, health."""
    import json
    import os

    from repro.telemetry import (
        TelemetryQuery,
        WalCorruptionError,
        trailing_windows,
    )
    from repro.telemetry.rollup import merge_window_stats
    from repro.telemetry.wal import segment_paths

    if args.last is not None and args.last <= 0:
        print("--last must be a positive number of seconds", file=sys.stderr)
        return 2
    segments = segment_paths(args.wal)
    if not segments:
        print(f"no WAL segments under {args.wal!r}", file=sys.stderr)
        return 2
    cold = TelemetryQuery(wal_dir=args.wal)
    try:
        rollups = cold.rebuild_rollups(
            window_seconds=args.window, cascades=()
        )
    except ValueError as exc:
        print(f"invalid rollup parameters: {exc}", file=sys.stderr)
        return 2
    except WalCorruptionError as exc:
        print(f"WAL is damaged mid-stream: {exc}", file=sys.stderr)
        return 2
    query = TelemetryQuery(rollups=rollups, wal_dir=args.wal)
    sources = rollups.sources
    if args.source:
        wanted = set(args.source)
        unknown = sorted(wanted - set(sources))
        if unknown:
            print(
                f"unknown source(s): {', '.join(unknown)} "
                f"(have: {', '.join(sources)})",
                file=sys.stderr,
            )
            return 2
        sources = [name for name in sources if name in wanted]

    def windows_for(name: str):
        windows = rollups.windows(source=name)
        if args.last is not None:
            windows = trailing_windows(windows, args.last)
        return windows

    def totals_for(name: str):
        windows = windows_for(name)
        if not windows:
            return None
        merged = merge_window_stats(
            windows, windows[0].window_start, args.window
        )
        return {
            "count": float(merged.count),
            "mean": merged.mean,
            "min": merged.min,
            "max": merged.max,
        }

    def worst_sources():
        # rank only the sources (and trailing range) the flags selected
        ranked = sorted(
            (
                (name, totals["mean"])
                for name in sources
                if (totals := totals_for(name)) is not None
            ),
            key=lambda pair: pair[1],
        )
        return ranked[: args.top]

    cache_sources = [name for name in sources if name.startswith("cache:")]

    def cache_series():
        # per-window hit-rate samples for each cache:<route> source
        return {
            name: [
                {"t": w.window_start, "hit_rate": w.mean, "count": w.count}
                for w in windows_for(name)
            ]
            for name in cache_sources
        }

    if args.json:
        payload = {
            "segments": len(segments),
            "events": rollups.ingested,
            "window_seconds": args.window,
            "last_seconds": args.last,
            "sources": {
                name: totals
                for name in sources
                if (totals := totals_for(name)) is not None
            },
            "worst": worst_sources(),
        }
        if cache_sources:
            payload["cache_hit_rate"] = cache_series()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    total_bytes = sum(os.path.getsize(p) for p in segments)
    print(
        f"WAL {args.wal}: {len(segments)} segment(s), "
        f"{total_bytes} bytes, {rollups.ingested} events, "
        f"watermark t={rollups.watermark:.3f}s"
    )
    scope = (
        f", trailing {args.last:g}s" if args.last is not None else ""
    )
    print(f"\nper-source rollups ({args.window:g}s windows{scope}):")
    header = (
        f"  {'source':<24} {'count':>7} {'mean':>8} {'min':>8} "
        f"{'max':>8} {'p50':>8} {'p95':>8}"
    )
    print(header)
    for name in sources:
        windows = windows_for(name)
        totals = totals_for(name)
        if totals is None:
            continue
        p50 = sum(w.p50 * w.count for w in windows) / totals["count"]
        p95 = sum(w.p95 * w.count for w in windows) / totals["count"]
        print(
            f"  {name:<24} {int(totals['count']):>7} {totals['mean']:>8.3f} "
            f"{totals['min']:>8.3f} {totals['max']:>8.3f} "
            f"{p50:>8.3f} {p95:>8.3f}"
        )
    if cache_sources:
        print("\nexplanation-cache hit-rate series:")
        for name, samples in cache_series().items():
            trail = " ".join(
                f"{s['t']:g}s={s['hit_rate']:.2f}" for s in samples[-8:]
            )
            print(f"  {name:<24} {trail}")
    ranked = worst_sources()
    if ranked:
        print(f"\nworst sources (lowest mean, top {args.top}):")
        for name, score in ranked:
            print(f"  {name:<24} {score:.3f}")
    if args.tail:
        print(f"\nlast {args.tail} event(s):")
        events = query.events()[-args.tail :]
        for event in events:
            print(
                f"  t={event.timestamp:<10.3f} {event.kind:<16} "
                f"{event.source:<24} value={event.value:.4f}"
            )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Traced capacity run: waterfalls, critical paths, span histograms."""
    import json

    from repro.trace_scenario import run_traced_scenario
    from repro.tracing import (
        critical_path,
        latency_summary,
        render_critical_path,
        render_latency_table,
        render_waterfall,
    )

    try:
        result = run_traced_scenario(
            route=args.route,
            n_threads=args.threads,
            iterations=args.iterations,
            seed=args.seed,
            payload=args.payload,
            window_seconds=args.window,
            probe_sensors=not args.no_probe,
        )
    except KeyError as exc:
        print(f"trace scenario failed: {exc}", file=sys.stderr)
        return 2
    trees = result.traces()
    if not trees:
        print("no traces recorded", file=sys.stderr)
        return 2
    slowest = max(trees, key=lambda t: t.duration)
    resolution = result.slowest_window_resolution()
    views = (
        {"waterfall", "critical-path", "histogram", "exemplars"}
        if args.view == "all"
        else {args.view}
    )

    if args.json:
        payload = {
            "route": result.route,
            "n_traces": len(trees),
            "report": {
                "samples": result.report.n_requests,
                "errors": result.report.n_errors,
                "avg_response_ms": result.report.avg_response_ms,
                "p95_response_ms": result.report.p95_response_ms,
                "throughput_rps": result.report.throughput_rps,
            },
            "slowest_trace": {
                "trace_id": slowest.trace_id,
                "duration_ms": slowest.duration * 1000.0,
                "critical_path": [
                    {"span": seg.span.name, "ms": seg.seconds * 1000.0}
                    for seg in critical_path(slowest)
                ],
            },
            "span_latency": [
                s.to_dict() for s in latency_summary(result.collector.all_spans())
            ],
            "slowest_window": None
            if resolution is None
            else {
                "window_start": resolution.window.window_start,
                "window_seconds": resolution.window.window_seconds,
                "mean": resolution.window.mean,
                "trace_ids": resolution.trace_ids,
                "resolved": resolution.resolved,
            },
            "collector": result.collector.stats(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(
        f"traced capacity run: route={result.route} threads={args.threads} "
        f"iterations={args.iterations} payload={args.payload}"
    )
    print("  " + result.report.render_text())
    print(
        f"  {len(trees)} trace(s) recorded, "
        f"{result.tracer.ended} span(s), 0 open"
        if result.tracer.active_spans == 0
        else f"  WARNING: {result.tracer.active_spans} span(s) still open"
    )
    if "waterfall" in views:
        print(f"\nslowest trace ({slowest.duration * 1000.0:.2f}ms):")
        print(render_waterfall(slowest))
    if "critical-path" in views:
        print()
        print(render_critical_path(critical_path(slowest)))
    if "histogram" in views:
        print("\nper-span latency across all traces:")
        print(render_latency_table(latency_summary(result.collector.all_spans())))
    if "exemplars" in views and resolution is not None:
        print("\nslowest rollup window → exemplar traces:")
        print(resolution.render_text())
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    """SLO incident drill: burn-rate alerts, budgets, incident narratives."""
    import json

    from repro.core.narrator import Audience
    from repro.slo import load_definitions
    from repro.slo_scenario import run_incident_drill

    definitions = None
    if args.definitions:
        try:
            definitions = load_definitions(args.definitions)
        except (OSError, KeyError, TypeError, ValueError) as exc:
            print(f"bad SLO definitions file: {exc}", file=sys.stderr)
            return 2
    audience = Audience(args.audience.replace("-", "_"))
    result = run_incident_drill(
        route=args.route,
        seed=args.seed,
        duration=args.duration,
        fault_at=args.fault_at,
        fault_duration=args.fault_duration,
        slow_factor=args.slow_factor,
        wal_dir=args.wal,
        definitions=definitions,
    )
    primary = result.primary_incident

    if args.json:
        payload = {
            "route": result.route,
            "faulted_node": result.faulted_node,
            "fault_at": result.fault_at,
            "requests": result.report.n_requests,
            "errors": result.report.n_errors,
            "alerts": [
                {
                    "slo": a.slo,
                    "source": a.source,
                    "rule": a.rule,
                    "severity": a.severity,
                    "state": a.state,
                    "timestamp": a.timestamp,
                    "short_burn": a.short_burn,
                    "long_burn": a.long_burn,
                    "factor": a.factor,
                }
                for a in result.alerts
            ],
            "incidents": [i.to_dict() for i in result.incidents],
            "status": [
                {
                    "slo": s.slo,
                    "source": s.source,
                    "objective": s.objective,
                    "target": s.target,
                    "budget_remaining": s.budget_remaining,
                    "short_burn": s.short_burn,
                    "long_burn": s.long_burn,
                    "firing": list(s.firing_rules),
                }
                for s in result.evaluator.status()
            ],
            "report": None
            if primary is None
            else result.incident_report(audience),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(
        f"incident drill: route={result.route} seed={args.seed} "
        f"fault=slow x{args.slow_factor:g} on {result.faulted_node} "
        f"at t={result.fault_at:g}s"
    )
    print(
        f"  {result.report.n_requests} request(s), "
        f"{result.report.n_errors} error(s), "
        f"{len(result.alerts)} alert edge(s), "
        f"{len(result.incidents)} incident(s)"
    )
    if args.watch:
        print("\nalert stream:")
        for alert in result.alerts:
            print(f"  t={alert.timestamp:7.1f}s  {alert.describe()}")
    print()
    print(result.dashboard().render_text())
    if args.report:
        print()
        if primary is None:
            print("no node-attributed incident to report on")
        else:
            print(f"incident report ({audience.value} audience):")
            print(result.incident_report(audience))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis: AST + flow rules, call graph, layering contract."""
    import json
    from pathlib import Path

    from repro.analysis import all_project_rules, all_rules, run_analysis

    if args.list_rules:
        for spec in all_rules():
            print(f"  {spec.rule_id:<22} [{spec.severity}] {spec.description}")
        for spec in all_project_rules():
            print(
                f"  {spec.rule_id:<22} [{spec.severity}] "
                f"(whole-program) {spec.description}"
            )
        return 0
    try:
        report = run_analysis(
            root=Path(args.root) if args.root else None,
            rules=args.rule or None,
            baseline=Path(args.baseline) if args.baseline else None,
            contracts=not args.no_contracts,
            changed=args.changed,
            jobs=args.jobs,
            cache_path=Path(args.cache) if args.cache else None,
            strict_baseline=args.strict_baseline,
        )
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"lint failed: {exc}", file=sys.stderr)
        return 2
    if args.graph == "dot":
        print(report.context.graph.to_dot())
        return 0
    if args.explain:
        print(report.render_explanations(args.explain))
        return report.exit_code
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return report.exit_code


def _cmd_model_card(args: argparse.Namespace) -> int:
    from repro.core import AlertRule, SpatialSystem
    from repro.datasets import generate_unimib_like, to_binary_fall_task
    from repro.ml import RandomForestClassifier, StandardScaler
    from repro.ml.pipeline import AIPipeline

    dataset = generate_unimib_like(n_samples=args.samples, seed=args.seed)
    X, y = to_binary_fall_task(dataset)
    X = StandardScaler().fit_transform(X)
    pipeline = AIPipeline(
        data_provider=lambda: (X, y),
        model_factory=lambda: RandomForestClassifier(
            n_estimators=15, max_depth=12, seed=0
        ),
        seed=args.seed,
    )
    spatial = SpatialSystem.attach(
        pipeline, rules=[AlertRule(sensor="performance", threshold=0.85)]
    )
    spatial.run_pipeline()
    print(
        spatial.model_card(
            model_name="fall-detection-demo",
            intended_use="Demo artifact produced by `python -m repro model-card`.",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPATIAL architecture reproduction — quick experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("version", help="print the package version").set_defaults(
        func=_cmd_version
    )
    sub.add_parser(
        "taxonomy", help="print the Fig. 1/Fig. 3 registries"
    ).set_defaults(func=_cmd_taxonomy)

    baselines = sub.add_parser(
        "baselines", help="use-case-1 model baselines (compact)"
    )
    baselines.add_argument("--samples", type=int, default=2000)
    baselines.add_argument("--seed", type=int, default=0)
    baselines.set_defaults(func=_cmd_baselines)

    poison = sub.add_parser(
        "poison", help="compact Fig. 6 label-flipping sweep on the RF"
    )
    poison.add_argument("--samples", type=int, default=2000)
    poison.add_argument("--seed", type=int, default=0)
    poison.set_defaults(func=_cmd_poison)

    capacity = sub.add_parser(
        "capacity", help="one capacity-load run on the simulated deployment"
    )
    capacity.add_argument("--route", default="shap")
    capacity.add_argument("--threads", type=int, default=100)
    capacity.add_argument("--iterations", type=int, default=20)
    capacity.add_argument("--payload", default="tabular")
    capacity.add_argument("--seed", type=int, default=1)
    capacity.add_argument(
        "--engine",
        choices=["columnar", "records"],
        default="columnar",
        help="columnar = streaming CapacityRunner (default); "
        "records = seed-style per-request record path",
    )
    capacity.add_argument(
        "--open-loop",
        type=float,
        default=None,
        metavar="RATE",
        help="drive a Poisson open-loop arrival process at RATE "
        "requests/second instead of closed-loop threads",
    )
    capacity.add_argument(
        "--requests",
        type=int,
        default=10_000,
        help="total requests for --open-loop runs",
    )
    capacity.add_argument(
        "--trace-every",
        type=int,
        default=0,
        help="route every Nth request through the traced record path",
    )
    capacity.add_argument(
        "--no-retain",
        action="store_true",
        help="ring mode: recycle completed rows (memory bounded by "
        "in-flight count, enables million-request runs)",
    )
    _add_serving_flags(capacity)
    capacity.set_defaults(func=_cmd_capacity)

    cluster = sub.add_parser(
        "cluster",
        help="a sharded multi-node capacity run with failure injection",
    )
    cluster.add_argument("--nodes", type=int, default=8)
    cluster.add_argument(
        "--replication",
        type=int,
        default=2,
        help="preference-list length per route (1 primary + replicas)",
    )
    cluster.add_argument(
        "--fault-plan",
        default="",
        metavar="SPEC",
        help="comma-separated fault events: crash:node@t[:restart_t], "
        "partition:node@t:duration, slow:node@t:duration:factor, "
        "poolcrash:node@t",
    )
    cluster.add_argument(
        "--requests",
        type=int,
        default=100_000,
        help="total requests across all routes",
    )
    cluster.add_argument(
        "--open-loop",
        type=float,
        default=None,
        metavar="RATE",
        help="aggregate Poisson arrival rate (requests/second) split "
        "across routes; omit for closed-loop threads",
    )
    cluster.add_argument(
        "--routes",
        default="shap,lime,ai_pipeline",
        help="comma-separated route mix",
    )
    cluster.add_argument("--threads", type=int, default=100)
    cluster.add_argument("--seed", type=int, default=1)
    cluster.add_argument("--trace-every", type=int, default=0)
    cluster.add_argument(
        "--no-retain",
        action="store_true",
        help="ring mode: recycle completed rows for million-request runs",
    )
    cluster.add_argument(
        "--autoscale",
        action="store_true",
        help="enable the rollup-pressure autoscaler",
    )
    _add_serving_flags(cluster)
    cluster.set_defaults(func=_cmd_cluster)

    demo = sub.add_parser(
        "dashboard-demo", help="train, instrument, monitor, render the dashboard"
    )
    demo.add_argument("--samples", type=int, default=1500)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=_cmd_dashboard_demo)

    card = sub.add_parser(
        "model-card", help="generate a model card for a demo pipeline"
    )
    card.add_argument("--samples", type=int, default=1200)
    card.add_argument("--seed", type=int, default=0)
    card.set_defaults(func=_cmd_model_card)

    telemetry = sub.add_parser(
        "telemetry", help="replay and inspect a telemetry WAL directory"
    )
    telemetry.add_argument(
        "--wal", required=True, help="WAL segment directory to replay"
    )
    telemetry.add_argument(
        "--window", type=float, default=1.0, help="rollup window seconds"
    )
    telemetry.add_argument(
        "--top", type=int, default=5, help="worst-source ranking size"
    )
    telemetry.add_argument(
        "--tail", type=int, default=0, help="also print the last N events"
    )
    telemetry.add_argument(
        "--last",
        type=float,
        default=None,
        metavar="SECONDS",
        help="restrict rollups to the trailing window before the stream end",
    )
    telemetry.add_argument(
        "--source",
        action="append",
        metavar="NAME",
        help="restrict output to this source (repeatable; default: all)",
    )
    telemetry.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    telemetry.set_defaults(func=_cmd_telemetry)

    trace = sub.add_parser(
        "trace",
        help="traced capacity run: waterfall, critical path, span histograms",
    )
    trace.add_argument("--route", default="shap")
    trace.add_argument("--threads", type=int, default=8)
    trace.add_argument("--iterations", type=int, default=3)
    trace.add_argument("--payload", default="tabular")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--window", type=float, default=0.25, help="rollup window seconds"
    )
    trace.add_argument(
        "--view",
        choices=["all", "waterfall", "critical-path", "histogram", "exemplars"],
        default="all",
    )
    trace.add_argument(
        "--no-probe",
        action="store_true",
        help="skip the per-request sensor probe",
    )
    trace.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    trace.set_defaults(func=_cmd_trace)

    slo = sub.add_parser(
        "slo",
        help="SLO incident drill: burn-rate alerts, budgets, narratives",
    )
    slo.add_argument(
        "--definitions",
        default=None,
        metavar="PATH",
        help="JSON SLO definitions file (default: built-in drill set)",
    )
    slo.add_argument("--route", default="shap")
    slo.add_argument("--seed", type=int, default=21)
    slo.add_argument(
        "--duration", type=float, default=120.0, help="drill horizon seconds"
    )
    slo.add_argument(
        "--fault-at",
        type=float,
        default=40.0,
        help="when the slow-node fault starts",
    )
    slo.add_argument(
        "--fault-duration",
        type=float,
        default=45.0,
        help="how long the fault lasts",
    )
    slo.add_argument(
        "--slow-factor",
        type=float,
        default=6.0,
        help="service-time multiplier on the faulted node",
    )
    slo.add_argument(
        "--wal",
        default=None,
        metavar="DIR",
        help="also persist the drill's telemetry to this WAL directory",
    )
    slo.add_argument(
        "--watch",
        action="store_true",
        help="print the chronological alert edge stream",
    )
    slo.add_argument(
        "--report",
        action="store_true",
        help="print the generated incident narrative",
    )
    slo.add_argument(
        "--audience",
        choices=["end-user", "developer", "auditor"],
        default="developer",
        help="narrative audience for --report",
    )
    slo.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    slo.set_defaults(func=_cmd_slo)

    lint = sub.add_parser(
        "lint",
        help="static analysis: AST rules + import layering contract",
    )
    lint.add_argument(
        "--root",
        default=None,
        help="tree to analyze (default: the installed repro package)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        help="suppression file (default: auto-discover lint-baseline.json)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        metavar="RULE_ID",
        help="run only this rule (repeatable; default: all)",
    )
    lint.add_argument(
        "--no-contracts",
        action="store_true",
        help="skip the import-graph layering/cycle checks",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    lint.add_argument(
        "--changed",
        action="store_true",
        help="incremental: re-analyze only modules whose content hash "
        "(or a transitive importee's) moved since the cached run",
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan the per-module phase across N worker processes",
    )
    lint.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="incremental cache file (default: .lint-cache.json beside "
        "the baseline)",
    )
    lint.add_argument(
        "--strict-baseline",
        action="store_true",
        help="fail the run when baseline entries no longer match anything",
    )
    lint.add_argument(
        "--graph",
        choices=["dot"],
        default=None,
        help="print the whole-program call graph instead of findings",
    )
    lint.add_argument(
        "--explain",
        default=None,
        metavar="RULE_ID",
        help="show the cross-module call chain behind each finding of "
        "this rule",
    )
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
