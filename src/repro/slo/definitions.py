"""Declarative SLO definitions: objectives, thresholds, burn-rate rules.

This module is the *single* home for SLO threshold constants — targets,
latency thresholds, sensor floors, burn-rate factors and window pairs.
The ``slo-threshold-literal`` lint rule enforces the split: any other
module constructing an :class:`SLODefinition` or :class:`BurnRateRule`
from numeric literals is flagged, so operational policy stays data
(reviewable, serialisable, swappable per deployment) rather than code.

Three objective kinds cover the stack's telemetry families:

``availability``
    The source is a 0/1 success series (the cluster runner's sampled
    ``ok:<route>`` events); the bad fraction of a window is exact,
    ``1 - mean``.
``latency``
    The source is a milliseconds series; the bad fraction — requests
    slower than ``threshold`` — is estimated from the window's recorded
    quantile profile (min/p50/p95/max) by piecewise-linear CDF
    interpolation.  Deterministic, and exact at the recorded points.
``sensor_health``
    The source is a normalised [0, 1] trust/drift series; bad means the
    value fell *below* ``threshold`` (the floor), estimated from the
    same CDF.

Sources may be node-qualified cluster sources (``"shap@node-3"``); a
definition whose source ends in ``@*`` binds one evaluator series per
concrete node-qualified source it observes, which is how per-node SLOs
ride the cluster layer's rollup sharding for free.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from repro.telemetry.rollup import WindowStat

__all__ = [
    "OBJECTIVE_AVAILABILITY",
    "OBJECTIVE_KINDS",
    "OBJECTIVE_LATENCY",
    "OBJECTIVE_SENSOR_HEALTH",
    "SEVERITY_PAGE",
    "SEVERITY_TICKET",
    "BurnRateRule",
    "SLODefinition",
    "default_definitions",
    "drill_definitions",
    "fraction_beyond",
    "load_definitions",
]

OBJECTIVE_AVAILABILITY = "availability"
OBJECTIVE_LATENCY = "latency"
OBJECTIVE_SENSOR_HEALTH = "sensor_health"
OBJECTIVE_KINDS = frozenset(
    {OBJECTIVE_AVAILABILITY, OBJECTIVE_LATENCY, OBJECTIVE_SENSOR_HEALTH}
)

#: Alert severities, Google-SRE style: a page demands a human now, a
#: ticket can wait for working hours.
SEVERITY_PAGE = "page"
SEVERITY_TICKET = "ticket"
_SEVERITIES = frozenset({SEVERITY_PAGE, SEVERITY_TICKET})


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alerting rule.

    Fires when the error-budget burn rate over *both* the short and the
    long trailing window meets ``factor`` — the standard two-window
    guard: the long window proves the burn is sustained (no alerts on a
    blip), the short window makes the alert reset quickly once the burn
    stops.
    """

    name: str
    short_seconds: float
    long_seconds: float
    factor: float
    severity: str = SEVERITY_PAGE

    def __post_init__(self) -> None:
        if self.short_seconds <= 0 or self.long_seconds <= 0:
            raise ValueError("burn-rate windows must be positive")
        if self.short_seconds >= self.long_seconds:
            raise ValueError(
                f"short window ({self.short_seconds}s) must be shorter "
                f"than the long window ({self.long_seconds}s)"
            )
        if self.factor <= 0:
            raise ValueError("burn-rate factor must be positive")
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"severity must be one of {sorted(_SEVERITIES)}, "
                f"got {self.severity!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "short_seconds": self.short_seconds,
            "long_seconds": self.long_seconds,
            "factor": self.factor,
            "severity": self.severity,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "BurnRateRule":
        return BurnRateRule(
            name=str(payload["name"]),
            short_seconds=float(payload["short_seconds"]),  # type: ignore[arg-type]
            long_seconds=float(payload["long_seconds"]),  # type: ignore[arg-type]
            factor=float(payload["factor"]),  # type: ignore[arg-type]
            severity=str(payload.get("severity", SEVERITY_PAGE)),
        )


def fraction_beyond(stat: WindowStat, threshold: float, direction: str) -> float:
    """Estimated fraction of a window's values beyond ``threshold``.

    ``direction="above"`` counts values > threshold (latency SLIs),
    ``"below"`` counts values < threshold (sensor floors).  The window
    only records a quantile profile, not raw values, so the CDF between
    the recorded points (min → 0, p50 → 0.5, p95 → 0.95, max → 1) is
    interpolated linearly — deterministic, monotone, and exact whenever
    the threshold coincides with a recorded quantile.
    """
    if direction not in {"above", "below"}:
        raise ValueError("direction must be 'above' or 'below'")
    if stat.count == 0:
        return 0.0
    knots: List[Tuple[float, float]] = [
        (stat.min, 0.0),
        (stat.p50, 0.5),
        (stat.p95, 0.95),
        (stat.max, 1.0),
    ]
    if threshold <= knots[0][0]:
        cdf = 0.0
    elif threshold >= knots[-1][0]:
        cdf = 1.0
    else:
        cdf = 1.0
        for (x0, y0), (x1, y1) in zip(knots, knots[1:]):
            if threshold <= x1:
                if x1 == x0:
                    cdf = y1
                else:
                    cdf = y0 + (y1 - y0) * (threshold - x0) / (x1 - x0)
                break
    return 1.0 - cdf if direction == "above" else cdf


@dataclass(frozen=True)
class SLODefinition:
    """One service-level objective bound to a telemetry rollup source.

    Parameters
    ----------
    name:
        Unique objective identifier (alert/incident/report key).
    source:
        The rollup source the SLI reads.  A trailing ``@*`` matches every
        node-qualified variant (``"shap@*"`` binds ``shap@node-0``,
        ``shap@node-1``, … as independent per-node series).
    objective:
        One of :data:`OBJECTIVE_KINDS`.
    target:
        Good-event fraction promised over the budget period, in (0, 1)
        (``0.999`` = "three nines"); ``1 - target`` is the error budget.
    threshold:
        Latency bound in milliseconds for ``latency`` objectives, value
        floor for ``sensor_health``; unused (0.0) for ``availability``.
    budget_seconds:
        The rolling SLO period the error-budget ledger normalises over.
    burn_rules:
        Multi-window burn-rate alerting rules evaluated per series.
    """

    name: str
    source: str
    objective: str
    target: float
    threshold: float = 0.0
    budget_seconds: float = 3600.0
    burn_rules: Tuple[BurnRateRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLO name must be non-empty")
        if self.objective not in OBJECTIVE_KINDS:
            raise ValueError(
                f"unknown objective {self.objective!r}; expected one of "
                f"{sorted(OBJECTIVE_KINDS)}"
            )
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"target must be in (0, 1), got {self.target} — an SLO of "
                "1.0 has no error budget to burn"
            )
        if self.objective != OBJECTIVE_AVAILABILITY and self.threshold <= 0:
            raise ValueError(
                f"{self.objective} objectives need a positive threshold"
            )
        if self.budget_seconds <= 0:
            raise ValueError("budget_seconds must be positive")
        longest = max(
            (rule.long_seconds for rule in self.burn_rules), default=0.0
        )
        if longest > self.budget_seconds:
            raise ValueError(
                f"burn-rate window ({longest}s) exceeds the budget period "
                f"({self.budget_seconds}s)"
            )

    # -- source binding ----------------------------------------------------------

    @property
    def per_node(self) -> bool:
        return self.source.endswith("@*")

    def matches(self, source: str) -> bool:
        """Does this definition observe the given concrete rollup source?"""
        if self.per_node:
            return source.startswith(self.source[:-1]) and "@" in source
        return source == self.source

    @property
    def route(self) -> str:
        """The un-qualified route/series name (node wildcard stripped)."""
        return self.source.split("@")[0]

    # -- SLI ---------------------------------------------------------------------

    def bad_fraction(self, stat: WindowStat) -> float:
        """Fraction of the window's events that violated the objective."""
        if self.objective == OBJECTIVE_AVAILABILITY:
            # the source is a 0/1 success series: exact, no estimation
            return min(1.0, max(0.0, 1.0 - stat.mean))
        if self.objective == OBJECTIVE_LATENCY:
            return fraction_beyond(stat, self.threshold, "above")
        return fraction_beyond(stat, self.threshold, "below")

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "source": self.source,
            "objective": self.objective,
            "target": self.target,
            "threshold": self.threshold,
            "budget_seconds": self.budget_seconds,
            "burn_rules": [rule.to_dict() for rule in self.burn_rules],
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "SLODefinition":
        return SLODefinition(
            name=str(payload["name"]),
            source=str(payload["source"]),
            objective=str(payload["objective"]),
            target=float(payload["target"]),  # type: ignore[arg-type]
            threshold=float(payload.get("threshold", 0.0)),  # type: ignore[arg-type]
            budget_seconds=float(payload.get("budget_seconds", 3600.0)),  # type: ignore[arg-type]
            burn_rules=tuple(
                BurnRateRule.from_dict(rule)  # type: ignore[arg-type]
                for rule in payload.get("burn_rules", [])  # type: ignore[union-attr]
            ),
        )


def load_definitions(path: Union[str, os.PathLike]) -> List[SLODefinition]:
    """Load a JSON definitions file (a list of definition objects)."""
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        raise ValueError(
            "definitions file must contain a JSON list of SLO objects"
        )
    definitions = [SLODefinition.from_dict(entry) for entry in payload]
    seen = set()
    for definition in definitions:
        if definition.name in seen:
            raise ValueError(f"duplicate SLO name {definition.name!r}")
        seen.add(definition.name)
    return definitions


# -- canonical rule sets ----------------------------------------------------------
#
# The Google-SRE paired windows: the fast pair (5 m / 1 h at 14.4×) pages
# on a burn that would spend 2% of a 30-day budget in an hour; the slow
# pair (1 h / 6 h at 6×) tickets a sustained 5%-in-six-hours burn.


def production_burn_rules() -> Tuple[BurnRateRule, ...]:
    """The standard fast-page / slow-ticket multi-window pair."""
    return (
        BurnRateRule(
            name="fast",
            short_seconds=300.0,
            long_seconds=3600.0,
            factor=14.4,
            severity=SEVERITY_PAGE,
        ),
        BurnRateRule(
            name="slow",
            short_seconds=3600.0,
            long_seconds=21600.0,
            factor=6.0,
            severity=SEVERITY_TICKET,
        ),
    )


def default_definitions() -> List[SLODefinition]:
    """Production-shaped objectives over the stack's standard sources."""
    rules = production_burn_rules()
    return [
        SLODefinition(
            name="route-availability",
            source="ok:shap",
            objective=OBJECTIVE_AVAILABILITY,
            target=0.999,
            budget_seconds=86_400.0,
            burn_rules=rules,
        ),
        SLODefinition(
            name="route-latency",
            source="shap@*",
            objective=OBJECTIVE_LATENCY,
            target=0.95,
            threshold=250.0,
            budget_seconds=86_400.0,
            burn_rules=rules,
        ),
        SLODefinition(
            name="sensor-health",
            source="performance",
            objective=OBJECTIVE_SENSOR_HEALTH,
            target=0.99,
            threshold=0.7,
            budget_seconds=86_400.0,
            burn_rules=rules,
        ),
    ]


def drill_burn_rules() -> Tuple[BurnRateRule, ...]:
    """The production pair compressed ~60× for simulated incident drills.

    Same structure (fast page pair + slow ticket pair, short:long ratios
    preserved), scaled so a two-minute simulated cluster run crosses
    several long windows.  Factors are lowered with the compression: a
    5 s window over a ~50 rps route holds a few hundred events, so the
    bad-fraction estimate is coarser than a five-minute production
    window's.
    """
    return (
        BurnRateRule(
            name="fast",
            short_seconds=5.0,
            long_seconds=30.0,
            factor=4.0,
            severity=SEVERITY_PAGE,
        ),
        BurnRateRule(
            name="slow",
            short_seconds=30.0,
            long_seconds=120.0,
            factor=2.0,
            severity=SEVERITY_TICKET,
        ),
    )


def drill_definitions(route: str = "shap") -> List[SLODefinition]:
    """The objectives the deterministic incident drill evaluates.

    A per-node latency SLO (the one an injected slow-node fault
    breaches), a route availability SLO over the runner's sampled 0/1
    success series, and a sensor-health SLO so correlated drift/sensor
    evidence has an objective to hang off.
    """
    rules = drill_burn_rules()
    return [
        SLODefinition(
            name=f"{route}-availability",
            source=f"ok:{route}",
            objective=OBJECTIVE_AVAILABILITY,
            target=0.99,
            budget_seconds=600.0,
            burn_rules=rules,
        ),
        SLODefinition(
            name=f"{route}-latency",
            source=f"{route}@*",
            objective=OBJECTIVE_LATENCY,
            target=0.9,
            threshold=40.0,
            budget_seconds=600.0,
            burn_rules=rules,
        ),
        SLODefinition(
            name="sensor-health",
            source="performance",
            objective=OBJECTIVE_SENSOR_HEALTH,
            target=0.95,
            threshold=0.7,
            budget_seconds=600.0,
            burn_rules=rules,
        ),
    ]
