"""Multi-window burn-rate evaluation over finalised rollup windows.

The evaluator attaches to a :class:`TumblingWindowAggregator` through its
``on_finalize`` hook, so it sees each finalised window exactly once, in
finalisation order — no polling, no raw-event cost.  Per (SLO, concrete
source) it keeps a bounded deque of ``(window, bad, total)`` tuples
trimmed to the longest rule window, from which trailing burn rates fall
out as two running sums.

Burn rate is the Google-SRE quantity: how many times faster than the
sustainable rate the error budget is being spent,

    burn = bad_fraction / (1 - target)

A rule fires when *both* its short and long trailing windows burn at or
above ``factor``; it resolves when either drops below.  Alert edges
(fire/resolve) are emitted as typed ``slo_alert`` telemetry events onto
the bus — they ride the same WAL/rollup machinery as everything else —
and handed to registered observers (the incident engine).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.slo.definitions import BurnRateRule, SLODefinition
from repro.telemetry.events import TelemetryEvent
from repro.telemetry.rollup import TumblingWindowAggregator, WindowStat

__all__ = [
    "KIND_SLO_ALERT",
    "SLO_TOPIC",
    "BurnRateAlert",
    "ErrorBudgetLedger",
    "SLOEvaluator",
    "SLOStatusSummary",
]

#: Event kind and bus topic for alert-edge events.
KIND_SLO_ALERT = "slo_alert"
SLO_TOPIC = "slo"

ALERT_FIRING = "firing"
ALERT_RESOLVED = "resolved"


@dataclass(frozen=True)
class BurnRateAlert:
    """One alert edge: a burn-rate rule crossing into or out of breach."""

    slo: str
    source: str
    rule: str
    severity: str
    state: str  # ALERT_FIRING | ALERT_RESOLVED
    timestamp: float
    short_burn: float
    long_burn: float
    factor: float
    #: The worst (highest bad-fraction) window inside the short lookback
    #: at fire time — the incident engine's entry point into exemplars.
    worst_window: Optional[WindowStat] = None

    @property
    def firing(self) -> bool:
        return self.state == ALERT_FIRING

    def to_event(self) -> TelemetryEvent:
        """The bus representation; value is the short-window burn rate."""
        return TelemetryEvent(
            source=f"slo:{self.slo}",
            value=self.short_burn,
            timestamp=self.timestamp,
            kind=KIND_SLO_ALERT,
            attrs={
                "long_burn": self.long_burn,
                "factor": self.factor,
            },
            labels={
                "slo": self.slo,
                "sli_source": self.source,
                "rule": self.rule,
                "severity": self.severity,
                "state": self.state,
            },
        )

    def describe(self) -> str:
        verb = "FIRING" if self.firing else "resolved"
        return (
            f"[{self.severity}] {self.slo} on {self.source} {verb} "
            f"({self.rule}: short {self.short_burn:.1f}x / "
            f"long {self.long_burn:.1f}x, threshold {self.factor:.1f}x)"
        )


class ErrorBudgetLedger:
    """Running error-budget account for one (SLO, source) series.

    The budget for a period is ``total_events * (1 - target)`` bad events;
    each finalised window debits its bad count.  ``remaining_fraction``
    normalises against events seen so far, so it reads correctly mid-period
    (a series burning exactly at target holds steady at 0.0 consumed).
    """

    __slots__ = ("target", "bad", "total")

    def __init__(self, target: float) -> None:
        self.target = target
        self.bad = 0.0
        self.total = 0.0

    def debit(self, bad: float, total: float) -> None:
        self.bad += bad
        self.total += total

    @property
    def consumed_fraction(self) -> float:
        """Fraction of the budget-to-date spent (can exceed 1.0)."""
        budget = self.total * (1.0 - self.target)
        if budget <= 0:
            return 0.0
        return self.bad / budget

    @property
    def remaining_fraction(self) -> float:
        return max(0.0, 1.0 - self.consumed_fraction)


@dataclass(frozen=True)
class SLOStatusSummary:
    """Point-in-time health snapshot for the dashboard strip."""

    slo: str
    source: str
    objective: str
    target: float
    budget_remaining: float
    short_burn: float
    long_burn: float
    firing_rules: Tuple[str, ...] = ()

    @property
    def healthy(self) -> bool:
        return not self.firing_rules


class _SeriesState:
    """Trailing-window accounting for one (SLO, concrete source) pair.

    Windows of one concrete source finalise in window order, so the
    retained history is a time-sorted run.  Alongside the window deque
    (kept for :meth:`worst_window`'s rare, short-lookback scan at fire
    time) we keep *absolute* prefix sums of bad/total counts: a trailing
    burn rate is then one bisect and two subtractions per rule instead
    of a rescan of the lookback — without this, a rule whose long window
    spans the stream (the production 6 h pair over a capacity replay)
    makes every finalisation O(retained windows), and the evaluator
    can't hold the ≤5 % ingest-overhead budget ``bench_slo`` gates.
    """

    __slots__ = (
        "ledger",
        "history",
        "horizon",
        "_ends",
        "_cum_bad",
        "_cum_total",
        "_base_bad",
        "_base_total",
    )

    def __init__(self, target: float, horizon: float) -> None:
        self.ledger = ErrorBudgetLedger(target)
        #: (window, bad, total), oldest first, trimmed to ``horizon``.
        self.history: Deque[Tuple[WindowStat, float, float]] = deque()
        self.horizon = horizon
        #: Window ends + absolute cumulative bad/total, parallel to
        #: ``history``.  Cumulative values stay absolute across trims
        #: (``_base_*`` records what fell off the front), so a trailing
        #: sum is always a difference of two retained entries.
        self._ends: List[float] = []
        self._cum_bad: List[float] = []
        self._cum_total: List[float] = []
        self._base_bad = 0.0
        self._base_total = 0.0

    def observe(self, stat: WindowStat, bad: float, total: float) -> None:
        self.ledger.debit(bad, total)
        self.history.append((stat, bad, total))
        self._ends.append(stat.window_end)
        self._cum_bad.append(
            (self._cum_bad[-1] if self._cum_bad else self._base_bad) + bad
        )
        self._cum_total.append(
            (self._cum_total[-1] if self._cum_total else self._base_total)
            + total
        )
        cutoff = stat.window_end - self.horizon
        while self.history and self.history[0][0].window_end <= cutoff:
            self.history.popleft()
        drop = len(self._ends) - len(self.history)
        if drop:
            self._base_bad = self._cum_bad[drop - 1]
            self._base_total = self._cum_total[drop - 1]
            del self._ends[:drop]
            del self._cum_bad[:drop]
            del self._cum_total[:drop]

    def burn_rate(self, seconds: float, now: float, target: float) -> float:
        """Trailing burn rate over ``[now - seconds, now)``."""
        if not self._ends:
            return 0.0
        start = now - seconds
        # entries with window_end <= start fall outside the lookback;
        # anything trimmed past the horizon is older still (rule windows
        # never exceed the horizon), so the bases are the right floor
        idx = bisect_right(self._ends, start)
        if idx >= len(self._ends):
            return 0.0
        base_bad = self._cum_bad[idx - 1] if idx else self._base_bad
        base_total = self._cum_total[idx - 1] if idx else self._base_total
        total = self._cum_total[-1] - base_total
        if total <= 0:
            return 0.0
        bad = self._cum_bad[-1] - base_bad
        return (bad / total) / (1.0 - target)

    def worst_window(self, seconds: float, now: float) -> Optional[WindowStat]:
        """Highest-bad-fraction window in the trailing lookback."""
        start = now - seconds
        worst: Optional[Tuple[float, WindowStat]] = None
        for stat, bad, total in reversed(self.history):
            if stat.window_end <= start:
                break
            if total <= 0:
                continue
            fraction = bad / total
            if worst is None or fraction > worst[0]:
                worst = (fraction, stat)
        return None if worst is None else worst[1]


class _RuleState:
    """Per-(series, rule) hysteresis flag, resolved once at bind time."""

    __slots__ = ("rule", "active")

    def __init__(self, rule: BurnRateRule) -> None:
        self.rule = rule
        self.active = False


class _Binding:
    """One (definition, concrete source) pair with its evaluation state.

    Bindings are resolved once per source (first window seen) so the
    per-window path does no wildcard matching, no tuple-key dict
    lookups, and no allocation — just attribute walks over this struct.
    """

    __slots__ = ("definition", "source", "state", "rules")

    def __init__(
        self, definition: SLODefinition, source: str, state: _SeriesState
    ) -> None:
        self.definition = definition
        self.source = source
        self.state = state
        self.rules = tuple(_RuleState(r) for r in definition.burn_rules)


class SLOEvaluator:
    """Evaluates a set of SLO definitions against finalised windows.

    Wiring order matters only in that :meth:`attach` must run before the
    windows of interest finalise; the evaluator is otherwise passive — it
    does work only inside the aggregator's ``_finalize``, once per window.

    Parameters
    ----------
    definitions:
        The objectives to evaluate.  Wildcard sources (``route@*``) bind
        lazily: a new concrete source starts its own series and ledger on
        first sight.
    emit:
        Optional callback receiving each alert edge's bus event
        (typically ``pipeline.publish`` partial'd with the SLO topic).
    """

    def __init__(
        self,
        definitions: Sequence[SLODefinition],
        emit: Optional[Callable[[TelemetryEvent], None]] = None,
    ) -> None:
        names = [d.name for d in definitions]
        if len(set(names)) != len(names):
            raise ValueError("SLO definitions must have unique names")
        self.definitions = list(definitions)
        self.emit = emit
        #: (slo name, concrete source) -> trailing state
        self._series: Dict[Tuple[str, str], _SeriesState] = {}
        #: concrete source -> resolved bindings (empty tuple = no match,
        #: cached too, so unmonitored sources cost one dict hit per window)
        self._bindings: Dict[str, Tuple[_Binding, ...]] = {}
        #: currently-firing (slo, source, rule) triples
        self._active: Dict[Tuple[str, str, str], BurnRateAlert] = {}
        #: every alert edge, in emission order (drill/report audit trail)
        self.alerts: List[BurnRateAlert] = []
        self._observers: List[Callable[[BurnRateAlert], None]] = []
        self.windows_seen = 0

    # -- wiring -----------------------------------------------------------------

    def attach(self, aggregator: TumblingWindowAggregator, level: int = 0) -> None:
        """Subscribe to a rollup store's finalisation stream."""
        aggregator.on_finalize(self.observe, level=level)

    def on_alert(self, observer: Callable[[BurnRateAlert], None]) -> None:
        """Register a callback for every alert edge (fire *and* resolve)."""
        self._observers.append(observer)

    # -- evaluation --------------------------------------------------------------

    def observe(self, stat: WindowStat) -> None:
        """Consume one finalised window (the ``on_finalize`` callback)."""
        self.windows_seen += 1
        bindings = self._bindings.get(stat.source)
        if bindings is None:
            bindings = self._bind(stat.source)
        for binding in bindings:
            self._observe_binding(binding, stat)

    def _bind(self, source: str) -> Tuple[_Binding, ...]:
        bound = []
        for definition in self.definitions:
            if definition.matches(source):
                horizon = max(
                    (rule.long_seconds for rule in definition.burn_rules),
                    default=definition.budget_seconds,
                )
                state = _SeriesState(definition.target, horizon)
                self._series[(definition.name, source)] = state
                bound.append(_Binding(definition, source, state))
        bindings = tuple(bound)
        self._bindings[source] = bindings
        return bindings

    def _observe_binding(self, binding: _Binding, stat: WindowStat) -> None:
        definition = binding.definition
        state = binding.state
        target = definition.target
        state.observe(stat, definition.bad_fraction(stat) * stat.count,
                      float(stat.count))
        now = stat.window_end
        burn_rate = state.burn_rate
        for rule_state in binding.rules:
            rule = rule_state.rule
            factor = rule.factor
            short = burn_rate(rule.short_seconds, now, target)
            if not rule_state.active:
                # not breaching unless BOTH windows burn: skip the long
                # lookback entirely while the short one is healthy (the
                # steady state), halving the per-window burn arithmetic
                if short < factor:
                    continue
                long = burn_rate(rule.long_seconds, now, target)
                if long < factor:
                    continue
                rule_state.active = True
                alert = BurnRateAlert(
                    slo=definition.name,
                    source=binding.source,
                    rule=rule.name,
                    severity=rule.severity,
                    state=ALERT_FIRING,
                    timestamp=now,
                    short_burn=short,
                    long_burn=long,
                    factor=factor,
                    worst_window=state.worst_window(rule.short_seconds, now),
                )
                self._active[
                    (definition.name, binding.source, rule.name)
                ] = alert
                self._record(alert)
            else:
                long = burn_rate(rule.long_seconds, now, target)
                if short >= factor and long >= factor:
                    continue
                rule_state.active = False
                del self._active[
                    (definition.name, binding.source, rule.name)
                ]
                self._record(
                    BurnRateAlert(
                        slo=definition.name,
                        source=binding.source,
                        rule=rule.name,
                        severity=rule.severity,
                        state=ALERT_RESOLVED,
                        timestamp=now,
                        short_burn=short,
                        long_burn=long,
                        factor=factor,
                    )
                )

    def _record(self, alert: BurnRateAlert) -> None:
        self.alerts.append(alert)
        if self.emit is not None:
            self.emit(alert.to_event())
        for observer in self._observers:
            observer(alert)

    # -- introspection -----------------------------------------------------------

    @property
    def firing(self) -> List[BurnRateAlert]:
        """Currently-active alerts, oldest first."""
        return sorted(self._active.values(), key=lambda a: a.timestamp)

    def ledger(self, slo: str, source: str) -> Optional[ErrorBudgetLedger]:
        state = self._series.get((slo, source))
        return None if state is None else state.ledger

    def status(self) -> List[SLOStatusSummary]:
        """Per-series health snapshots, sorted for stable rendering."""
        out: List[SLOStatusSummary] = []
        by_name = {d.name: d for d in self.definitions}
        for (slo, source), state in sorted(self._series.items()):
            definition = by_name[slo]
            fastest = min(
                definition.burn_rules,
                key=lambda r: r.short_seconds,
                default=None,
            ) if definition.burn_rules else None
            if state.history:
                now = state.history[-1][0].window_end
            else:
                now = 0.0
            if fastest is not None:
                short = state.burn_rate(
                    fastest.short_seconds, now, definition.target
                )
                long = state.burn_rate(
                    fastest.long_seconds, now, definition.target
                )
            else:
                short = long = 0.0
            firing_rules = tuple(
                sorted(
                    rule
                    for (name, src, rule) in self._active
                    if name == slo and src == source
                )
            )
            out.append(
                SLOStatusSummary(
                    slo=slo,
                    source=source,
                    objective=definition.objective,
                    target=definition.target,
                    budget_remaining=state.ledger.remaining_fraction,
                    short_burn=short,
                    long_burn=long,
                    firing_rules=firing_rules,
                )
            )
        return out
