"""Burn attribution: deliberately shed vs actually failed.

Admission control (DESIGN.md §15) converts overload into *typed*
503s — requests the serving path refused on purpose to protect its
latency objective.  Those refusals land in the availability ledger as
0-valued ``ok:<route>`` ticks like any failure, which is correct for
the error budget (the user still got a 503) but misleading for
response: a burn-rate page caused by shedding calls for capacity, not
for a bug hunt.

The split is reconstructable from the telemetry stream alone, because
the cluster publishes a ``shed:<route>`` marker event *on the same
sampling stride* as each shed request's 0-valued availability tick.
Per window: failures come from the ``ok:`` series (count minus sum),
the deliberate share is the ``shed:`` series' value sum, and the
difference is what actually failed.  Both series flow bus → WAL →
rollup, so the attribution survives replay and can be computed
offline, exactly like the objectives themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.telemetry.rollup import WindowStat

__all__ = [
    "OK_SOURCE_PREFIX",
    "SHED_SOURCE_PREFIX",
    "UnavailabilityAttribution",
    "attribute_unavailability",
]

#: Source prefixes of the two series the attribution joins.
OK_SOURCE_PREFIX = "ok:"
SHED_SOURCE_PREFIX = "shed:"


@dataclass(frozen=True)
class UnavailabilityAttribution:
    """One window's unavailability, split by cause."""

    route: str
    window_start: float
    window_seconds: float
    #: sampled completions observed in the window (the ``ok:`` count)
    total: int
    #: 0-valued availability ticks (every kind of unsuccess)
    failures: int
    #: failures that were deliberate admission-control sheds
    shed: int

    @property
    def failed(self) -> int:
        """Failures that were *not* deliberate (crashes, rejections...)."""
        return self.failures - self.shed

    @property
    def availability(self) -> float:
        return 1.0 - self.failures / self.total if self.total else 1.0

    @property
    def shed_fraction(self) -> float:
        """Share of the window's burn that shedding accounts for."""
        return self.shed / self.failures if self.failures else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "route": self.route,
            "window_start": self.window_start,
            "window_seconds": self.window_seconds,
            "total": self.total,
            "failures": self.failures,
            "shed": self.shed,
            "failed": self.failed,
            "availability": self.availability,
            "shed_fraction": self.shed_fraction,
        }


def _route_of(source: str, prefix: str) -> str:
    return source[len(prefix):]


def attribute_unavailability(
    stats: Iterable[WindowStat],
) -> List[UnavailabilityAttribution]:
    """Join ``ok:`` and ``shed:`` window series into per-window splits.

    ``stats`` is any rollup output (live or WAL-replayed); windows of
    other sources are ignored.  For each ``ok:<route>`` window the
    failure count is ``count - sum`` (the series carries 1/0 values)
    and the shed count is the value sum of the matching
    ``shed:<route>`` window, clamped to the failure count — a shed
    marker without its tick (window-edge straddle) must not drive the
    "failed" share negative.  Returns attributions sorted by (route,
    window start), one per ``ok:`` window that saw traffic.
    """
    shed_by_key: Dict[Tuple[str, float], float] = {}
    ok_windows: List[WindowStat] = []
    for stat in stats:
        if stat.source.startswith(OK_SOURCE_PREFIX):
            ok_windows.append(stat)
        elif stat.source.startswith(SHED_SOURCE_PREFIX):
            key = (
                _route_of(stat.source, SHED_SOURCE_PREFIX),
                stat.window_start,
            )
            shed_by_key[key] = (
                shed_by_key.get(key, 0.0) + stat.count * stat.mean
            )
    out = []
    for stat in ok_windows:
        if stat.count == 0:
            continue
        route = _route_of(stat.source, OK_SOURCE_PREFIX)
        failures = int(round(stat.count * (1.0 - stat.mean)))
        shed = int(round(shed_by_key.get((route, stat.window_start), 0.0)))
        out.append(
            UnavailabilityAttribution(
                route=route,
                window_start=stat.window_start,
                window_seconds=stat.window_seconds,
                total=stat.count,
                failures=failures,
                shed=min(shed, failures),
            )
        )
    out.sort(key=lambda a: (a.route, a.window_start))
    return out
