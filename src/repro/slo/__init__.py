"""Service-level objectives: declarative targets, burn-rate alerting,
automated incident evidence.

The observability layer that turns the stack's recording machinery
(rollups, WAL, traces, exemplars) into an operational monitoring loop:

* :mod:`repro.slo.definitions` — declarative objectives bound to
  telemetry rollup sources, the single sanctioned home for threshold
  literals (enforced by the ``slo-threshold-literal`` lint rule).
* :mod:`repro.slo.burnrate` — the multi-window burn-rate evaluator,
  error-budget ledgers, and typed alert events.
* :mod:`repro.slo.incidents` — the incident engine that walks
  metric→trace exemplar links, diffs critical paths against a healthy
  baseline, and bundles correlated sensor/error evidence.

Layering: ``slo → {telemetry, tracing}``.  The narrator/dashboard
rendering of incidents lives in ``repro.core``, which imports this
package — not the other way round.
"""

from repro.slo.attribution import (
    UnavailabilityAttribution,
    attribute_unavailability,
)
from repro.slo.burnrate import (
    KIND_SLO_ALERT,
    SLO_TOPIC,
    BurnRateAlert,
    ErrorBudgetLedger,
    SLOEvaluator,
    SLOStatusSummary,
)
from repro.slo.definitions import (
    OBJECTIVE_AVAILABILITY,
    OBJECTIVE_KINDS,
    OBJECTIVE_LATENCY,
    OBJECTIVE_SENSOR_HEALTH,
    BurnRateRule,
    SLODefinition,
    default_definitions,
    drill_definitions,
    fraction_beyond,
    load_definitions,
)
from repro.slo.incidents import (
    BaselineProfile,
    Incident,
    IncidentEngine,
    StageDiff,
)

__all__ = [
    "KIND_SLO_ALERT",
    "OBJECTIVE_AVAILABILITY",
    "OBJECTIVE_KINDS",
    "OBJECTIVE_LATENCY",
    "OBJECTIVE_SENSOR_HEALTH",
    "SLO_TOPIC",
    "BaselineProfile",
    "BurnRateAlert",
    "BurnRateRule",
    "ErrorBudgetLedger",
    "Incident",
    "IncidentEngine",
    "SLODefinition",
    "SLOEvaluator",
    "SLOStatusSummary",
    "StageDiff",
    "UnavailabilityAttribution",
    "attribute_unavailability",
    "default_definitions",
    "drill_definitions",
    "fraction_beyond",
    "load_definitions",
]
