"""Incident assembly: from a burn-rate alert to a cross-source evidence bundle.

When an alert fires, knowing *that* a route is slow is the easy half; the
incident engine assembles the *why* evidence automatically, walking the
same links an operator would click through on the dashboard:

1. metric → traces: the alert carries its worst rollup window; exemplar
   labels on the window's events resolve to recorded trace trees
   (:func:`repro.tracing.exemplars.resolve_window`).
2. trace → stage: the offending traces' critical paths are profiled and
   diffed against a healthy-baseline profile captured before the breach,
   naming the stage whose gating time grew.
3. window → correlated signals: sensor readings and error-flagged events
   from the same time range are attached, so drift or sensor faults that
   coincide with the breach travel with it.

The result is a structured :class:`Incident` — plain data, fully
serialisable — which ``repro.core.narrator`` renders into audience-
tailored prose.  Everything is deterministic: incident ids are a simple
counter, timestamps are simulated time off the alert, and evidence lists
are sorted/capped for byte-stable reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.slo.burnrate import BurnRateAlert, SLOEvaluator
from repro.telemetry.events import KIND_SENSOR_READING, TelemetryEvent
from repro.tracing.analysis import critical_path
from repro.tracing.collector import TraceCollector, TraceTree
from repro.tracing.exemplars import resolve_window

__all__ = [
    "BaselineProfile",
    "Incident",
    "IncidentEngine",
    "StageDiff",
]


@dataclass(frozen=True)
class BaselineProfile:
    """Mean per-stage critical-path seconds over a set of healthy traces.

    ``stages`` maps span name → mean seconds *on the critical path per
    trace* (parallel work hidden behind the gating child contributes
    nothing, exactly as in the live diff).
    """

    stages: Dict[str, float]
    mean_duration: float
    trace_count: int

    @staticmethod
    def from_traces(traces: Sequence[TraceTree]) -> "BaselineProfile":
        if not traces:
            raise ValueError("cannot build a baseline from zero traces")
        totals: Dict[str, float] = {}
        duration = 0.0
        for tree in traces:
            duration += tree.duration
            for segment in critical_path(tree):
                totals[segment.span.name] = (
                    totals.get(segment.span.name, 0.0) + segment.seconds
                )
        n = len(traces)
        return BaselineProfile(
            stages={name: seconds / n for name, seconds in totals.items()},
            mean_duration=duration / n,
            trace_count=n,
        )


@dataclass(frozen=True)
class StageDiff:
    """One critical-path stage, baseline vs breach."""

    stage: str
    baseline_ms: float
    observed_ms: float

    @property
    def growth_ms(self) -> float:
        return self.observed_ms - self.baseline_ms

    def to_dict(self) -> Dict[str, float]:
        return {
            "stage": self.stage,  # type: ignore[dict-item]
            "baseline_ms": self.baseline_ms,
            "observed_ms": self.observed_ms,
            "growth_ms": self.growth_ms,
        }


def diff_profiles(
    baseline: BaselineProfile, observed: BaselineProfile
) -> List[StageDiff]:
    """Per-stage diff over the union of stages, largest growth first."""
    names = sorted(set(baseline.stages) | set(observed.stages))
    diffs = [
        StageDiff(
            stage=name,
            baseline_ms=baseline.stages.get(name, 0.0) * 1000.0,
            observed_ms=observed.stages.get(name, 0.0) * 1000.0,
        )
        for name in names
    ]
    diffs.sort(key=lambda d: (-d.growth_ms, d.stage))
    return diffs


@dataclass
class Incident:
    """One breach, with the cross-source evidence assembled at fire time."""

    incident_id: str
    slo: str
    source: str
    rule: str
    severity: str
    timestamp: float
    short_burn: float
    long_burn: float
    factor: float
    route: str
    #: Node parsed from a node-qualified SLI source, if any.
    suspect_node: Optional[str] = None
    budget_remaining: Optional[float] = None
    #: Exemplar drill-down evidence.
    trace_ids: List[str] = field(default_factory=list)
    missing_trace_ids: List[str] = field(default_factory=list)
    stage_diffs: List[StageDiff] = field(default_factory=list)
    baseline_ms: float = 0.0
    observed_ms: float = 0.0
    #: Correlated same-window signals: sensor readings + error events.
    sensor_evidence: List[Dict[str, object]] = field(default_factory=list)
    error_evidence: List[Dict[str, object]] = field(default_factory=list)

    @property
    def regressed_stage(self) -> Optional[StageDiff]:
        """The stage whose critical-path time grew the most (if it grew)."""
        if not self.stage_diffs:
            return None
        top = self.stage_diffs[0]
        return top if top.growth_ms > 0 else None

    @property
    def resolved_traces(self) -> bool:
        return bool(self.trace_ids) and not self.missing_trace_ids

    def to_dict(self) -> Dict[str, object]:
        return {
            "incident_id": self.incident_id,
            "slo": self.slo,
            "source": self.source,
            "rule": self.rule,
            "severity": self.severity,
            "timestamp": self.timestamp,
            "short_burn": self.short_burn,
            "long_burn": self.long_burn,
            "factor": self.factor,
            "route": self.route,
            "suspect_node": self.suspect_node,
            "budget_remaining": self.budget_remaining,
            "trace_ids": list(self.trace_ids),
            "missing_trace_ids": list(self.missing_trace_ids),
            "stage_diffs": [d.to_dict() for d in self.stage_diffs],
            "baseline_ms": self.baseline_ms,
            "observed_ms": self.observed_ms,
            "sensor_evidence": list(self.sensor_evidence),
            "error_evidence": list(self.error_evidence),
        }


class IncidentEngine:
    """Turns firing alerts into :class:`Incident` evidence bundles.

    Parameters
    ----------
    collector:
        The trace collector holding recorded traces (live or rebuilt).
    events:
        A *live reference* to the event list the exemplar/correlation
        scans read — typically the bus tap the drill harness keeps
        appending to.  The engine never copies it, so events that arrive
        after construction are visible.
    baseline_until:
        Traces whose root ended at or before this simulated time are the
        healthy population the baseline profile is built from (e.g. the
        fault-injection onset in a drill).  ``None`` disables
        critical-path diffing (incidents still carry exemplars and
        correlated signals).
    evaluator:
        Optional; lets incidents snapshot the breached series' remaining
        error budget at fire time.
    max_traces:
        Exemplar resolution cap per incident.
    max_evidence:
        Cap on correlated sensor/error evidence entries (sorted before
        capping, so reports stay byte-stable).
    """

    def __init__(
        self,
        collector: TraceCollector,
        events: Sequence[TelemetryEvent],
        baseline_until: Optional[float] = None,
        evaluator: Optional[SLOEvaluator] = None,
        max_traces: int = 8,
        max_evidence: int = 8,
    ) -> None:
        self.collector = collector
        self.events = events
        self.baseline_until = baseline_until
        self.evaluator = evaluator
        self.max_traces = max_traces
        self.max_evidence = max_evidence
        self.incidents: List[Incident] = []
        self._counter = 0
        #: route -> lazily built healthy profile
        self._baselines: Dict[str, Optional[BaselineProfile]] = {}

    # -- wiring -----------------------------------------------------------------

    def attach(self, evaluator: SLOEvaluator) -> None:
        """Subscribe to an evaluator's alert stream (and use its ledgers)."""
        if self.evaluator is None:
            self.evaluator = evaluator
        evaluator.on_alert(self.handle_alert)

    # -- baseline ----------------------------------------------------------------

    def _route_of(self, tree: TraceTree) -> Optional[str]:
        root = tree.root
        if root is None:
            return None
        return root.attributes.get("route")

    def baseline_for(self, route: str) -> Optional[BaselineProfile]:
        """Healthy critical-path profile for a route (cached)."""
        if route in self._baselines:
            return self._baselines[route]
        profile: Optional[BaselineProfile] = None
        if self.baseline_until is not None:
            healthy = [
                tree
                for tree in self.collector.traces()
                if tree.ok
                and self._route_of(tree) == route
                and tree.root.end_time <= self.baseline_until
            ]
            if healthy:
                profile = BaselineProfile.from_traces(healthy)
        self._baselines[route] = profile
        return profile

    # -- correlation -------------------------------------------------------------

    def _correlated(
        self, start: float, end: float
    ) -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
        """Sensor readings and error-flagged events inside ``[start, end)``.

        Both lists are sorted (timestamp, source) and capped so two runs
        over the same window produce identical evidence.
        """
        sensors: List[Dict[str, object]] = []
        errors: List[Dict[str, object]] = []
        for event in self.events:
            if not start <= event.timestamp < end:
                continue
            error = event.labels.get("error")
            if error:
                errors.append(
                    {
                        "source": event.source,
                        "timestamp": event.timestamp,
                        "error": error,
                        "value": event.value,
                    }
                )
            elif event.kind == KIND_SENSOR_READING:
                sensors.append(
                    {
                        "source": event.source,
                        "timestamp": event.timestamp,
                        "value": event.value,
                        "property": event.labels.get("property", ""),
                    }
                )
        key = lambda entry: (entry["timestamp"], entry["source"])  # noqa: E731
        sensors.sort(key=key)
        errors.sort(key=key)
        return sensors[: self.max_evidence], errors[: self.max_evidence]

    # -- assembly ----------------------------------------------------------------

    def handle_alert(self, alert: BurnRateAlert) -> Optional[Incident]:
        """Evaluator callback: build an incident for each *firing* edge."""
        if not alert.firing:
            return None
        self._counter += 1
        route, __, node = alert.source.partition("@")
        if route.startswith("ok:"):
            route = route[len("ok:"):]
        budget = None
        if self.evaluator is not None:
            ledger = self.evaluator.ledger(alert.slo, alert.source)
            if ledger is not None:
                budget = ledger.remaining_fraction
        incident = Incident(
            incident_id=f"INC-{self._counter:04d}",
            slo=alert.slo,
            source=alert.source,
            rule=alert.rule,
            severity=alert.severity,
            timestamp=alert.timestamp,
            short_burn=alert.short_burn,
            long_burn=alert.long_burn,
            factor=alert.factor,
            route=route,
            suspect_node=node or None,
            budget_remaining=budget,
        )
        if alert.worst_window is not None:
            resolution = resolve_window(
                alert.worst_window,
                self.events,
                self.collector,
                max_traces=self.max_traces,
            )
            incident.trace_ids = resolution.trace_ids
            incident.missing_trace_ids = resolution.missing
            if resolution.traces:
                observed = BaselineProfile.from_traces(resolution.traces)
                incident.observed_ms = observed.mean_duration * 1000.0
                baseline = self.baseline_for(route)
                if baseline is not None:
                    incident.baseline_ms = baseline.mean_duration * 1000.0
                    incident.stage_diffs = diff_profiles(baseline, observed)
            incident.sensor_evidence, incident.error_evidence = (
                self._correlated(
                    alert.worst_window.window_start,
                    alert.worst_window.window_end,
                )
            )
        self.incidents.append(incident)
        return incident

    @property
    def last_incident(self) -> Optional[Incident]:
        return self.incidents[-1] if self.incidents else None
