"""Threat models and the attack interface.

Use case 1 assumes a **black-box** attacker ("access to the training data but
no knowledge about the underlying structure of the utilized model"); use case
2 assumes a **white-box** attacker ("complete knowledge about the AI model
structure … hampered from inside an organization").  :class:`ThreatModel`
captures exactly those capability sets, and every attack declares what it
needs so experiments can assert the assumed adversary is sufficient.
"""

from __future__ import annotations

import enum
import time  # the one sanctioned wall-clock touchpoint in this package
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Tuple

import numpy as np


class CostClock:
    """Injectable monotonic duration source for attack costing.

    ``AttackResult.cost_seconds`` feeds the paper's *complexity*
    resilience signal, so attack implementations never read the process
    clock directly — they measure through this seam, and tests or
    simulations inject a virtual ``now`` to get deterministic costs.
    The default reads ``time.perf_counter``.
    """

    __slots__ = ("_now",)

    def __init__(self, now: Optional[Callable[[], float]] = None) -> None:
        self._now = time.perf_counter if now is None else now

    def now(self) -> float:
        return float(self._now())


class Capability(enum.Enum):
    """Individual adversary capabilities an attack may require."""

    READ_TRAINING_DATA = "read_training_data"
    WRITE_TRAINING_DATA = "write_training_data"
    READ_MODEL_STRUCTURE = "read_model_structure"
    QUERY_MODEL = "query_model"
    PERTURB_INPUTS = "perturb_inputs"


@dataclass(frozen=True)
class ThreatModel:
    """A named set of adversary capabilities."""

    name: str
    capabilities: FrozenSet[Capability]

    def allows(self, *needed: Capability) -> bool:
        """True when every needed capability is granted."""
        return all(c in self.capabilities for c in needed)

    @staticmethod
    def black_box() -> "ThreatModel":
        """Use case 1 adversary: can poison training data, cannot see the model."""
        return ThreatModel(
            name="black-box",
            capabilities=frozenset(
                {
                    Capability.READ_TRAINING_DATA,
                    Capability.WRITE_TRAINING_DATA,
                    Capability.QUERY_MODEL,
                }
            ),
        )

    @staticmethod
    def white_box() -> "ThreatModel":
        """Use case 2 adversary: insider with full model knowledge."""
        return ThreatModel(
            name="white-box",
            capabilities=frozenset(Capability),
        )


@dataclass
class AttackResult:
    """Outcome of running an attack: the manipulated data plus bookkeeping.

    ``cost_seconds`` is the wall-clock generation cost — the raw signal
    behind the paper's *complexity* resilience metric for evasion attacks.
    """

    X: np.ndarray
    y: np.ndarray
    n_affected: int
    cost_seconds: float = 0.0
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def affected_fraction(self) -> float:
        """Fraction of output samples the attack touched."""
        return self.n_affected / len(self.y) if len(self.y) else 0.0


class Attack(ABC):
    """Base class for all training-time and inference-time attacks."""

    #: Capabilities this attack needs from the threat model.
    required_capabilities: Tuple[Capability, ...] = ()

    def __init__(
        self,
        threat_model: Optional[ThreatModel] = None,
        cost_clock: Optional[CostClock] = None,
    ) -> None:
        self.threat_model = threat_model
        self.cost_clock = cost_clock if cost_clock is not None else CostClock()

    def check_threat_model(self) -> None:
        """Raise ``PermissionError`` if the threat model is insufficient."""
        if self.threat_model is None:
            return
        if not self.threat_model.allows(*self.required_capabilities):
            missing = [
                c.value
                for c in self.required_capabilities
                if c not in self.threat_model.capabilities
            ]
            raise PermissionError(
                f"threat model {self.threat_model.name!r} lacks capabilities: "
                f"{missing}"
            )

    @abstractmethod
    def apply(self, X: np.ndarray, y: np.ndarray) -> AttackResult:
        """Run the attack against a dataset and return the manipulated copy."""
