"""GAN-based data poisoning (the paper's CTGAN attack, use case 2).

The paper uses CTGAN "for modelling tabular data to generate 5000 synthetic
samples" whose goal is "to generate synthetic data that looks very similar to
the real data", then mixes them into the training set.  Offline we cannot
train a GAN, so :class:`TableSynthesizer` is a mode-aware per-class Gaussian
mixture sampler: like CTGAN it models per-column multi-modal distributions
conditioned on the class, and sampling from it yields rows statistically
close to real data.  The poisoning code path — synthesise, label, inject —
is identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.attacks.base import Attack, AttackResult, Capability, ThreatModel


@dataclass
class _ColumnModel:
    """Per-column 1-D Gaussian mixture (means/stds/weights)."""

    means: np.ndarray
    stds: np.ndarray
    weights: np.ndarray


def _fit_column(values: np.ndarray, n_modes: int, rng: np.random.Generator) -> _ColumnModel:
    """Fit a small 1-D GMM with k-means-style mode finding."""
    values = np.asarray(values, dtype=np.float64)
    n_modes = max(1, min(n_modes, len(np.unique(values))))
    # initialise centers on quantiles, then a few Lloyd iterations
    quantiles = np.linspace(0.1, 0.9, n_modes)
    centers = np.quantile(values, quantiles)
    for __ in range(8):
        assignment = np.argmin(np.abs(values[:, None] - centers[None, :]), axis=1)
        for m in range(n_modes):
            members = values[assignment == m]
            if members.size:
                centers[m] = members.mean()
    assignment = np.argmin(np.abs(values[:, None] - centers[None, :]), axis=1)
    means = np.empty(n_modes)
    stds = np.empty(n_modes)
    weights = np.empty(n_modes)
    for m in range(n_modes):
        members = values[assignment == m]
        if members.size == 0:
            means[m] = centers[m]
            stds[m] = values.std() or 1.0
            weights[m] = 0.0
        else:
            means[m] = members.mean()
            spread = members.std()
            stds[m] = spread if spread > 0 else max(values.std() * 0.05, 1e-6)
            weights[m] = members.size
    total = weights.sum()
    weights = weights / total if total > 0 else np.full(n_modes, 1.0 / n_modes)
    return _ColumnModel(means=means, stds=stds, weights=weights)


class TableSynthesizer:
    """CTGAN stand-in: class-conditional per-column Gaussian-mixture sampler.

    Parameters
    ----------
    n_modes:
        Mixture components per column (CTGAN's mode-specific normalisation
    models multi-modal columns the same way).
    seed:
        RNG seed for fitting and sampling.
    """

    def __init__(self, n_modes: int = 3, seed: int = 0) -> None:
        if n_modes < 1:
            raise ValueError("n_modes must be >= 1")
        self.n_modes = n_modes
        self.seed = seed
        self._models: Dict[object, List[_ColumnModel]] = {}
        self._class_weights: Dict[object, float] = {}
        self.n_features_: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        return bool(self._models)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "TableSynthesizer":
        """Learn per-class column mixtures from real data."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be 2-D and aligned with y")
        rng = np.random.default_rng(self.seed)
        self.n_features_ = X.shape[1]
        self._models = {}
        self._class_weights = {}
        for label in np.unique(y):
            rows = X[y == label]
            self._models[label.item() if hasattr(label, "item") else label] = [
                _fit_column(rows[:, j], self.n_modes, rng)
                for j in range(X.shape[1])
            ]
            key = label.item() if hasattr(label, "item") else label
            self._class_weights[key] = rows.shape[0] / X.shape[0]
        return self

    def sample(self, n_samples: int, label=None) -> np.ndarray:
        """Draw synthetic rows; ``label=None`` samples the class prior too."""
        if not self.is_fitted:
            raise RuntimeError("TableSynthesizer used before fit()")
        if n_samples < 0:
            raise ValueError("n_samples must be non-negative")
        rng = np.random.default_rng(self.seed + 1)
        labels = list(self._models)
        out = np.empty((n_samples, self.n_features_))
        chosen = np.empty(n_samples, dtype=object)
        for i in range(n_samples):
            if label is None:
                weights = np.array([self._class_weights[c] for c in labels])
                cls = labels[rng.choice(len(labels), p=weights / weights.sum())]
            else:
                if label not in self._models:
                    raise ValueError(f"unknown class {label!r}")
                cls = label
            chosen[i] = cls
            for j, column in enumerate(self._models[cls]):
                mode = rng.choice(len(column.weights), p=column.weights)
                out[i, j] = rng.normal(column.means[mode], column.stds[mode])
        self._last_labels = chosen
        return out

    def sample_with_labels(self, n_samples: int):
        """Draw ``(X, y)`` with class labels sampled from the prior."""
        X = self.sample(n_samples, label=None)
        return X, self._last_labels.copy()


class GanPoisoningAttack(Attack):
    """Inject synthetic (optionally mislabelled) samples into the train set.

    Parameters
    ----------
    n_synthetic:
        Synthetic rows to inject (paper: 5000 CTGAN samples).
    poison_label:
        If given, every synthetic row receives this label regardless of the
        class it was synthesised from — the mislabelling that corrupts the
        decision boundary.  ``None`` keeps the source-class label (a pure
        data-dilution attack).
    synthesizer:
        Pre-configured :class:`TableSynthesizer` (a fresh one is built
        otherwise).
    """

    required_capabilities = (
        Capability.READ_TRAINING_DATA,
        Capability.WRITE_TRAINING_DATA,
    )

    def __init__(
        self,
        n_synthetic: int,
        poison_label=None,
        synthesizer: Optional[TableSynthesizer] = None,
        seed: int = 0,
        threat_model: Optional[ThreatModel] = None,
    ) -> None:
        super().__init__(threat_model)
        if n_synthetic < 0:
            raise ValueError("n_synthetic must be non-negative")
        self.n_synthetic = n_synthetic
        self.poison_label = poison_label
        self.synthesizer = synthesizer
        self.seed = seed

    def apply(self, X: np.ndarray, y: np.ndarray) -> AttackResult:
        self.check_threat_model()
        started = self.cost_clock.now()
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        synth = self.synthesizer or TableSynthesizer(seed=self.seed)
        if not synth.is_fitted:
            synth.fit(X, y)
        X_fake, y_fake = synth.sample_with_labels(self.n_synthetic)
        if self.poison_label is not None:
            y_fake = np.full(self.n_synthetic, self.poison_label, dtype=object)
        X_out = np.vstack([X, X_fake]) if self.n_synthetic else X.copy()
        y_out = np.concatenate([y, y_fake.astype(y.dtype)]) if self.n_synthetic else y.copy()
        return AttackResult(
            X=X_out,
            y=y_out,
            n_affected=self.n_synthetic,
            cost_seconds=self.cost_clock.now() - started,
            details={"n_synthetic": float(self.n_synthetic)},
        )
