"""Backdoor (trigger) poisoning attack.

Fig. 1 attributes backdoor attacks to neural networks and federated
learning (reflection backdoors, Liu et al.).  The attack implants a fixed
*trigger pattern* into a small fraction of training samples and relabels
them to an attacker-chosen target class; the model learns "trigger ⇒
target" while clean-input behaviour stays intact — the stealth property
that makes backdoors the hardest poisoning class for the performance
sensor to catch (clean accuracy barely moves) and the reason SPATIAL needs
explanation-based probes too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.attacks.base import Attack, AttackResult, Capability, ThreatModel
from repro.ml.model import Classifier


@dataclass(frozen=True)
class Trigger:
    """A fixed pattern stamped onto chosen feature coordinates."""

    feature_indices: tuple
    values: tuple

    def __post_init__(self) -> None:
        if len(self.feature_indices) != len(self.values):
            raise ValueError("one value per trigger feature required")
        if not self.feature_indices:
            raise ValueError("trigger must touch at least one feature")

    def stamp(self, X: np.ndarray) -> np.ndarray:
        """Return a copy of ``X`` with the trigger applied to every row."""
        X = np.array(X, dtype=np.float64, copy=True)
        for index, value in zip(self.feature_indices, self.values):
            X[:, index] = value
        return X

    @staticmethod
    def corner(n_features: int, width: int = 3, value: float = 4.0) -> "Trigger":
        """Convenience: stamp the first ``width`` features to a fixed value."""
        width = min(width, n_features)
        return Trigger(
            feature_indices=tuple(range(width)),
            values=tuple(value for __ in range(width)),
        )


class BackdoorAttack(Attack):
    """Implant a trigger into a fraction of the training data.

    Parameters
    ----------
    trigger:
        The pattern to implant.
    target_label:
        Every triggered sample is relabelled to this class.
    rate:
        Fraction of training samples to poison.
    seed:
        RNG seed for victim selection.
    """

    required_capabilities = (
        Capability.READ_TRAINING_DATA,
        Capability.WRITE_TRAINING_DATA,
    )

    def __init__(
        self,
        trigger: Trigger,
        target_label,
        rate: float = 0.05,
        seed: int = 0,
        threat_model: Optional[ThreatModel] = None,
    ) -> None:
        super().__init__(threat_model)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.trigger = trigger
        self.target_label = target_label
        self.rate = rate
        self.seed = seed

    def apply(self, X: np.ndarray, y: np.ndarray) -> AttackResult:
        self.check_threat_model()
        started = self.cost_clock.now()
        X = np.array(X, dtype=np.float64, copy=True)
        y = np.array(y, copy=True)
        n_poison = int(round(len(y) * self.rate))
        rng = np.random.default_rng(self.seed)
        if n_poison > 0:
            victims = rng.choice(len(y), size=n_poison, replace=False)
            X[victims] = self.trigger.stamp(X[victims])
            y[victims] = self.target_label
        return AttackResult(
            X=X,
            y=y,
            n_affected=n_poison,
            cost_seconds=self.cost_clock.now() - started,
            details={"rate": self.rate},
        )

    def attack_success_rate(
        self,
        model: Classifier,
        X_clean: np.ndarray,
        y_clean: Optional[np.ndarray] = None,
    ) -> float:
        """Fraction of triggered inputs classified as the target.

        When ``y_clean`` is given, rows already belonging to the target
        class are excluded (they cannot demonstrate the backdoor).
        """
        X_clean = np.asarray(X_clean, dtype=np.float64)
        if y_clean is not None:
            mask = np.asarray(y_clean) != self.target_label
            X_clean = X_clean[mask]
        if X_clean.shape[0] == 0:
            raise ValueError("no non-target rows to evaluate the trigger on")
        triggered = self.trigger.stamp(X_clean)
        predictions = model.predict(triggered)
        return float(np.mean(predictions == self.target_label))
