"""Countermeasures against the attack substrate.

§VIII asks for "proactive counter measurements … suggesting those counter
measurements to human operators".  Implemented here:

* **adversarial training** — augment training with FGSM examples so the
  model learns the perturbation directions (hardens against evasion);
* **bagging defence** — the Biggio et al. observation the Fig. 1 notes cite:
  an ensemble of bootstrap learners dilutes a minority of poisoned samples
  (wrapper provided for arbitrary base models).

Both return fitted models and integrate with the resilience metrics so the
defended-vs-undefended comparison is one function call (see the ablation
bench and tests).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.attacks.fgsm import fgsm_perturb
from repro.ml.model import Classifier, clone
from repro.ml.neural import MLPClassifier


def adversarial_training(
    model_factory: Callable[[], MLPClassifier],
    X: np.ndarray,
    y: np.ndarray,
    epsilon: float = 0.3,
    n_outer_rounds: int = 2,
    adversarial_fraction: float = 1.0,
) -> MLPClassifier:
    """Iterated FGSM adversarial training.

    Each outer round fits the model, generates FGSM examples at ``epsilon``
    from a fraction of the training data, and refits on the union of clean
    and adversarial rows (labels preserved).  Two rounds already close most
    of the FGSM gap on tabular data.
    """
    if not 0.0 < adversarial_fraction <= 1.0:
        raise ValueError("adversarial_fraction must be in (0, 1]")
    if n_outer_rounds < 1:
        raise ValueError("n_outer_rounds must be >= 1")
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    model = model_factory().fit(X, y)
    n_adv = int(round(len(y) * adversarial_fraction))
    for __ in range(n_outer_rounds):
        X_adv = fgsm_perturb(model, X[:n_adv], epsilon, targets=y[:n_adv])
        X_aug = np.vstack([X, X_adv])
        y_aug = np.concatenate([y, y[:n_adv]])
        model = model_factory().fit(X_aug, y_aug)
    return model


class BaggingDefense(Classifier):
    """Bootstrap-ensemble wrapper hardening any base model against poisoning.

    "Bagging classifiers for fighting poisoning attacks" (Biggio et al.,
    cited in the taxonomy): each member trains on an n-sample bootstrap, so
    a poisoned minority appears in varying dilution per member and the
    probability vote averages its influence away.
    """

    def __init__(
        self,
        base_factory: Callable[[], Classifier],
        n_members: int = 10,
        seed: int = 0,
    ) -> None:
        self._record_params(locals())
        if n_members < 1:
            raise ValueError("n_members must be >= 1")
        self.base_factory = base_factory
        self.n_members = n_members
        self.seed = seed
        self.members_: List[Classifier] = []
        self.classes_ = np.empty(0)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaggingDefense":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        rng = np.random.default_rng(self.seed)
        self.members_ = []
        for __ in range(self.n_members):
            idx = rng.integers(0, len(y), size=len(y))
            member = self.base_factory()
            member.fit(X[idx], y[idx])
            self.members_.append(member)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.members_:
            raise RuntimeError("model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        total = np.zeros((X.shape[0], len(self.classes_)))
        class_pos = {c: i for i, c in enumerate(self.classes_.tolist())}
        for member in self.members_:
            proba = member.predict_proba(X)
            for member_col, cls in enumerate(member.classes_.tolist()):
                total[:, class_pos[cls]] += proba[:, member_col]
        return total / len(self.members_)
