"""Adversarial-ML substrate: the induced changes SPATIAL must detect.

Implements the paper's attack repertoire — random/targeted label flipping,
random label swapping, GAN-based data poisoning (CTGAN stand-in) and FGSM
evasion — plus the threat-model abstractions and the Fig. 1 / Fig. 3
taxonomies of attacks and pipeline vulnerabilities.
"""

from repro.attacks.base import (
    Attack,
    AttackResult,
    Capability,
    CostClock,
    ThreatModel,
)
from repro.attacks.label_flipping import (
    RandomLabelFlippingAttack,
    RandomLabelSwappingAttack,
    TargetedLabelFlippingAttack,
)
from repro.attacks.gan_poisoning import GanPoisoningAttack, TableSynthesizer
from repro.attacks.fgsm import FgsmAttack, fgsm_perturb
from repro.attacks.inference import (
    MembershipInferenceAttack,
    MembershipInferenceResult,
    ModelStealingAttack,
    ModelStealingResult,
)
from repro.attacks.backdoor import BackdoorAttack, Trigger
from repro.attacks.defenses import BaggingDefense, adversarial_training
from repro.attacks.sponge import (
    SpongeImpact,
    run_sponge_experiment,
    sponge_thread_group,
)
from repro.attacks.taxonomy import (
    ATTACK_TAXONOMY,
    AttackClass,
    attacks_for_algorithm,
    algorithms_vulnerable_to,
)
from repro.attacks.vulnerabilities import (
    PIPELINE_VULNERABILITIES,
    CiaProperty,
    Vulnerability,
    vulnerabilities_at_stage,
)

__all__ = [
    "ATTACK_TAXONOMY",
    "Attack",
    "AttackClass",
    "AttackResult",
    "BackdoorAttack",
    "BaggingDefense",
    "Capability",
    "CiaProperty",
    "CostClock",
    "FgsmAttack",
    "GanPoisoningAttack",
    "MembershipInferenceAttack",
    "MembershipInferenceResult",
    "ModelStealingAttack",
    "ModelStealingResult",
    "PIPELINE_VULNERABILITIES",
    "RandomLabelFlippingAttack",
    "RandomLabelSwappingAttack",
    "SpongeImpact",
    "TableSynthesizer",
    "TargetedLabelFlippingAttack",
    "ThreatModel",
    "Trigger",
    "Vulnerability",
    "adversarial_training",
    "algorithms_vulnerable_to",
    "attacks_for_algorithm",
    "fgsm_perturb",
    "run_sponge_experiment",
    "sponge_thread_group",
    "vulnerabilities_at_stage",
]
