"""Label-level poisoning attacks (use case 1 and the Fig. 7 poisoning sweep).

Three variants from the paper:

* **random label flipping** — "the attacker poisons the data by performing a
  random label-flipping attack" at rate *p* (use case 1);
* **targeted label flipping** — "flips the labels of some samples from one
  class to the target class (e.g., Video class)" (use case 2);
* **random label swapping** — "chooses randomly two samples of the training
  dataset and swaps their labels" (use case 2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import Attack, AttackResult, Capability, ThreatModel


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"poisoning rate must be in [0, 1], got {rate}")


class RandomLabelFlippingAttack(Attack):
    """Flip each selected sample's label to a different random class.

    Parameters
    ----------
    rate:
        Poisoning rate *p*: fraction of training samples whose label flips.
    seed:
        RNG seed (which samples flip, and to what).
    threat_model:
        Optional threat model to validate against (needs training-data write).
    """

    required_capabilities = (
        Capability.READ_TRAINING_DATA,
        Capability.WRITE_TRAINING_DATA,
    )

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        threat_model: Optional[ThreatModel] = None,
    ) -> None:
        super().__init__(threat_model)
        _check_rate(rate)
        self.rate = rate
        self.seed = seed

    def apply(self, X: np.ndarray, y: np.ndarray) -> AttackResult:
        self.check_threat_model()
        started = self.cost_clock.now()
        X = np.asarray(X)
        y = np.array(y, copy=True)
        classes = np.unique(y)
        n_poison = int(round(len(y) * self.rate))
        rng = np.random.default_rng(self.seed)
        if n_poison > 0 and len(classes) > 1:
            victims = rng.choice(len(y), size=n_poison, replace=False)
            for i in victims:
                others = classes[classes != y[i]]
                y[i] = rng.choice(others)
        else:
            n_poison = 0
        return AttackResult(
            X=X,
            y=y,
            n_affected=n_poison,
            cost_seconds=self.cost_clock.now() - started,
            details={"rate": self.rate},
        )


class TargetedLabelFlippingAttack(Attack):
    """Flip labels of one source class to a chosen target class.

    ``source_label=None`` flips from any non-target class, matching the
    paper's "flips the labels of some samples from one class to the target
    class (e.g., Video class)".
    """

    required_capabilities = (
        Capability.READ_TRAINING_DATA,
        Capability.WRITE_TRAINING_DATA,
    )

    def __init__(
        self,
        rate: float,
        target_label,
        source_label=None,
        seed: int = 0,
        threat_model: Optional[ThreatModel] = None,
    ) -> None:
        super().__init__(threat_model)
        _check_rate(rate)
        self.rate = rate
        self.target_label = target_label
        self.source_label = source_label
        self.seed = seed

    def apply(self, X: np.ndarray, y: np.ndarray) -> AttackResult:
        self.check_threat_model()
        started = self.cost_clock.now()
        X = np.asarray(X)
        y = np.array(y, copy=True)
        if self.source_label is not None:
            candidates = np.flatnonzero(y == self.source_label)
        else:
            candidates = np.flatnonzero(y != self.target_label)
        n_poison = min(int(round(len(y) * self.rate)), len(candidates))
        rng = np.random.default_rng(self.seed)
        if n_poison > 0:
            victims = rng.choice(candidates, size=n_poison, replace=False)
            y[victims] = self.target_label
        return AttackResult(
            X=X,
            y=y,
            n_affected=n_poison,
            cost_seconds=self.cost_clock.now() - started,
            details={"rate": self.rate},
        )


class RandomLabelSwappingAttack(Attack):
    """Swap the labels of randomly chosen sample pairs.

    ``rate`` is the fraction of the dataset involved in swaps; each swap
    touches two samples, so ``round(rate * n / 2)`` pairs are drawn without
    replacement.  Swaps between samples that share a label still count as
    "affected" pairs drawn, but the reported count only includes samples
    whose label actually changed.
    """

    required_capabilities = (
        Capability.READ_TRAINING_DATA,
        Capability.WRITE_TRAINING_DATA,
    )

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        threat_model: Optional[ThreatModel] = None,
    ) -> None:
        super().__init__(threat_model)
        _check_rate(rate)
        self.rate = rate
        self.seed = seed

    def apply(self, X: np.ndarray, y: np.ndarray) -> AttackResult:
        self.check_threat_model()
        started = self.cost_clock.now()
        X = np.asarray(X)
        y = np.array(y, copy=True)
        n_pairs = int(round(len(y) * self.rate / 2.0))
        rng = np.random.default_rng(self.seed)
        n_changed = 0
        if n_pairs > 0 and len(y) >= 2:
            chosen = rng.choice(len(y), size=min(2 * n_pairs, len(y)), replace=False)
            for k in range(0, len(chosen) - 1, 2):
                i, j = chosen[k], chosen[k + 1]
                if y[i] != y[j]:
                    y[i], y[j] = y[j], y[i]
                    n_changed += 2
        return AttackResult(
            X=X,
            y=y,
            n_affected=n_changed,
            cost_seconds=self.cost_clock.now() - started,
            details={"rate": self.rate},
        )
