"""Inference-time confidentiality attacks from the Fig. 1 taxonomy.

Two deployment-stage attacks the taxonomy attributes to most model
families:

* **membership inference** — decide whether a record was in the training
  set from the model's prediction confidence (Shokri et al.);
* **model stealing / extraction** — reconstruct a functional surrogate by
  querying the prediction API (Tramèr et al.), measured by *fidelity*
  (agreement with the victim on fresh inputs).

Both are black-box: they only need ``QUERY_MODEL``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.attacks.base import Capability, CostClock, ThreatModel
from repro.ml.model import Classifier, clone
from repro.privacy.membership import membership_inference_risk


@dataclass
class MembershipInferenceResult:
    """Outcome of a membership-inference evaluation."""

    advantage: float  # best-threshold TPR − FPR, in [0, 1]
    n_members: int
    n_non_members: int

    @property
    def is_leaky(self) -> bool:
        """Rule of thumb: advantage above 0.2 signals memorisation."""
        return self.advantage > 0.2


class MembershipInferenceAttack:
    """Confidence-threshold membership inference against a fitted model."""

    required_capabilities = (Capability.QUERY_MODEL,)

    def __init__(self, threat_model: Optional[ThreatModel] = None) -> None:
        self.threat_model = threat_model

    def evaluate(
        self,
        model: Classifier,
        X_members: np.ndarray,
        X_non_members: np.ndarray,
    ) -> MembershipInferenceResult:
        """Measure the attacker's advantage on known member/non-member sets."""
        if self.threat_model is not None and not self.threat_model.allows(
            *self.required_capabilities
        ):
            raise PermissionError(
                f"threat model {self.threat_model.name!r} cannot query the model"
            )
        advantage = membership_inference_risk(model, X_members, X_non_members)
        return MembershipInferenceResult(
            advantage=advantage,
            n_members=len(X_members),
            n_non_members=len(X_non_members),
        )


@dataclass
class ModelStealingResult:
    """Outcome of a model-extraction attack."""

    surrogate: Classifier
    fidelity: float  # agreement with the victim on held-out queries
    n_queries: int
    cost_seconds: float
    details: Dict[str, float] = field(default_factory=dict)


class ModelStealingAttack:
    """Query-based model extraction.

    Parameters
    ----------
    surrogate_factory:
        Builds the (unfitted) surrogate model the attacker trains; defaults
        to cloning the victim's architecture — the strongest extraction
        assumption — but any classifier works.
    n_queries:
        Prediction-API calls the attacker spends.
    query_sampler:
        Callable ``(n, rng) -> X`` generating query inputs; defaults to
        resampling from a reference distribution the caller supplies to
        :meth:`steal`.
    """

    required_capabilities = (Capability.QUERY_MODEL,)

    def __init__(
        self,
        surrogate_factory: Optional[Callable[[], Classifier]] = None,
        n_queries: int = 500,
        seed: int = 0,
        threat_model: Optional[ThreatModel] = None,
        cost_clock: Optional[CostClock] = None,
    ) -> None:
        if n_queries < 10:
            raise ValueError("n_queries must be >= 10")
        self.surrogate_factory = surrogate_factory
        self.n_queries = n_queries
        self.seed = seed
        self.threat_model = threat_model
        self.cost_clock = cost_clock if cost_clock is not None else CostClock()

    def steal(
        self,
        victim: Classifier,
        X_reference: np.ndarray,
        X_eval: Optional[np.ndarray] = None,
    ) -> ModelStealingResult:
        """Extract a surrogate using queries shaped like ``X_reference``.

        Queries are jittered bootstrap resamples of the reference rows (the
        attacker knows the input domain, not the training data).  Fidelity
        is measured on ``X_eval`` (defaults to the reference rows).
        """
        if self.threat_model is not None and not self.threat_model.allows(
            *self.required_capabilities
        ):
            raise PermissionError(
                f"threat model {self.threat_model.name!r} cannot query the model"
            )
        X_reference = np.asarray(X_reference, dtype=np.float64)
        if X_reference.ndim != 2 or X_reference.shape[0] < 2:
            raise ValueError("X_reference must be 2-D with >= 2 rows")
        rng = np.random.default_rng(self.seed)
        started = self.cost_clock.now()
        rows = rng.integers(0, X_reference.shape[0], size=self.n_queries)
        scale = X_reference.std(axis=0)
        queries = X_reference[rows] + rng.normal(
            0.0, 0.1, size=(self.n_queries, X_reference.shape[1])
        ) * scale
        labels = victim.predict(queries)  # the prediction-API calls
        if self.surrogate_factory is not None:
            surrogate = self.surrogate_factory()
        else:
            surrogate = clone(victim)
        surrogate.fit(queries, labels)
        cost = self.cost_clock.now() - started
        X_eval = X_reference if X_eval is None else np.asarray(X_eval)
        fidelity = float(
            np.mean(surrogate.predict(X_eval) == victim.predict(X_eval))
        )
        return ModelStealingResult(
            surrogate=surrogate,
            fidelity=fidelity,
            n_queries=self.n_queries,
            cost_seconds=cost,
            details={"queries_per_second": self.n_queries / max(cost, 1e-9)},
        )
