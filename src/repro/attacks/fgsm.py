"""Fast Gradient Sign Method evasion attack (use case 2).

"FGSM … generates adversarial examples by adding a small amount in the
direction of the gradient of the loss function with respect to the input."
The paper generates the adversarial set **once, on the NN model** (complexity
is therefore constant ≈ 37 µs/sample regardless of the victim model) and
transfers the same 103 samples to LightGBM and XGBoost.  :class:`FgsmAttack`
implements exactly that: white-box analytic gradients against any model with
``input_gradient`` (the neural networks, logistic regression) and transfer
evaluation against the gradient-free tree ensembles.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import Attack, AttackResult, Capability, ThreatModel
from repro.ml.model import Classifier


def fgsm_perturb(
    model: Classifier,
    X: np.ndarray,
    epsilon: float,
    targets: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Return ``X + epsilon * sign(∇_x loss)`` for a differentiable model.

    ``targets`` defaults to the model's own predictions (untargeted attack:
    step *up* the loss of the currently predicted class).
    """
    if not hasattr(model, "input_gradient"):
        raise TypeError(
            f"{type(model).__name__} exposes no input gradients; FGSM needs a "
            "differentiable (white-box) surrogate — generate on the NN and "
            "transfer, as the paper does"
        )
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    X = np.asarray(X, dtype=np.float64)
    if targets is None:
        predictions = model.predict(X)
        class_index = {c: i for i, c in enumerate(model.classes_.tolist())}
        target_idx = np.array([class_index[p] for p in predictions.tolist()])
    else:
        class_index = {c: i for i, c in enumerate(model.classes_.tolist())}
        target_idx = np.array([class_index[t] for t in np.asarray(targets).tolist()])
    X_adv = np.empty_like(X)
    for i in range(X.shape[0]):
        grad = model.input_gradient(X[i], int(target_idx[i]))
        # untargeted FGSM ascends the loss of the true/predicted class
        X_adv[i] = X[i] + epsilon * np.sign(grad)
    return X_adv


class FgsmAttack(Attack):
    """White-box FGSM over a surrogate model.

    Parameters
    ----------
    surrogate:
        Fitted differentiable model the gradients are taken from (the NN).
    epsilon:
        Perturbation magnitude in (standardised) feature units.
    """

    required_capabilities = (
        Capability.READ_MODEL_STRUCTURE,
        Capability.PERTURB_INPUTS,
    )

    def __init__(
        self,
        surrogate: Classifier,
        epsilon: float = 0.25,
        threat_model: Optional[ThreatModel] = None,
    ) -> None:
        super().__init__(threat_model)
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.surrogate = surrogate
        self.epsilon = epsilon

    def apply(self, X: np.ndarray, y: np.ndarray) -> AttackResult:
        """Perturb every row of ``X``; labels pass through unchanged.

        ``cost_seconds`` records the full generation wall-clock; divide by
        ``len(X)`` for the per-sample complexity the paper reports in µs.
        """
        self.check_threat_model()
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        started = self.cost_clock.now()
        X_adv = fgsm_perturb(self.surrogate, X, self.epsilon, targets=y)
        cost = self.cost_clock.now() - started
        return AttackResult(
            X=X_adv,
            y=y.copy(),
            n_affected=X.shape[0],
            cost_seconds=cost,
            details={
                "epsilon": self.epsilon,
                "per_sample_us": 1e6 * cost / max(1, X.shape[0]),
            },
        )
