"""Attack-by-algorithm taxonomy (Fig. 1).

Fig. 1 summarises "attacks investigated in the relevant literature in the
last years … the type of attack that can be performed depending on each AI
algorithm used for training".  This registry encodes that matrix so the
dashboard can answer "which attack classes threaten the algorithm this
application deploys?" — the quantity the figure communicates.

The entries follow the paper's reference clusters: poisoning
(clean-label, backdoor, label flipping), evasion (gradient- and
query-based), model stealing / extraction, membership & property inference,
and model inversion, mapped onto the algorithm families the paper's use
cases train (linear models, SVMs, decision trees / tree ensembles, bayesian
networks, neural networks, graph neural networks, federated settings).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple


class AttackClass(enum.Enum):
    """High-level attack families from the Fig. 1 literature summary."""

    DATA_POISONING = "data_poisoning"
    CLEAN_LABEL_POISONING = "clean_label_poisoning"
    BACKDOOR = "backdoor"
    LABEL_FLIPPING = "label_flipping"
    EVASION_GRADIENT = "evasion_gradient"
    EVASION_QUERY = "evasion_query"
    MODEL_STEALING = "model_stealing"
    MEMBERSHIP_INFERENCE = "membership_inference"
    PROPERTY_INFERENCE = "property_inference"
    MODEL_INVERSION = "model_inversion"
    SPONGE = "sponge"


@dataclass(frozen=True)
class TaxonomyEntry:
    """One algorithm row of the Fig. 1 matrix."""

    algorithm: str
    attacks: FrozenSet[AttackClass]
    notes: str = ""


#: Fig. 1 matrix: algorithm family -> applicable attack classes.
ATTACK_TAXONOMY: Tuple[TaxonomyEntry, ...] = (
    TaxonomyEntry(
        algorithm="linear_models",
        attacks=frozenset(
            {
                AttackClass.DATA_POISONING,
                AttackClass.LABEL_FLIPPING,
                AttackClass.EVASION_GRADIENT,
                AttackClass.MODEL_STEALING,
                AttackClass.MEMBERSHIP_INFERENCE,
            }
        ),
        notes="closed-form stealing via prediction APIs (Tramèr et al.)",
    ),
    TaxonomyEntry(
        algorithm="svm",
        attacks=frozenset(
            {
                AttackClass.DATA_POISONING,
                AttackClass.LABEL_FLIPPING,
                AttackClass.EVASION_GRADIENT,
                AttackClass.EVASION_QUERY,
                AttackClass.MODEL_STEALING,
            }
        ),
        notes="poisoning defences studied by Weerasinghe et al.; evasion by James et al.",
    ),
    TaxonomyEntry(
        algorithm="decision_trees",
        attacks=frozenset(
            {
                AttackClass.DATA_POISONING,
                AttackClass.LABEL_FLIPPING,
                AttackClass.EVASION_QUERY,
                AttackClass.MODEL_STEALING,
                AttackClass.MEMBERSHIP_INFERENCE,
            }
        ),
        notes="tree ensembles evaded/hardened per Kantchelian et al.",
    ),
    TaxonomyEntry(
        algorithm="tree_ensembles",
        attacks=frozenset(
            {
                AttackClass.DATA_POISONING,
                AttackClass.LABEL_FLIPPING,
                AttackClass.EVASION_QUERY,
                AttackClass.MODEL_STEALING,
                AttackClass.MEMBERSHIP_INFERENCE,
            }
        ),
        notes="bagging doubles as a poisoning defence (Biggio et al.)",
    ),
    TaxonomyEntry(
        algorithm="bayesian_networks",
        attacks=frozenset(
            {
                AttackClass.DATA_POISONING,
                AttackClass.LABEL_FLIPPING,
                AttackClass.EVASION_QUERY,
            }
        ),
        notes="PC-algorithm poisoning (Alsuwat et al.)",
    ),
    TaxonomyEntry(
        algorithm="neural_networks",
        attacks=frozenset(
            {
                AttackClass.DATA_POISONING,
                AttackClass.CLEAN_LABEL_POISONING,
                AttackClass.BACKDOOR,
                AttackClass.LABEL_FLIPPING,
                AttackClass.EVASION_GRADIENT,
                AttackClass.EVASION_QUERY,
                AttackClass.MODEL_STEALING,
                AttackClass.MEMBERSHIP_INFERENCE,
                AttackClass.PROPERTY_INFERENCE,
                AttackClass.MODEL_INVERSION,
                AttackClass.SPONGE,
            }
        ),
        notes="full spectrum: poison frogs, reflection backdoors, C&W, FGSM, sponge examples",
    ),
    TaxonomyEntry(
        algorithm="graph_neural_networks",
        attacks=frozenset(
            {
                AttackClass.DATA_POISONING,
                AttackClass.MODEL_STEALING,
                AttackClass.MEMBERSHIP_INFERENCE,
                AttackClass.PROPERTY_INFERENCE,
            }
        ),
        notes="link stealing (He et al.)",
    ),
    TaxonomyEntry(
        algorithm="federated_learning",
        attacks=frozenset(
            {
                AttackClass.DATA_POISONING,
                AttackClass.BACKDOOR,
                AttackClass.LABEL_FLIPPING,
                AttackClass.MEMBERSHIP_INFERENCE,
                AttackClass.PROPERTY_INFERENCE,
                AttackClass.MODEL_INVERSION,
            }
        ),
        notes="feature inference in vertical FL (Luo et al.)",
    ),
)

_BY_ALGORITHM: Dict[str, TaxonomyEntry] = {e.algorithm: e for e in ATTACK_TAXONOMY}


def attacks_for_algorithm(algorithm: str) -> FrozenSet[AttackClass]:
    """Attack classes documented against an algorithm family (Fig. 1 row)."""
    if algorithm not in _BY_ALGORITHM:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; known: {sorted(_BY_ALGORITHM)}"
        )
    return _BY_ALGORITHM[algorithm].attacks


def algorithms_vulnerable_to(attack: AttackClass) -> List[str]:
    """Algorithm families threatened by an attack class (Fig. 1 column)."""
    return [e.algorithm for e in ATTACK_TAXONOMY if attack in e.attacks]
