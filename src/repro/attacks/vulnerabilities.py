"""Pipeline-stage vulnerability registry with CIA impact (Fig. 3).

§IV enumerates "the most common and critical vulnerabilities by relying on
the CIA (confidentiality, integrity, and availability) approach … Models are
vulnerable throughout their construction life cycle pipeline."  Fig. 3 maps
each pipeline stage to the vulnerabilities exploitable there and the
security attributes they compromise.  This registry encodes that map; the
sensor registry uses it to justify *why* sensors must be instrumented at
every stage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from repro.ml.pipeline import StageKind


class CiaProperty(enum.Enum):
    """The classic security triad used for the qualitative analysis."""

    CONFIDENTIALITY = "confidentiality"
    INTEGRITY = "integrity"
    AVAILABILITY = "availability"


@dataclass(frozen=True)
class Vulnerability:
    """One Fig. 3 entry: where in the pipeline, what breaks, how."""

    name: str
    stage: StageKind
    compromises: FrozenSet[CiaProperty]
    description: str


#: Fig. 3: vulnerabilities against machine learning systems, per stage.
PIPELINE_VULNERABILITIES: Tuple[Vulnerability, ...] = (
    Vulnerability(
        name="sensor_spoofing",
        stage=StageKind.DATA_COLLECTION,
        compromises=frozenset({CiaProperty.INTEGRITY}),
        description="fabricated or replayed input data at collection time",
    ),
    Vulnerability(
        name="data_poisoning",
        stage=StageKind.DATA_COLLECTION,
        compromises=frozenset({CiaProperty.INTEGRITY, CiaProperty.AVAILABILITY}),
        description="malicious contributions contaminate the training pool",
    ),
    Vulnerability(
        name="private_data_leakage",
        stage=StageKind.DATA_COLLECTION,
        compromises=frozenset({CiaProperty.CONFIDENTIALITY}),
        description="personal data enters the pipeline without obfuscation",
    ),
    Vulnerability(
        name="skewed_cleaning",
        stage=StageKind.DATA_CLEANING,
        compromises=frozenset({CiaProperty.INTEGRITY}),
        description="imputation/dedup rules biased to suppress or amplify cohorts",
    ),
    Vulnerability(
        name="label_flipping",
        stage=StageKind.LABELING,
        compromises=frozenset({CiaProperty.INTEGRITY}),
        description="annotation-time label corruption (random or targeted)",
    ),
    Vulnerability(
        name="clean_label_poisoning",
        stage=StageKind.LABELING,
        compromises=frozenset({CiaProperty.INTEGRITY}),
        description="correctly labelled but adversarially crafted samples",
    ),
    Vulnerability(
        name="backdoor_injection",
        stage=StageKind.TRAINING,
        compromises=frozenset({CiaProperty.INTEGRITY}),
        description="trigger patterns implanted during training",
    ),
    Vulnerability(
        name="hyperparameter_tampering",
        stage=StageKind.TRAINING,
        compromises=frozenset({CiaProperty.INTEGRITY, CiaProperty.AVAILABILITY}),
        description="insider modification of the training configuration",
    ),
    Vulnerability(
        name="overfitting_leakage",
        stage=StageKind.EVALUATION,
        compromises=frozenset({CiaProperty.CONFIDENTIALITY}),
        description="memorised training rows exposed via membership inference",
    ),
    Vulnerability(
        name="metric_gaming",
        stage=StageKind.EVALUATION,
        compromises=frozenset({CiaProperty.INTEGRITY}),
        description="evaluation sets curated to hide degraded behaviour",
    ),
    Vulnerability(
        name="model_evasion",
        stage=StageKind.DEPLOYMENT,
        compromises=frozenset({CiaProperty.INTEGRITY}),
        description="adversarial examples perturb inference (e.g. FGSM)",
    ),
    Vulnerability(
        name="model_stealing",
        stage=StageKind.DEPLOYMENT,
        compromises=frozenset({CiaProperty.CONFIDENTIALITY}),
        description="prediction-API extraction of model structure/parameters",
    ),
    Vulnerability(
        name="model_inversion",
        stage=StageKind.DEPLOYMENT,
        compromises=frozenset({CiaProperty.CONFIDENTIALITY}),
        description="reconstruction of training data from outputs",
    ),
    Vulnerability(
        name="sponge_examples",
        stage=StageKind.DEPLOYMENT,
        compromises=frozenset({CiaProperty.AVAILABILITY}),
        description="energy-latency inputs that starve inference resources",
    ),
)


def vulnerabilities_at_stage(stage: StageKind) -> List[Vulnerability]:
    """All Fig. 3 vulnerabilities exploitable at one pipeline stage."""
    return [v for v in PIPELINE_VULNERABILITIES if v.stage == stage]


def stages_requiring_sensors() -> List[StageKind]:
    """Stages with at least one vulnerability — i.e. every stage (§IV)."""
    return sorted(
        {v.stage for v in PIPELINE_VULNERABILITIES}, key=lambda s: s.value
    )
