"""Sponge (energy-latency) attacks against the deployed services.

§VIII: "poisoned data … can make devices drain energy at faster rates,
e.g., sponge attacks in IoT devices"; Fig. 3 lists sponge examples as the
availability vulnerability at deployment.  Against a served model the
attack shape is: craft inputs that maximise per-request computation (here:
the heavyweight *image* payloads of the XAI services) and pump them in
alongside legitimate traffic, starving it.

The module provides the attack-traffic builder plus the availability-impact
metric (legitimate-traffic latency inflation and error-rate increase) that
the resilience sensor reports for this attack class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.gateway.gateway import APIGateway
from repro.gateway.loadgen import LoadGenerator, SummaryReport, ThreadGroup
from repro.gateway.simulation import Simulator


@dataclass
class SpongeImpact:
    """Availability impact of a sponge attack on legitimate traffic."""

    baseline_avg_ms: float
    attacked_avg_ms: float
    baseline_error_rate: float
    attacked_error_rate: float

    @property
    def latency_inflation(self) -> float:
        """Attacked / baseline average latency (1.0 = no effect)."""
        if self.baseline_avg_ms <= 0:
            return float("inf") if self.attacked_avg_ms > 0 else 1.0
        return self.attacked_avg_ms / self.baseline_avg_ms

    @property
    def denial_of_service(self) -> bool:
        """Errors appeared, or latency blew past 5× baseline."""
        return (
            self.attacked_error_rate > self.baseline_error_rate
            or self.latency_inflation > 5.0
        )


def sponge_thread_group(
    route: str,
    n_threads: int = 10,
    iterations: int = 5,
    payload: str = "image",
) -> ThreadGroup:
    """Attack traffic: closed-loop floods of the costliest payload kind."""
    return ThreadGroup(
        route=route,
        n_threads=n_threads,
        rampup_seconds=0.1,  # sponges don't politely ramp up
        iterations=iterations,
        payload=payload,
    )


def run_sponge_experiment(
    gateway_builder,
    victim_route: str,
    legitimate: ThreadGroup,
    sponge: ThreadGroup,
    seed: int = 0,
) -> Tuple[SpongeImpact, SummaryReport, SummaryReport]:
    """Measure legitimate-traffic degradation under a sponge flood.

    Runs the deployment twice from identical seeds — once with only the
    legitimate thread group, once with the sponge group added — and compares
    the legitimate route's summary between runs.
    """
    if sponge.route != victim_route or legitimate.route != victim_route:
        raise ValueError("both thread groups must target the victim route")
    if sponge.payload == legitimate.payload:
        raise ValueError(
            "sponge and legitimate payloads must differ so their records "
            "can be separated in the mixed run"
        )

    def run(with_sponge: bool) -> SummaryReport:
        sim, gateway = gateway_builder(seed=seed)
        generator = LoadGenerator(sim, gateway)
        generator.add_thread_group(legitimate)
        if with_sponge:
            generator.add_thread_group(sponge)
        report = generator.run()
        # isolate the legitimate payload's records
        legit_records = [
            r
            for r in generator.responses
            if r.request.payload == legitimate.payload
        ]
        return SummaryReport.from_records(
            legit_records, duration=report.duration_seconds
        )

    baseline = run(with_sponge=False)
    attacked = run(with_sponge=True)
    impact = SpongeImpact(
        baseline_avg_ms=baseline.avg_response_ms,
        attacked_avg_ms=attacked.avg_response_ms,
        baseline_error_rate=baseline.error_rate,
        attacked_error_rate=attacked.error_rate,
    )
    return impact, baseline, attacked
