"""The pool worker loop: inherit kernels at fork, serve arena slots.

Workers are forked, not spawned: ``predict_fn`` and the explainer reach
the child through the copied address space, so the compiled FlatForest
arrays and the explainer's background matrix are never pickled.  At
startup the worker *warms* the inherited state — one throwaway predict
and one coalition-table build — so the first real batch doesn't pay the
copy-on-write page faults or the design-matrix construction.

The loop itself is the whole cross-process protocol: pull a small
``(slot, seq, kind)`` tuple, read the batch view from the slot's input
region, run the very same batched entry point the in-process path runs
(bitwise equality comes from sharing the code, not from re-deriving
it), write the result into the slot's separate result region, and
answer with another small tuple.  No ndarray or bytes payload ever
rides a queue — the ``cross-process-pickle`` lint rule enforces this.

``CRASH_SENTINEL`` is the fault-injection hook: on receipt the worker
dies with ``os._exit`` — no farewell message — which is what a
segfaulting kernel looks like to the dispatcher's liveness probe.  The
one cleanup it does perform is flushing the result-queue feeder thread:
the write lock on that queue is shared by every worker, and dying while
holding it would wedge the siblings, turning a one-worker fault into a
pool-wide outage the dispatcher cannot see.
"""

import contextlib
import os

import numpy as np

__all__ = ["CRASH_EXIT_CODE", "CRASH_SENTINEL", "STOP_SENTINEL", "worker_main"]

#: Queue message telling a worker to die abruptly (fault injection).
CRASH_SENTINEL = "crash"
#: Queue message telling a worker to exit cleanly.
STOP_SENTINEL = None
#: Exit status of an injected crash, distinguishable from a real fault.
CRASH_EXIT_CODE = 17

_KIND_PREDICT = 0


def _warm(predict_fn, explainer, n_features: int) -> None:
    """Fault-in the forked pages and pre-build the coalition design.

    Best-effort: a kernel that cannot take a zero row (or an explainer
    without the private design hook) just skips its warm step — the
    first real batch then pays the cost instead, which is slower but
    never wrong.
    """
    probe = np.zeros((1, n_features), dtype=np.float64)
    with contextlib.suppress(Exception):
        predict_fn(probe)
    if explainer is not None:
        with contextlib.suppress(Exception):
            explainer._coalitions(n_features)
        with contextlib.suppress(Exception):
            explainer.shap_values_batch_exact(probe)


def worker_main(
    worker_id: int,
    arena,
    task_queue,
    result_queue,
    predict_fn,
    explainer,
    warm_features: int = 0,
) -> None:
    """Serve arena slots until a stop sentinel (or injected crash)."""
    if warm_features > 0:
        _warm(predict_fn, explainer, warm_features)
    while True:
        message = task_queue.get()
        if message is STOP_SENTINEL:
            return
        if message == CRASH_SENTINEL:
            # Flush the queue feeder before dying: ``put`` hands the
            # message to a background thread, and exiting while that
            # thread holds the result queue's *shared* write lock would
            # wedge every sibling worker behind a lock nobody releases.
            # An injected crash models lost work, not a poisoned lock.
            result_queue.close()
            result_queue.join_thread()
            os._exit(CRASH_EXIT_CODE)
        slot, seq, kind = message
        error = None
        try:
            _seq, _kind, X = arena.read_input(slot)
            if kind == _KIND_PREDICT:
                R = predict_fn(X)
            else:
                R = explainer.shap_values_batch_exact(X)
            arena.write_result(
                slot, np.ascontiguousarray(R, dtype=np.float64)
            )
        except Exception as exc:  # typed back to the caller, never lost
            error = f"{type(exc).__name__}: {exc}"
        result_queue.put((worker_id, slot, seq, error))
