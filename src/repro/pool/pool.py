"""The futures dispatcher: overlap the event loop with pooled kernels.

:class:`KernelPool` owns the arena slots, the forked workers, and the
ordering contract.  ``submit`` pins a batch into a free slot and hands
the slot to the least-loaded live worker; ``poll`` (non-blocking) and
``drain`` (blocking) collect completions, detect dead workers, and
release futures **in submission order** — a batch that finishes early
on a fast worker waits for its predecessors, so downstream accounting
and replays are deterministic regardless of scheduling noise.

Crash handling is a three-step dance with no shared locks:

1. liveness — any worker with in-flight slots that stops answering
   ``is_alive`` is declared dead;
2. respawn — a fresh fork takes over the dead worker's id with a fresh
   task queue (the old queue may hold tasks the corpse never read;
   abandoning it avoids double service);
3. resubmit — every incomplete slot the dead worker owned is re-pinned
   to the new worker *from the slot's intact input region* (results
   live in a separate region, so a half-written result never corrupts
   the input).  Late duplicate results from the first attempt are
   dropped by sequence number and counted, never double-completed.

The dispatcher never reads a clock — callers pass ``now`` for span
timestamps — and never pickles an ndarray: queue traffic is
``(slot, seq, kind)`` int tuples one way and
``(worker, slot, seq, error)`` the other.
"""

import multiprocessing
import queue as queue_module
from collections import deque
from typing import Callable, Dict, List, Optional, Set

import numpy as np

from repro.pool.arena import SharedArena
from repro.pool.worker import CRASH_SENTINEL, STOP_SENTINEL, worker_main
from repro.telemetry.events import KIND_POOL, TelemetryEvent

__all__ = [
    "KIND_CODE_EXPLAIN",
    "KIND_CODE_PREDICT",
    "KernelPool",
    "NullPool",
    "PoolFuture",
]

KIND_CODE_PREDICT = 0
KIND_CODE_EXPLAIN = 1

#: Seconds ``drain`` blocks on the result queue between liveness probes.
_DRAIN_PROBE_TIMEOUT = 0.05


class PoolFuture:
    """One dispatched batch and, eventually, its result matrix."""

    __slots__ = (
        "seq",
        "kind",
        "rows",
        "done",
        "value",
        "error",
        "submitted_at",
        "completed_at",
        "span",
    )

    def __init__(self, seq: int, kind: int, rows: int, now: float) -> None:
        self.seq = seq
        self.kind = kind
        self.rows = rows
        self.done = False
        self.value: Optional[np.ndarray] = None
        self.error: Optional[str] = None
        self.submitted_at = now
        self.completed_at: Optional[float] = None
        self.span = None

    def result(self) -> np.ndarray:
        if not self.done:
            raise RuntimeError("pool future still pending")
        if self.error is not None:
            raise RuntimeError(self.error)
        return self.value

    def _resolve(self, value, error, now: float) -> None:
        self.value = value
        self.error = error
        self.done = True
        self.completed_at = now
        if self.span is not None:
            if error is not None:
                self.span.record_error(error)
            self.span.end(at=now)
            self.span = None


class KernelPool:
    """Shared-memory process pool for fused predict/SHAP batches."""

    def __init__(
        self,
        predict_fn: Callable[[np.ndarray], np.ndarray],
        explainer=None,
        workers: int = 2,
        arena_mb: float = 8.0,
        slots: Optional[int] = None,
        warm_features: int = 0,
        tracer=None,
    ) -> None:
        if workers < 1:
            raise ValueError("KernelPool needs >= 1 worker (use NullPool)")
        if arena_mb <= 0:
            raise ValueError("arena_mb must be positive")
        self.predict_fn = predict_fn
        self.explainer = explainer
        self.workers = workers
        self.tracer = tracer
        self.warm_features = warm_features
        n_slots = slots if slots is not None else max(2 * workers, 4)
        slot_bytes = int(arena_mb * 1024 * 1024) // n_slots
        self.arena = SharedArena(n_slots, slot_bytes)
        self._ctx = multiprocessing.get_context("fork")
        self._result_queue = self._ctx.Queue()
        self._free: deque = deque(range(n_slots))
        self._next_seq = 0
        self._next_release = 0
        # seq -> (worker_id, slot, kind_code, future) while incomplete
        self._pending: Dict[int, tuple] = {}
        # completed-but-unreleased futures, keyed by seq (ordering buffer)
        self._unreleased: Dict[int, PoolFuture] = {}
        self._assigned: List[Set[int]] = [set() for _ in range(workers)]
        self._task_queues: List = []
        self._procs: List = []
        self._retired_queues: List = []
        self._closed = False
        # counters
        self.dispatched = 0
        self.completed = 0
        self.rows_dispatched = 0
        self.crashes = 0
        self.restarts = 0
        self.resubmitted = 0
        self.duplicate_results = 0
        self.slot_waits = 0
        self.peak_inflight = 0
        self.bytes_pinned = 0
        for worker_id in range(workers):
            self._task_queues.append(None)
            self._procs.append(None)
            self._spawn(worker_id)

    # -- worker lifecycle ----------------------------------------------------

    def _spawn(self, worker_id: int) -> None:
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(
                worker_id,
                self.arena,
                task_queue,
                self._result_queue,
                self.predict_fn,
                self.explainer,
                self.warm_features,
            ),
            daemon=True,
        )
        process.start()
        old_queue = self._task_queues[worker_id]
        if old_queue is not None:
            self._retired_queues.append(old_queue)
        self._task_queues[worker_id] = task_queue
        self._procs[worker_id] = process

    def _check_liveness(self) -> int:
        """Respawn dead workers; resubmit their incomplete slots."""
        dead = [
            worker_id
            for worker_id, process in enumerate(self._procs)
            if self._assigned[worker_id] and not process.is_alive()
        ]
        if not dead:
            return 0
        # Collect anything the corpses delivered before dying first:
        # result-queue pipe writes are atomic, and a dead process sends
        # nothing new, so after this loop every remaining assigned seq
        # provably has no result in flight — resubmitting it cannot
        # race a late write into a recycled slot.
        while True:
            try:
                message = self._result_queue.get_nowait()
            except queue_module.Empty:
                break
            self._handle_result(message)
        recovered = 0
        for worker_id in dead:
            self.crashes += 1
            self._spawn(worker_id)
            self.restarts += 1
            task_queue = self._task_queues[worker_id]
            for seq in sorted(self._assigned[worker_id]):
                _worker, slot, kind, _future = self._pending[seq]
                task_queue.put((slot, seq, kind))
                self.resubmitted += 1
                recovered += 1
        return recovered

    # -- submission ----------------------------------------------------------

    def submit(self, kind: int, X: np.ndarray, now: float = 0.0) -> PoolFuture:
        """Pin one batch and dispatch it; returns an ordered future."""
        if self._closed:
            raise RuntimeError("pool is closed")
        if kind == KIND_CODE_EXPLAIN and self.explainer is None:
            raise RuntimeError("pool built without an explainer")
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("submit a stacked (n, d) batch")
        while not self._free:
            self.slot_waits += 1
            self._reap(block=True)
        slot = self._free.popleft()
        seq = self._next_seq
        self._next_seq = seq + 1
        self.arena.write_input(slot, seq, kind, X)
        self.bytes_pinned += X.nbytes
        worker_id = min(
            range(self.workers), key=lambda w: (len(self._assigned[w]), w)
        )
        future = PoolFuture(seq, kind, X.shape[0], now)
        if self.tracer is not None:
            future.span = self.tracer.start_span(
                "pool.dispatch",
                start_time=now,
                attributes={
                    "kind": (
                        "predict" if kind == KIND_CODE_PREDICT else "explain"
                    ),
                    "rows": float(X.shape[0]),
                    "worker": float(worker_id),
                    "slot": float(slot),
                    "seq": float(seq),
                },
            )
        self._pending[seq] = (worker_id, slot, kind, future)
        self._assigned[worker_id].add(seq)
        if len(self._pending) > self.peak_inflight:
            self.peak_inflight = len(self._pending)
        self._task_queues[worker_id].put((slot, seq, kind))
        self.dispatched += 1
        self.rows_dispatched += X.shape[0]
        return future

    def submit_predict(self, X: np.ndarray, now: float = 0.0) -> PoolFuture:
        return self.submit(KIND_CODE_PREDICT, X, now)

    def submit_explain(self, X: np.ndarray, now: float = 0.0) -> PoolFuture:
        return self.submit(KIND_CODE_EXPLAIN, X, now)

    # -- completion ----------------------------------------------------------

    def _reap(self, block: bool) -> bool:
        """Pull one result-queue message; True when one was handled."""
        try:
            if block:
                message = self._result_queue.get(
                    timeout=_DRAIN_PROBE_TIMEOUT
                )
            else:
                message = self._result_queue.get_nowait()
        except queue_module.Empty:
            if self._pending:
                self._check_liveness()
            return False
        self._handle_result(message)
        return True

    def _handle_result(self, message) -> None:
        _worker_id, slot, seq, error = message
        entry = self._pending.pop(seq, None)
        if entry is None:
            # late answer for a seq the crash path already recovered:
            # drop, count, don't touch the slot (it may already carry a
            # newer batch)
            self.duplicate_results += 1
            return
        worker_id, _slot, _kind, future = entry
        self._assigned[worker_id].discard(seq)
        value = None if error is not None else self.arena.read_result(slot)
        self._unreleased[seq] = future
        future.value = value  # staged; resolved at ordered release
        future.error = error
        self._free.append(slot)
        self.completed += 1

    def _release(self, now: float) -> List[PoolFuture]:
        """Resolve staged futures in submission order."""
        released = []
        while self._next_release in self._unreleased:
            future = self._unreleased.pop(self._next_release)
            self._next_release += 1
            future._resolve(future.value, future.error, now)
            released.append(future)
        return released

    def poll(self, now: float = 0.0) -> List[PoolFuture]:
        """Non-blocking: collect finished batches, in submission order."""
        while self._reap(block=False):
            pass  # the terminating Empty branch ran the liveness probe
        return self._release(now)

    def drain(self, now: float = 0.0) -> List[PoolFuture]:
        """Block until every in-flight batch resolves; ordered futures."""
        released = self._release(now)
        while self._pending or self._unreleased:
            self._reap(block=True)
            released.extend(self._release(now))
        return released

    # -- fault injection -----------------------------------------------------

    def inject_crash(self, worker_id: int = 0) -> None:
        """Queue an abrupt-death order for one worker (tests/benchmarks).

        The sentinel rides the task queue, so tasks queued *after* it
        land on a corpse and exercise the resubmission path.
        """
        self._task_queues[worker_id].put(CRASH_SENTINEL)

    # -- introspection -------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Batches dispatched but not yet completed."""
        return len(self._pending)

    @property
    def busy_workers(self) -> int:
        return sum(1 for assigned in self._assigned if assigned)

    @property
    def utilization(self) -> float:
        """Share of workers with in-flight work right now."""
        return self.busy_workers / self.workers if self.workers else 0.0

    @property
    def mean_fan_out(self) -> float:
        """Average rows per dispatched batch."""
        return (
            self.rows_dispatched / self.dispatched if self.dispatched else 0.0
        )

    def counters(self) -> Dict[str, float]:
        return {
            "workers": float(self.workers),
            "dispatched": float(self.dispatched),
            "completed": float(self.completed),
            "rows": float(self.rows_dispatched),
            "mean_fan_out": self.mean_fan_out,
            "queue_depth": float(self.queue_depth),
            "peak_inflight": float(self.peak_inflight),
            "utilization": self.utilization,
            "crashes": float(self.crashes),
            "restarts": float(self.restarts),
            "resubmitted": float(self.resubmitted),
            "duplicate_results": float(self.duplicate_results),
            "slot_waits": float(self.slot_waits),
            "bytes_pinned": float(self.bytes_pinned),
        }

    def telemetry_events(
        self, now: float, route: str = "serving"
    ) -> List[TelemetryEvent]:
        """One ``pool:<route>`` queue-depth/utilization/fan-out event."""
        return [
            TelemetryEvent(
                source=f"pool:{route}",
                value=float(self.queue_depth),
                timestamp=now,
                kind=KIND_POOL,
                attrs=self.counters(),
            )
        ]

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop workers, tear down queues, release the shared segment."""
        if self._closed:
            return
        self._closed = True
        for worker_id, process in enumerate(self._procs):
            if process.is_alive():
                self._task_queues[worker_id].put(STOP_SENTINEL)
        for process in self._procs:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        for task_queue in self._task_queues + self._retired_queues:
            task_queue.cancel_join_thread()
            task_queue.close()
        self._result_queue.cancel_join_thread()
        self._result_queue.close()
        self.arena.close()
        self.arena.unlink()

    def __enter__(self) -> "KernelPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullPool:
    """The tier-off pool: identical API, inline synchronous execution.

    ``submit`` runs the kernel in-process and returns an
    already-resolved future, so callers keep one code path whether the
    pool is on or off; ``bench_pool.py`` gates this wrapper within 5%
    of calling the kernels directly.
    """

    workers = 0

    def __init__(self, predict_fn, explainer=None, tracer=None) -> None:
        self.predict_fn = predict_fn
        self.explainer = explainer
        self.tracer = tracer
        self._next_seq = 0
        self.dispatched = 0
        self.completed = 0
        self.rows_dispatched = 0

    def submit(self, kind: int, X: np.ndarray, now: float = 0.0) -> PoolFuture:
        if kind == KIND_CODE_EXPLAIN and self.explainer is None:
            raise RuntimeError("pool built without an explainer")
        seq = self._next_seq
        self._next_seq = seq + 1
        rows = X.shape[0]
        future = PoolFuture(seq, kind, rows, now)
        if kind == KIND_CODE_PREDICT:
            value = self.predict_fn(X)
        else:
            value = self.explainer.shap_values_batch_exact(X)
        self.dispatched += 1
        self.completed += 1
        self.rows_dispatched += rows
        # resolve in place: the wrapper must stay within a few µs of
        # calling the kernel directly (bench_pool gates 5% end to end)
        future.value = value
        future.done = True
        future.completed_at = now
        return future

    def submit_predict(self, X: np.ndarray, now: float = 0.0) -> PoolFuture:
        return self.submit(KIND_CODE_PREDICT, X, now)

    def submit_explain(self, X: np.ndarray, now: float = 0.0) -> PoolFuture:
        return self.submit(KIND_CODE_EXPLAIN, X, now)

    def poll(self, now: float = 0.0) -> List[PoolFuture]:
        return []

    def drain(self, now: float = 0.0) -> List[PoolFuture]:
        return []

    @property
    def queue_depth(self) -> int:
        return 0

    def counters(self) -> Dict[str, float]:
        return {
            "workers": 0.0,
            "dispatched": float(self.dispatched),
            "completed": float(self.completed),
            "rows": float(self.rows_dispatched),
        }

    def telemetry_events(
        self, now: float, route: str = "serving"
    ) -> List[TelemetryEvent]:
        return [
            TelemetryEvent(
                source=f"pool:{route}",
                value=0.0,
                timestamp=now,
                kind=KIND_POOL,
                attrs=self.counters(),
            )
        ]

    def close(self) -> None:
        return None
