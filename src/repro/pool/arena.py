"""Pinned shared-memory ring slots for cross-process batch transport.

One :class:`SharedArena` is a single ``multiprocessing.shared_memory``
segment carved into fixed-size slots.  Each slot is

::

    | header (64 B, eight int64 words) | input region | result region |

with the input and result regions deliberately *separate*: a worker
writing its result never clobbers the batch input, so after a worker
crash the dispatcher can resubmit the slot's surviving input bytes to a
fresh process without keeping a second copy anywhere.

The arena is allocation-free on the hot path — ``write_input`` /
``read_result`` move bytes through numpy views over the pinned buffer,
and slot ownership transfers through queue messages of small integers,
never through pickled arrays (the ``cross-process-pickle`` rule bans
the latter).  Headers carry the submission sequence number, kind code
and both matrix shapes, so a slot is self-describing to whichever
process maps it.
"""

from multiprocessing import shared_memory
from typing import Tuple

import numpy as np

__all__ = ["HEADER_BYTES", "SharedArena"]

#: Per-slot header: eight int64 words (seq, kind, input rows, input
#: cols, result rank, then up to three result dims).  Rank 3 covers the
#: widest in-tree result — SHAP's (rows, features, outputs) tensor.
HEADER_BYTES = 64
_H_SEQ = 0
_H_KIND = 1
_H_IN_ROWS = 2
_H_IN_COLS = 3
_H_OUT_NDIM = 4
_H_OUT_DIMS = 5  # three words: 5, 6, 7
_MAX_RESULT_NDIM = 3

_ITEM = 8  # float64 / int64 width


class SharedArena:
    """A ring of pinned request/result slots in one shared segment.

    ``slots`` and ``slot_bytes`` fix the geometry at creation; both
    sides of a fork see the same mapping, so no per-batch attach cost.
    The arena itself does no free-list bookkeeping — the dispatcher
    owns slot lifecycle (a slot is writable by exactly one process at a
    time, handed over via queue messages) — which is what keeps every
    access lock-free.
    """

    __slots__ = ("slots", "slot_bytes", "input_capacity", "shm", "_headers")

    def __init__(self, slots: int, slot_bytes: int) -> None:
        if slots < 1:
            raise ValueError("arena needs at least one slot")
        if slot_bytes < HEADER_BYTES + 2 * _ITEM:
            raise ValueError(
                f"slot_bytes must be >= {HEADER_BYTES + 2 * _ITEM} "
                "(header plus one float64 each way)"
            )
        self.slots = slots
        # align the payload regions on 8-byte boundaries
        payload = (slot_bytes - HEADER_BYTES) // (2 * _ITEM) * _ITEM
        self.slot_bytes = HEADER_BYTES + 2 * payload
        #: Bytes available to one batch's input (the result region is
        #: the same size: predict outputs are narrower than their
        #: inputs and SHAP outputs match them exactly).
        self.input_capacity = payload
        self.shm = shared_memory.SharedMemory(
            create=True, size=self.slots * self.slot_bytes
        )
        self._headers = [
            np.frombuffer(
                self.shm.buf,
                dtype=np.int64,
                count=HEADER_BYTES // _ITEM,
                offset=slot * self.slot_bytes,
            )
            for slot in range(self.slots)
        ]

    # -- geometry ------------------------------------------------------------

    def capacity_rows(self, n_cols: int) -> int:
        """How many float64 rows of width ``n_cols`` fit in one slot."""
        if n_cols < 1:
            raise ValueError("n_cols must be >= 1")
        return self.input_capacity // (n_cols * _ITEM)

    def _region(self, slot: int, result: bool) -> int:
        base = slot * self.slot_bytes + HEADER_BYTES
        return base + self.input_capacity if result else base

    # -- request side --------------------------------------------------------

    def write_input(self, slot: int, seq: int, kind: int, X: np.ndarray) -> None:
        """Pin one (n, d) float64 batch into a slot's input region."""
        if X.dtype != np.float64 or X.ndim != 2:
            raise ValueError("arena transports 2-D float64 batches")
        if X.nbytes > self.input_capacity:
            raise ValueError(
                f"batch of {X.nbytes} bytes exceeds slot input capacity "
                f"{self.input_capacity}"
            )
        header = self._headers[slot]
        header[_H_SEQ] = seq
        header[_H_KIND] = kind
        header[_H_IN_ROWS] = X.shape[0]
        header[_H_IN_COLS] = X.shape[1]
        header[_H_OUT_NDIM] = 0
        view = np.frombuffer(
            self.shm.buf,
            dtype=np.float64,
            count=X.shape[0] * X.shape[1],
            offset=self._region(slot, result=False),
        )
        view[:] = X.reshape(-1)

    def read_input(self, slot: int) -> Tuple[int, int, np.ndarray]:
        """(seq, kind, batch view) for the worker — no copy made."""
        header = self._headers[slot]
        n_rows = int(header[_H_IN_ROWS])
        n_cols = int(header[_H_IN_COLS])
        view = np.frombuffer(
            self.shm.buf,
            dtype=np.float64,
            count=n_rows * n_cols,
            offset=self._region(slot, result=False),
        ).reshape(n_rows, n_cols)
        return int(header[_H_SEQ]), int(header[_H_KIND]), view

    # -- result side ---------------------------------------------------------

    def write_result(self, slot: int, R: np.ndarray) -> None:
        """Pin one float64 result (rank 1-3) into the slot's result region."""
        if R.dtype != np.float64 or not 1 <= R.ndim <= _MAX_RESULT_NDIM:
            raise ValueError(
                f"arena transports float64 results of rank 1-"
                f"{_MAX_RESULT_NDIM}, got {R.dtype} rank {R.ndim}"
            )
        if R.nbytes > self.input_capacity:
            raise ValueError(
                f"result of {R.nbytes} bytes exceeds slot result capacity "
                f"{self.input_capacity}"
            )
        header = self._headers[slot]
        view = np.frombuffer(
            self.shm.buf,
            dtype=np.float64,
            count=R.size,
            offset=self._region(slot, result=True),
        )
        view[:] = np.ascontiguousarray(R).reshape(-1)
        # shape words last: a reader that sees them set sees the bytes
        header[_H_OUT_NDIM] = R.ndim
        for axis in range(R.ndim):
            header[_H_OUT_DIMS + axis] = R.shape[axis]

    def read_result(self, slot: int) -> np.ndarray:
        """Copy the slot's result out (the slot is about to be reused)."""
        header = self._headers[slot]
        ndim = int(header[_H_OUT_NDIM])
        shape = tuple(
            int(header[_H_OUT_DIMS + axis]) for axis in range(ndim)
        )
        count = 1
        for dim in shape:
            count *= dim
        view = np.frombuffer(
            self.shm.buf,
            dtype=np.float64,
            count=count,
            offset=self._region(slot, result=True),
        ).reshape(shape)
        return view.copy()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Unmap this process's view of the segment."""
        # numpy views hold exported pointers into the mmap; drop them
        # before close() or BufferError
        self._headers = []
        self.shm.close()

    def unlink(self) -> None:
        """Remove the segment (creator only, after every close)."""
        self.shm.unlink()
