"""Process-parallel kernel execution over zero-copy shared-memory arenas.

The serving layer (DESIGN.md §15) made each kernel call *fused*; this
package makes fused calls *parallel*.  A :class:`KernelPool` forks N
worker processes that inherit the compiled kernels (FlatForest arrays,
the explainer's background/coalition state) through the fork — nothing
is pickled at spawn — and exchanges batch payloads through the pinned
ring slots of a :class:`SharedArena`: the dispatcher writes the stacked
float64 rows into a slot's input region, the worker writes the result
into the slot's separate result region, and the only bytes that cross a
``multiprocessing`` queue are small ``(slot, seq, kind)`` integer
tuples.  The ``cross-process-pickle`` lint rule holds that line.

Three contracts shape the design (DESIGN.md §16):

- **bitwise equality** — workers run the very same
  ``predict_fn`` / ``shap_values_batch_exact`` entry points on the same
  float64 bytes, so pooled results are bit-identical to the in-process
  path (property-tested under random batch splits and arrival orders);
- **deterministic ordering** — futures resolve in submission order no
  matter which worker finishes first, so replays and telemetry are
  stable;
- **crash safety** — a slot's input region is never overwritten by its
  result, so when a worker dies mid-batch the dispatcher respawns it
  and resubmits the surviving input bytes; duplicated late results are
  dropped, and the resubmission never double-counts completions.

:class:`NullPool` is the tier-off stand-in: the same API executed
inline, within 5% of calling the kernels directly
(``benchmarks/bench_pool.py`` gates it).  Everything here is
clock-free — callers pass ``now`` — so the dispatcher composes with the
clock-agnostic serving engine unchanged.
"""

from repro.pool.arena import SharedArena
from repro.pool.pool import (
    KIND_CODE_EXPLAIN,
    KIND_CODE_PREDICT,
    KernelPool,
    NullPool,
    PoolFuture,
)

__all__ = [
    "KIND_CODE_EXPLAIN",
    "KIND_CODE_PREDICT",
    "KernelPool",
    "NullPool",
    "PoolFuture",
    "SharedArena",
]
