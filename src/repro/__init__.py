"""repro — reproduction of the SPATIAL architecture (ICDCS 2024).

SPATIAL augments modern applications with **AI sensors** (probes that
quantify trustworthy properties of AI models across the ML pipeline) and an
**AI dashboard** (the human-in-the-loop surface that aggregates sensor
readings, raises alerts, and routes operator feedback back into the
pipeline), served by metric micro-services behind an API gateway.

Package layout
--------------
``repro.ml``        ML substrate: models, metrics, preprocessing, pipeline.
``repro.datasets``  Synthetic stand-ins for UniMiB SHAR / operator pcaps.
``repro.attacks``   Poisoning & evasion attacks, taxonomies, threat models.
``repro.xai``       SHAP, LIME (tabular + image), occlusion sensitivity.
``repro.trust``     Resilience (impact/complexity), fairness, trust score.
``repro.core``      SPATIAL proper: sensors, registry, monitor, dashboard.
``repro.gateway``   Discrete-event micro-service deployment + load generator.
``repro.telemetry`` Streaming monitoring spine: bus, WAL, rollups, queries.
``repro.analysis``  Static analysis of this tree: AST rules + layer contract.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
