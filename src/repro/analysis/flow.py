"""Intraprocedural control-flow graphs and dataflow over them.

One :class:`CFG` per function: basic blocks of statements linked by the
branch/loop/exception structure, an entry block and a synthetic exit.
On top of it, classic forward dataflow — :func:`reaching_definitions`
(which assignments can reach each block) and :func:`def_use_chains`
(which uses each definition feeds).  These power the flow rule family in
:mod:`repro.analysis.rules_flow`: span-leak detection is "a definition
whose every path to the exit must pass a finishing use", and
unreachable-code detection is plain entry-reachability over the blocks.

The builder is deliberately conservative: constructs it does not model
precisely (``match``, exception edges) get *more* edges rather than
fewer, so path-existence queries over-approximate and never invent an
impossible "all paths" claim.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CFG",
    "Block",
    "Definition",
    "build_cfg",
    "def_use_chains",
    "reaching_definitions",
]


@dataclass
class Block:
    """A straight-line run of statements with no internal branching."""

    block_id: int
    stmts: List[ast.stmt] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    def add_succ(self, other: int) -> None:
        if other not in self.succs:
            self.succs.append(other)


class CFG:
    """Control-flow graph of one function body.

    ``entry`` is block 0; ``exit_id`` is a synthetic empty block every
    return/raise/fall-through edge targets.  Blocks are created in
    source order, so iteration is deterministic.
    """

    def __init__(self) -> None:
        self.blocks: Dict[int, Block] = {}
        self.entry = self._new_block().block_id
        self.exit_id = self._new_block().block_id

    def _new_block(self) -> Block:
        block = Block(block_id=len(self.blocks))
        self.blocks[block.block_id] = block
        return block

    def add_edge(self, src: int, dst: int) -> None:
        self.blocks[src].add_succ(dst)
        if src not in self.blocks[dst].preds:
            self.blocks[dst].preds.append(src)

    def reachable_from_entry(self) -> Set[int]:
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ in self.blocks[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def path_avoiding(
        self, start: int, goal: int, forbidden: FrozenSet[int]
    ) -> bool:
        """True when some path start→goal never enters a forbidden block.

        ``start`` itself may be forbidden only if start == goal is not
        required; the search begins at ``start``'s successors when
        ``start in forbidden`` would otherwise trivially fail.
        """
        if start == goal:
            return True
        seen = {start}
        stack = [start]
        while stack:
            for succ in self.blocks[stack.pop()].succs:
                if succ == goal:
                    return True
                if succ in seen or succ in forbidden:
                    continue
                seen.add(succ)
                stack.append(succ)
        return False

    def iter_blocks(self) -> Iterator[Block]:
        for block_id in sorted(self.blocks):
            yield self.blocks[block_id]


class _Builder:
    """Translate a statement list into blocks; one instance per function."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        # (loop_header, loop_exit, seq) stack for continue/break targets.
        self.loops: List[Tuple[int, int, int]] = []
        # (handler entry ids, seq) per enclosing try: a raise may
        # transfer to any of them.
        self.handlers: List[Tuple[List[int], int]] = []
        # (abrupt-copy finally entry, seq) per enclosing try/finally:
        # return/raise/break/continue must pass through these on the
        # way to their real target, innermost first.
        self.finals: List[Tuple[int, int]] = []
        # finally entry -> where its abrupt copy continues after running.
        self.final_continuations: Dict[int, Set[int]] = {}
        self._seq = 0

    def build(self, body: Sequence[ast.stmt]) -> None:
        end = self._emit_body(body, self.cfg.entry)
        if end is not None:
            self.cfg.add_edge(end, self.cfg.exit_id)

    def _route_abrupt(
        self, current: int, terminal: int, min_seq: int = -1
    ) -> None:
        """Edge an abrupt jump to ``terminal`` through enclosing finallys.

        Only finallys opened after ``min_seq`` are traversed: a raise
        headed for a try's own handler skips that try's finally (the
        handler runs first), and a break only runs finallys nested
        inside its loop.
        """
        chain = [entry for entry, seq in self.finals if seq > min_seq]
        if not chain:
            self.cfg.add_edge(current, terminal)
            return
        self.cfg.add_edge(current, chain[-1])  # innermost first
        for inner, outer in zip(chain[1:], chain[:-1]):
            self.final_continuations.setdefault(inner, set()).add(outer)
        self.final_continuations.setdefault(chain[0], set()).add(terminal)

    # Each _emit_* method returns the open block id control falls out
    # of, or None when every path has already left (return/raise/...).

    def _emit_body(
        self, body: Sequence[ast.stmt], current: Optional[int]
    ) -> Optional[int]:
        for stmt in body:
            if current is None:
                # Dead statements still get a block so unreachable-code
                # detection can point at them.
                current = self.cfg._new_block().block_id
            current = self._emit_stmt(stmt, current)
        return current

    def _emit_stmt(self, stmt: ast.stmt, current: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._emit_if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._emit_loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._emit_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # Keep the context managers (their expressions are evaluated
            # here, their aliases bound here) but inline the body into
            # its own statements so nothing is walked twice.
            shallow = type(stmt)(items=stmt.items, body=[])
            self.cfg.blocks[current].stmts.append(
                ast.copy_location(shallow, stmt)
            )
            return self._emit_body(stmt.body, current)
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return self._emit_match(stmt, current)
        if isinstance(stmt, ast.Return):
            self.cfg.blocks[current].stmts.append(stmt)
            self._route_abrupt(current, self.cfg.exit_id)
            return None
        if isinstance(stmt, ast.Raise):
            self.cfg.blocks[current].stmts.append(stmt)
            for handler_ids, handler_seq in self.handlers:
                for handler_id in handler_ids:
                    self._route_abrupt(current, handler_id, handler_seq)
            self._route_abrupt(current, self.cfg.exit_id)
            return None
        if isinstance(stmt, ast.Break):
            self.cfg.blocks[current].stmts.append(stmt)
            if self.loops:
                header, after, seq = self.loops[-1]
                self._route_abrupt(current, after, seq)
            return None
        if isinstance(stmt, ast.Continue):
            self.cfg.blocks[current].stmts.append(stmt)
            if self.loops:
                header, after, seq = self.loops[-1]
                self._route_abrupt(current, header, seq)
            return None
        self.cfg.blocks[current].stmts.append(stmt)
        return current

    def _emit_if(self, stmt: ast.If, current: int) -> Optional[int]:
        self.cfg.blocks[current].stmts.append(_cond_marker(stmt.test))
        join: Optional[int] = None

        then_entry = self.cfg._new_block().block_id
        self.cfg.add_edge(current, then_entry)
        then_end = self._emit_body(stmt.body, then_entry)

        if stmt.orelse:
            else_entry = self.cfg._new_block().block_id
            self.cfg.add_edge(current, else_entry)
            else_end = self._emit_body(stmt.orelse, else_entry)
        else:
            else_end = current  # condition false: fall through

        for end in (then_end, else_end):
            if end is not None:
                if join is None:
                    join = self.cfg._new_block().block_id
                self.cfg.add_edge(end, join)
        return join

    def _emit_loop(self, stmt: ast.stmt, current: int) -> Optional[int]:
        self._seq += 1
        header = self.cfg._new_block().block_id
        self.cfg.add_edge(current, header)
        self.cfg.blocks[header].stmts.append(_loop_marker(stmt))
        after = self.cfg._new_block().block_id

        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )

        body_entry = self.cfg._new_block().block_id
        self.cfg.add_edge(header, body_entry)
        self.loops.append((header, after, self._seq))
        body_end = self._emit_body(stmt.body, body_entry)
        self.loops.pop()
        if body_end is not None:
            self.cfg.add_edge(body_end, header)

        if not infinite:
            if stmt.orelse:
                else_entry = self.cfg._new_block().block_id
                self.cfg.add_edge(header, else_entry)
                else_end = self._emit_body(stmt.orelse, else_entry)
                if else_end is not None:
                    self.cfg.add_edge(else_end, after)
            else:
                self.cfg.add_edge(header, after)
        # `while True:` only exits through break edges added above.
        if infinite and not self.cfg.blocks[after].preds:
            return None
        return after

    def _emit_try(self, stmt: ast.Try, current: int) -> Optional[int]:
        self._seq += 1
        seq = self._seq
        handler_entries: List[int] = []
        for _handler in stmt.handlers:
            handler_entries.append(self.cfg._new_block().block_id)
        final_abrupt: Optional[int] = None
        if stmt.finalbody:
            # Pre-created so return/raise/break inside the body can
            # route through it; its statements are emitted below.
            final_abrupt = self.cfg._new_block().block_id
            self.finals.append((final_abrupt, seq))

        self.handlers.append((handler_entries, seq))
        body_entry = self.cfg._new_block().block_id
        self.cfg.add_edge(current, body_entry)
        # Conservatively, the try body may fault before running at all.
        for handler_id in handler_entries:
            self.cfg.add_edge(body_entry, handler_id)
        body_end = self._emit_body(stmt.body, body_entry)
        self.handlers.pop()

        ends: List[Optional[int]] = []
        if stmt.orelse:
            if body_end is not None:
                else_entry = self.cfg._new_block().block_id
                self.cfg.add_edge(body_end, else_entry)
                ends.append(self._emit_body(stmt.orelse, else_entry))
        else:
            ends.append(body_end)
        for handler, handler_id in zip(stmt.handlers, handler_entries):
            ends.append(self._emit_body(handler.body, handler_id))

        live = [end for end in ends if end is not None]
        if stmt.finalbody:
            self.finals.pop()
            # Abrupt copy: runs on the way out for routed jumps, then
            # continues to their recorded targets.  Emitted separately
            # from the fall-through copy (as CPython inlines finallys)
            # so a routed return does not open a spurious path from the
            # normal continuation to the exit.
            if self.cfg.blocks[final_abrupt].preds:
                abrupt_end = self._emit_body(stmt.finalbody, final_abrupt)
                if abrupt_end is not None:
                    targets = self.final_continuations.get(
                        final_abrupt, {self.cfg.exit_id}
                    )
                    for target in sorted(targets):
                        self.cfg.add_edge(abrupt_end, target)
            if not live:
                return None
            final_norm = self.cfg._new_block().block_id
            for end in live:
                self.cfg.add_edge(end, final_norm)
            return self._emit_body(stmt.finalbody, final_norm)
        if not live:
            return None
        join = self.cfg._new_block().block_id
        for end in live:
            self.cfg.add_edge(end, join)
        return join

    def _emit_match(self, stmt: ast.AST, current: int) -> Optional[int]:
        self.cfg.blocks[current].stmts.append(_cond_marker(stmt.subject))
        join: Optional[int] = None
        exhaustive = False
        for case in stmt.cases:
            if _is_wildcard_case(case):
                exhaustive = True
            case_entry = self.cfg._new_block().block_id
            self.cfg.add_edge(current, case_entry)
            case_end = self._emit_body(case.body, case_entry)
            if case_end is not None:
                if join is None:
                    join = self.cfg._new_block().block_id
                self.cfg.add_edge(case_end, join)
        if not exhaustive:
            if join is None:
                join = self.cfg._new_block().block_id
            self.cfg.add_edge(current, join)
        return join


def _is_wildcard_case(case: ast.AST) -> bool:
    pattern = case.pattern
    return (
        isinstance(pattern, ast.MatchAs)
        and pattern.pattern is None
        and case.guard is None
    )


def _cond_marker(expr: ast.expr) -> ast.stmt:
    """Wrap a branch condition as an Expr so its reads join the block."""
    marker = ast.Expr(value=expr)
    return ast.copy_location(marker, expr)


def _loop_marker(stmt: ast.stmt) -> ast.stmt:
    if isinstance(stmt, ast.While):
        return _cond_marker(stmt.test)
    # for-loop header: the iterable is read, the target is stored
    assign = ast.Assign(targets=[stmt.target], value=stmt.iter)
    return ast.copy_location(assign, stmt)


def build_cfg(fn: ast.AST) -> CFG:
    """CFG over ``fn.body`` (a FunctionDef/AsyncFunctionDef or Module)."""
    cfg = CFG()
    _Builder(cfg).build(fn.body)
    return cfg


# -- dataflow ----------------------------------------------------------------


@dataclass(frozen=True, order=True)
class Definition:
    """One binding of ``name`` (assignment, loop target, with-alias, param)."""

    name: str
    block_id: int
    stmt_index: int  # position within the block; -1 for parameters
    lineno: int


def _stmt_defs(stmt: ast.stmt) -> Iterator[Tuple[str, int]]:
    """(name, lineno) pairs bound by one statement, nested targets included."""

    def targets_of(node: ast.AST) -> Iterator[ast.AST]:
        if isinstance(node, ast.Assign):
            yield from node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            yield node.target
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    yield item.optional_vars
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            yield ast.copy_location(ast.Name(id=node.name, ctx=ast.Store()), node)

    for target in targets_of(stmt):
        for leaf in ast.walk(target):
            if isinstance(leaf, ast.Name) and isinstance(leaf.ctx, ast.Store):
                yield leaf.id, leaf.lineno


def reaching_definitions(
    cfg: CFG, params: Sequence[str] = ()
) -> Dict[int, Set[Definition]]:
    """IN-set of definitions for every block (classic forward worklist)."""
    gen: Dict[int, Dict[str, Definition]] = {}
    for block in cfg.iter_blocks():
        latest: Dict[str, Definition] = {}
        for index, stmt in enumerate(block.stmts):
            for name, lineno in _stmt_defs(stmt):
                latest[name] = Definition(name, block.block_id, index, lineno)
        gen[block.block_id] = latest

    entry_defs = {
        Definition(name, cfg.entry, -1, 0) for name in params
    }
    in_sets: Dict[int, Set[Definition]] = {
        block.block_id: set() for block in cfg.iter_blocks()
    }
    in_sets[cfg.entry] = set(entry_defs)

    changed = True
    while changed:
        changed = False
        for block in cfg.iter_blocks():
            block_in = set(in_sets[block.block_id])
            killed = set(gen[block.block_id])
            block_out = {
                d for d in block_in if d.name not in killed
            } | set(gen[block.block_id].values())
            for succ in block.succs:
                merged = in_sets[succ] | block_out
                if merged != in_sets[succ]:
                    in_sets[succ] = merged
                    changed = True
    return in_sets


def def_use_chains(
    cfg: CFG, params: Sequence[str] = ()
) -> Dict[Definition, List[Tuple[int, ast.Name]]]:
    """Map every definition to the (block_id, Name-load) uses it reaches."""
    in_sets = reaching_definitions(cfg, params)
    chains: Dict[Definition, List[Tuple[int, ast.Name]]] = {}

    for block in cfg.iter_blocks():
        live: Dict[str, List[Definition]] = {}
        for definition in in_sets[block.block_id]:
            live.setdefault(definition.name, []).append(definition)
        for index, stmt in enumerate(block.stmts):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    for definition in live.get(node.id, ()):
                        chains.setdefault(definition, []).append(
                            (block.block_id, node)
                        )
            redefined: Dict[str, Definition] = {}
            for name, lineno in _stmt_defs(stmt):
                redefined[name] = Definition(name, block.block_id, index, lineno)
            for name, definition in redefined.items():
                live[name] = [definition]
    return chains
