"""AST rule engine: one parse per module, many registered probes.

The telemetry subsystem gauges the *running* system; this package gauges
the *source tree* the same way — small, composable probes that each
quantify one invariant.  A module is parsed exactly once into a
:class:`ModuleContext`; every registered rule then walks the shared tree
and yields findings.  Rules register themselves with the :func:`rule`
decorator, so adding a probe is writing one generator function — the
engine, CLI, baseline and tests pick it up automatically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "AnalysisEngine",
    "Finding",
    "ModuleContext",
    "RuleSpec",
    "all_rules",
    "get_rule",
    "rule",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One violation: where it is, which probe fired, and why it matters."""

    path: str  # posix path relative to the analysis root
    line: int
    rule: str
    message: str
    severity: str = "error"  # "error" gates CI; "warning" is advisory

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            rule=str(data["rule"]),
            message=str(data["message"]),
            severity=str(data.get("severity", "error")),
        )


@dataclass
class ModuleContext:
    """A parsed module plus the metadata rules keep re-deriving.

    ``nodes`` is the flattened ``ast.walk`` order, computed once so ten
    rules do not re-walk the tree ten times.  ``package`` is the
    first-level package under the analysis root (``"ml"`` for
    ``ml/model.py``, ``""`` for root modules like ``cli.py``).
    """

    path: Path
    relpath: str
    tree: ast.Module
    source: str
    nodes: List[ast.AST] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.nodes:
            self.nodes = list(ast.walk(self.tree))

    @property
    def package(self) -> str:
        parts = Path(self.relpath).parts
        return parts[0] if len(parts) > 1 else ""

    @property
    def is_init(self) -> bool:
        return Path(self.relpath).name == "__init__.py"

    def walk(self, *types: type) -> Iterator[ast.AST]:
        """All nodes of the given types, in ``ast.walk`` order."""
        for node in self.nodes:
            if isinstance(node, types):
                yield node

    @classmethod
    def from_source(
        cls, source: str, relpath: str = "module.py", path: Optional[Path] = None
    ) -> "ModuleContext":
        return cls(
            path=path or Path(relpath),
            relpath=relpath,
            tree=ast.parse(source),
            source=source,
        )


# A rule is a generator over one module: yield (lineno, message) pairs.
RuleFunc = Callable[[ModuleContext], Iterable[Tuple[int, str]]]


@dataclass(frozen=True)
class RuleSpec:
    rule_id: str
    severity: str
    description: str
    func: RuleFunc


_REGISTRY: Dict[str, RuleSpec] = {}


def rule(rule_id: str, *, severity: str = "error") -> Callable[[RuleFunc], RuleFunc]:
    """Register ``func`` as an analysis rule under ``rule_id``.

    The decorated function's docstring becomes the rule description shown
    by ``repro lint --list-rules``; the first line should state the
    invariant, not the mechanics.
    """

    if severity not in ("error", "warning"):
        raise ValueError(f"severity must be error|warning, got {severity!r}")

    def register(func: RuleFunc) -> RuleFunc:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        description = (func.__doc__ or rule_id).strip().splitlines()[0]
        _REGISTRY[rule_id] = RuleSpec(rule_id, severity, description, func)
        return func

    return register


def all_rules() -> List[RuleSpec]:
    return sorted(_REGISTRY.values(), key=lambda spec: spec.rule_id)


def get_rule(rule_id: str) -> RuleSpec:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {rule_id!r}; known: {known}") from None


class AnalysisEngine:
    """Run a set of registered rules over a source tree.

    ``rules=None`` means every registered rule.  The engine is oblivious
    to *what* the rules check — it owns parsing, iteration order and
    finding assembly, so the same machinery serves the CLI, the tier-1
    gate and per-rule fixture tests.
    """

    def __init__(self, rules: Optional[Iterable[str]] = None) -> None:
        if rules is None:
            self._specs = all_rules()
        else:
            self._specs = [get_rule(rule_id) for rule_id in rules]

    @property
    def rule_ids(self) -> List[str]:
        return [spec.rule_id for spec in self._specs]

    def analyze_module(self, module: ModuleContext) -> List[Finding]:
        findings = []
        for spec in self._specs:
            for lineno, message in spec.func(module):
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=lineno,
                        rule=spec.rule_id,
                        message=message,
                        severity=spec.severity,
                    )
                )
        return sorted(findings)

    def analyze_source(
        self, source: str, relpath: str = "module.py"
    ) -> List[Finding]:
        """Analyze a source string — the fixture-test entry point."""
        return self.analyze_module(ModuleContext.from_source(source, relpath))

    def analyze_tree(self, root: Path) -> Tuple[List[Finding], int]:
        """Analyze every ``*.py`` under ``root``; returns (findings, n_modules)."""
        findings: List[Finding] = []
        modules = 0
        for path in sorted(root.rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            relpath = path.relative_to(root).as_posix()
            try:
                context = ModuleContext(
                    path=path,
                    relpath=relpath,
                    tree=ast.parse(source),
                    source=source,
                )
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        path=relpath,
                        line=exc.lineno or 1,
                        rule="syntax-error",
                        message=f"module does not parse: {exc.msg}",
                    )
                )
                continue
            modules += 1
            findings.extend(self.analyze_module(context))
        return sorted(findings), modules
