"""Baseline suppressions: accepted findings carry a written-down reason.

A fresh rule fired against a mature tree surfaces pre-existing findings
that are judged acceptable — each one is recorded here with *why*, so
the gate stays at zero new findings without forcing noise fixes.  An
entry matches on rule id + path + an optional message substring; line
numbers are deliberately not part of the key (edits above a finding
must not invalidate its suppression).  Entries that no longer match
anything are reported as stale so the baseline shrinks over time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine import Finding

__all__ = ["Baseline", "BaselineEntry"]

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    reason: str
    contains: str = ""  # empty: match every finding of (rule, path)

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule == self.rule
            and finding.path == self.path
            and (not self.contains or self.contains in finding.message)
        )

    def to_dict(self) -> Dict[str, str]:
        payload = {"rule": self.rule, "path": self.path, "reason": self.reason}
        if self.contains:
            payload["contains"] = self.contains
        return payload


class Baseline:
    """An ordered set of suppression entries loaded from one JSON file."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries = list(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has version {payload.get('version')!r}, "
                f"expected {BASELINE_VERSION}"
            )
        entries = []
        for raw in payload.get("suppressions", []):
            missing = {"rule", "path", "reason"} - set(raw)
            if missing:
                raise ValueError(
                    f"baseline entry {raw!r} is missing {sorted(missing)} — "
                    "every suppression needs a reason"
                )
            if not str(raw["reason"]).strip():
                raise ValueError(
                    f"baseline entry {raw!r} has an empty reason — "
                    "say why the finding is acceptable"
                )
            entries.append(
                BaselineEntry(
                    rule=raw["rule"],
                    path=raw["path"],
                    reason=raw["reason"],
                    contains=raw.get("contains", ""),
                )
            )
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "suppressions": [entry.to_dict() for entry in self.entries],
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings into (active, suppressed) and report stale entries."""
        active: List[Finding] = []
        suppressed: List[Finding] = []
        used = [False] * len(self.entries)
        for finding in findings:
            hit: Optional[int] = None
            for i, entry in enumerate(self.entries):
                if entry.matches(finding):
                    hit = i
                    break
            if hit is None:
                active.append(finding)
            else:
                used[hit] = True
                suppressed.append(finding)
        stale = [e for e, u in zip(self.entries, used) if not u]
        return active, suppressed, stale
