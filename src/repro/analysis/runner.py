"""One entry point that the CLI, the tier-1 gate and the bench all share.

``run_analysis`` now runs in two phases.  The **per-module phase**
(parse, syntactic rules, CFG rules, symbol-summary extraction) is a pure
function of one file's bytes, so it parallelizes across worker processes
(``jobs``) and replays from the incremental cache (``changed``) for
modules whose content hash — and reverse-import closure — is untouched.
The **global phase** (import contracts, symbol table, call graph,
whole-program taint/lock rules) is cheap and recomputed every run from
the union of fresh and cached module summaries, so cross-module findings
never go stale.  The result is a :class:`LintReport` rendering as
reviewer-readable text or the stable ``--json`` shape consumed by CI.
"""

from __future__ import annotations

import ast
import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.cache import AnalysisCache, ModuleRecord
from repro.analysis.contracts import ImportGraphAnalyzer, extract_intra_imports
from repro.analysis.engine import (
    AnalysisEngine,
    Finding,
    ModuleContext,
    all_rules,
)
from repro.analysis.rules_flow import (
    ProjectContext,
    all_project_rules,
    build_project_context,
    run_project_rules,
)
from repro.analysis.symbols import ModuleSummary, source_hash, summarize_module

# Registers the syntactic rule catalogue on import (rules_flow above
# registers the CFG rules the same way).
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "LintReport",
    "default_cache_path",
    "default_root",
    "find_baseline",
    "run_analysis",
    "split_rule_ids",
]


def default_root() -> Path:
    """The installed ``repro`` package — what ``repro lint`` checks by default."""
    import repro

    return Path(repro.__file__).resolve().parent


def find_baseline(root: Path) -> Optional[Path]:
    """Look for ``lint-baseline.json`` beside the tree and up to the repo root."""
    for candidate in (root, *root.parents[:3]):
        path = candidate / "lint-baseline.json"
        if path.is_file():
            return path
    return None


def default_cache_path(root: Path) -> Path:
    """Where the incremental cache lives: beside the baseline if one is
    discovered (the repo root in this tree), else beside the package."""
    baseline = find_baseline(root)
    anchor = baseline.parent if baseline is not None else root.parent
    return anchor / ".lint-cache.json"


def split_rule_ids(
    rules: Optional[Sequence[str]],
) -> Tuple[Optional[List[str]], Optional[List[str]]]:
    """Partition requested rule ids into (module rules, project rules).

    ``None`` means "all of both".  Unknown ids raise KeyError naming the
    combined catalogue, so ``--rule typo`` fails loudly.
    """
    if rules is None:
        return None, None
    module_known = {spec.rule_id for spec in all_rules()}
    project_known = {spec.rule_id for spec in all_project_rules()}
    module_ids: List[str] = []
    project_ids: List[str] = []
    for rule_id in rules:
        if rule_id in module_known:
            module_ids.append(rule_id)
        elif rule_id in project_known:
            project_ids.append(rule_id)
        else:
            known = ", ".join(sorted(module_known | project_known))
            raise KeyError(f"unknown rule {rule_id!r}; known: {known}")
    return module_ids, project_ids


@dataclass
class LintReport:
    root: str
    modules: int
    rule_ids: List[str]
    findings: List[Finding]  # active (non-baselined) findings — these gate
    suppressed: List[Finding] = field(default_factory=list)
    stale_entries: List[BaselineEntry] = field(default_factory=list)
    package_edges: List = field(default_factory=list)
    baseline_path: Optional[str] = None
    analyzed: int = 0  # modules run through the per-module phase this call
    reused: int = 0  # modules replayed from the incremental cache
    strict_baseline: bool = False
    # (path, line, rule) -> rendered call-chain lines, for --explain.
    explanations: Dict[Tuple[str, int, str], List[str]] = field(
        default_factory=dict
    )
    # The whole-program context (symbol table + call graph), for --graph
    # and --explain; deliberately absent from to_dict().
    context: Optional[ProjectContext] = None

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        if self.findings:
            return 1
        if self.strict_baseline and self.stale_entries:
            return 1
        return 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "modules": self.modules,
            "analyzed_modules": self.analyzed,
            "reused_modules": self.reused,
            "rules": self.rule_ids,
            "clean": self.clean,
            "strict_baseline": self.strict_baseline,
            "findings": [
                dict(f.to_dict(), suppressed=False) for f in self.findings
            ],
            "suppressed": [
                dict(f.to_dict(), suppressed=True) for f in self.suppressed
            ],
            "stale_baseline_entries": [
                e.to_dict() for e in self.stale_entries
            ],
            "package_edges": [list(edge) for edge in self.package_edges],
            "baseline": self.baseline_path,
        }

    def render_text(self) -> str:
        lines = [
            f"repro lint: {self.modules} modules, "
            f"{len(self.rule_ids)} rules + import contract"
        ]
        if self.reused:
            lines.append(
                f"incremental: analyzed {self.analyzed} module(s), "
                f"replayed {self.reused} from cache"
            )
        for finding in self.findings:
            lines.append("  " + finding.render())
        if self.findings:
            lines.append(f"{len(self.findings)} finding(s)")
        else:
            lines.append("clean")
        if self.suppressed:
            lines.append(
                f"{len(self.suppressed)} finding(s) suppressed by baseline "
                f"({self.baseline_path})"
            )
        for entry in self.stale_entries:
            lines.append(
                f"stale baseline entry (no longer matches anything): "
                f"[{entry.rule}] {entry.path} — {entry.reason}"
            )
        if self.strict_baseline and not self.findings and self.stale_entries:
            lines.append(
                f"strict baseline: {len(self.stale_entries)} stale "
                "entr(ies) fail the run — prune them from the baseline"
            )
        return "\n".join(lines)

    def render_explanations(self, rule_id: str) -> str:
        """Call-chain explanations for every finding of ``rule_id``."""
        blocks: List[str] = []
        for finding in list(self.findings) + list(self.suppressed):
            if finding.rule != rule_id:
                continue
            chain = self.explanations.get(
                (finding.path, finding.line, finding.rule)
            )
            blocks.append(finding.render())
            if chain:
                blocks.extend("    " + line for line in chain)
            else:
                blocks.append("    (no recorded call chain for this finding)")
        if not blocks:
            return f"no findings for rule {rule_id!r}"
        return "\n".join(blocks)


def _analyze_one(payload: Tuple[str, str, Optional[Tuple[str, ...]]]) -> dict:
    """Per-module phase for one file; top-level so it pickles to workers."""
    root_str, relpath, module_rule_ids = payload
    path = Path(root_str) / relpath
    source = path.read_text(encoding="utf-8")
    digest = source_hash(source)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            path=relpath,
            line=exc.lineno or 1,
            rule="syntax-error",
            message=f"module does not parse: {exc.msg}",
        )
        return {
            "relpath": relpath,
            "digest": digest,
            "findings": [finding.to_dict()],
            "summary": None,
            "raw_imports": [],
        }
    context = ModuleContext(
        path=path, relpath=relpath, tree=tree, source=source
    )
    engine = AnalysisEngine(
        rules=list(module_rule_ids) if module_rule_ids is not None else None
    )
    findings = engine.analyze_module(context)
    summary = summarize_module(relpath, tree, source)
    return {
        "relpath": relpath,
        "digest": digest,
        "findings": [f.to_dict() for f in findings],
        "summary": summary.to_dict(),
        "raw_imports": extract_intra_imports(relpath, tree),
    }


def run_analysis(
    root: Optional[Path] = None,
    *,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Path] = None,
    contracts: bool = True,
    changed: bool = False,
    jobs: int = 1,
    cache_path: Optional[Path] = None,
    strict_baseline: bool = False,
) -> LintReport:
    """Run the full static-analysis pass over ``root``.

    ``baseline=None`` auto-discovers ``lint-baseline.json`` near the
    root; pass a path to force one, or a path to a missing file to
    disable.  ``changed=True`` replays clean modules from the
    incremental cache (written to ``cache_path`` every run, defaulting
    to ``.lint-cache.json`` beside the baseline).  ``jobs>1`` fans the
    per-module phase across worker processes.  ``strict_baseline=True``
    makes stale suppression entries fail the run.
    """
    root = (root or default_root()).resolve()
    if not root.is_dir():
        raise FileNotFoundError(f"analysis root {root} is not a directory")
    module_rule_ids, project_rule_ids = split_rule_ids(rules)

    files = sorted(root.rglob("*.py"))
    digests = {
        path.relative_to(root).as_posix(): hashlib.sha256(
            path.read_bytes()
        ).hexdigest()
        for path in files
    }

    # Cache identity covers the per-module catalogue: syntactic + CFG
    # rules.  Project rules replay from summaries, so they do not key it.
    cache_rule_ids = (
        module_rule_ids
        if module_rule_ids is not None
        else [spec.rule_id for spec in all_rules()]
    )
    if cache_path is None:
        cache_path = default_cache_path(root)
    cache = AnalysisCache.load(cache_path, cache_rule_ids)

    if changed and cache.records:
        to_analyze = sorted(cache.dirty_closure(digests))
    else:
        to_analyze = sorted(digests)
    cache.prune(digests)

    rule_ids_arg = (
        tuple(module_rule_ids) if module_rule_ids is not None else None
    )
    payloads = [(str(root), relpath, rule_ids_arg) for relpath in to_analyze]
    if jobs > 1 and len(payloads) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_analyze_one, payloads, chunksize=8))
    else:
        results = [_analyze_one(payload) for payload in payloads]

    for result in results:
        cache.records[result["relpath"]] = ModuleRecord(
            digest=result["digest"],
            findings=result["findings"],
            summary=result["summary"],
            raw_imports=result["raw_imports"],
        )
    cache.save()

    findings: List[Finding] = []
    summaries: List[ModuleSummary] = []
    modules = 0
    for relpath in sorted(digests):
        record = cache.records.get(relpath)
        if record is None:  # unreadable mid-run; treat as absent
            continue
        findings.extend(Finding.from_dict(f) for f in record.findings)
        if record.summary is not None:
            summaries.append(ModuleSummary.from_dict(record.summary))
            modules += 1

    package_edges: List = []
    if contracts:
        analyzer = ImportGraphAnalyzer()
        for relpath in sorted(digests):
            record = cache.records.get(relpath)
            if record is not None and record.summary is not None:
                analyzer.add_raw_imports(relpath, record.raw_imports)
        findings.extend(analyzer.check())
        package_edges = analyzer.package_edges()

    # Global phase: whole-program rules over the union of summaries.
    context = build_project_context(summaries)
    if project_rule_ids is None or project_rule_ids:
        findings.extend(run_project_rules(context, project_rule_ids))
    findings = sorted(findings)

    baseline_path = baseline if baseline is not None else find_baseline(root)
    suppressed: List[Finding] = []
    stale: List[BaselineEntry] = []
    if baseline_path is not None and Path(baseline_path).is_file():
        loaded = Baseline.load(Path(baseline_path))
        findings, suppressed, stale = loaded.apply(findings)
    else:
        baseline_path = None

    if rules is None:
        rule_ids = [spec.rule_id for spec in all_rules()] + [
            spec.rule_id for spec in all_project_rules()
        ]
    else:
        rule_ids = list(rules)
    return LintReport(
        root=str(root),
        modules=modules,
        rule_ids=rule_ids,
        findings=findings,
        suppressed=suppressed,
        stale_entries=stale,
        package_edges=package_edges,
        baseline_path=str(baseline_path) if baseline_path else None,
        analyzed=len(results),
        reused=len(digests) - len(results),
        strict_baseline=strict_baseline,
        explanations=context.explanations,
        context=context,
    )
