"""One entry point that the CLI, the tier-1 gate and the bench all share.

``run_analysis`` walks the tree once, runs every AST rule plus the
import-graph contract, applies the baseline, and returns a
:class:`LintReport` that renders as reviewer-readable text or as the
stable ``--json`` shape consumed by CI tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.contracts import ImportGraphAnalyzer
from repro.analysis.engine import AnalysisEngine, Finding, all_rules

__all__ = ["LintReport", "default_root", "find_baseline", "run_analysis"]


def default_root() -> Path:
    """The installed ``repro`` package — what ``repro lint`` checks by default."""
    import repro

    return Path(repro.__file__).resolve().parent


def find_baseline(root: Path) -> Optional[Path]:
    """Look for ``lint-baseline.json`` beside the tree and up to the repo root."""
    for candidate in (root, *root.parents[:3]):
        path = candidate / "lint-baseline.json"
        if path.is_file():
            return path
    return None


@dataclass
class LintReport:
    root: str
    modules: int
    rule_ids: List[str]
    findings: List[Finding]  # active (non-baselined) findings — these gate
    suppressed: List[Finding] = field(default_factory=list)
    stale_entries: List[BaselineEntry] = field(default_factory=list)
    package_edges: List = field(default_factory=list)
    baseline_path: Optional[str] = None

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "modules": self.modules,
            "rules": self.rule_ids,
            "clean": self.clean,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "stale_baseline_entries": [
                e.to_dict() for e in self.stale_entries
            ],
            "package_edges": [list(edge) for edge in self.package_edges],
            "baseline": self.baseline_path,
        }

    def render_text(self) -> str:
        lines = [
            f"repro lint: {self.modules} modules, "
            f"{len(self.rule_ids)} rules + import contract"
        ]
        for finding in self.findings:
            lines.append("  " + finding.render())
        if self.findings:
            lines.append(f"{len(self.findings)} finding(s)")
        else:
            lines.append("clean")
        if self.suppressed:
            lines.append(
                f"{len(self.suppressed)} finding(s) suppressed by baseline "
                f"({self.baseline_path})"
            )
        for entry in self.stale_entries:
            lines.append(
                f"stale baseline entry (no longer matches anything): "
                f"[{entry.rule}] {entry.path} — {entry.reason}"
            )
        return "\n".join(lines)


def run_analysis(
    root: Optional[Path] = None,
    *,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Path] = None,
    contracts: bool = True,
) -> LintReport:
    """Run the full static-analysis pass over ``root``.

    ``baseline=None`` auto-discovers ``lint-baseline.json`` near the root;
    pass a path to force one, or a path to a missing file to disable.
    """
    root = (root or default_root()).resolve()
    if not root.is_dir():
        raise FileNotFoundError(f"analysis root {root} is not a directory")

    engine = AnalysisEngine(rules=rules)
    findings, modules = engine.analyze_tree(root)

    package_edges: List = []
    if contracts:
        analyzer = ImportGraphAnalyzer()
        analyzer.add_tree(root)
        findings = sorted(findings + analyzer.check())
        package_edges = analyzer.package_edges()

    baseline_path = baseline if baseline is not None else find_baseline(root)
    suppressed: List[Finding] = []
    stale: List[BaselineEntry] = []
    if baseline_path is not None and Path(baseline_path).is_file():
        loaded = Baseline.load(Path(baseline_path))
        findings, suppressed, stale = loaded.apply(findings)
    else:
        baseline_path = None

    return LintReport(
        root=str(root),
        modules=modules,
        rule_ids=[spec.rule_id for spec in all_rules()]
        if rules is None
        else list(rules),
        findings=findings,
        suppressed=suppressed,
        stale_entries=stale,
        package_edges=package_edges,
        baseline_path=str(baseline_path) if baseline_path else None,
    )
