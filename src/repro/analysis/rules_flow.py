"""Flow-aware and whole-program rules: what single-module syntax misses.

Two kinds of probe live here.  The CFG rules (``span-leak``,
``unreachable-code``) are per-module like everything in
:mod:`repro.analysis.rules`, but reason over the control-flow graphs
and def-use chains built by :mod:`repro.analysis.flow` instead of raw
syntax.  The *project* rules (``wallclock-taint``, ``rng-taint``,
``off-lock-mutation``) run once over the whole tree: they get a
:class:`ProjectContext` holding the symbol table and call graph, and
catch violations that cross module boundaries — a pure-compute function
reaching ``time.time`` through two layers of helpers, or a cluster
helper mutating a lock-guarded node field without the lock.

Project rules register through :func:`project_rule`, a sibling of the
per-module :func:`repro.analysis.engine.rule` decorator; the runner and
CLI treat both registries as one catalogue.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    build_call_graph,
    external_name,
    is_external,
)
from repro.analysis.contracts import (
    CROSS_PROCESS_PACKAGES,
    PURE_PACKAGES,
    RNG_TAINT_PACKAGES,
    SERVING_PATH_PACKAGES,
    WALLCLOCK_TAINT_PACKAGES,
)
from repro.analysis.engine import Finding, ModuleContext, rule
from repro.analysis.flow import build_cfg, def_use_chains
from repro.analysis.rules import _NP_RANDOM_OK, _RANDOM_OK, _import_aliases
from repro.analysis.symbols import ModuleSummary, SymbolTable

__all__ = [
    "ProjectContext",
    "ProjectRuleSpec",
    "all_project_rules",
    "build_project_context",
    "get_project_rule",
    "project_rule",
]


# -- CFG rules (per module) --------------------------------------------------

_FINISH_ATTRS = frozenset({"end", "finish", "close"})


def _chain_base(node: ast.AST) -> ast.AST:
    """Unwrap ``v.record_error(e).end()`` to the receiver ``v``."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Await):
            node = node.value
        else:
            return node


def _span_defs(fn: ast.AST) -> List[Tuple[str, ast.Assign]]:
    """``v = <recv>.start_*(...)`` assignments directly in this function."""
    defs = []
    for stmt in ast.walk(fn):
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr.startswith("start_")
        ):
            defs.append((stmt.targets[0].id, stmt))
    return defs


def _escapes(fn: ast.AST, name: str, def_stmt: ast.stmt) -> bool:
    """True when ``name`` leaves the function's hands: stored, passed,
    returned, yielded, or captured by a nested def/lambda — ownership
    (and the duty to finish the span) transfers with it."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            if node is fn:
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and sub.id == name:
                    return True  # closure capture
        elif isinstance(node, ast.Call):
            for arg in node.args:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        # receiver position (`v.end()`) is not an escape;
                        # argument position (`collect(v)`) is
                        return True
            for kw in node.keywords:
                for sub in ast.walk(kw.value):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None:
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
        elif isinstance(node, ast.Assign) and node is not def_stmt:
            if any(
                isinstance(sub, ast.Name) and sub.id == name
                for target in node.targets
                for sub in ast.walk(target)
                if not isinstance(sub, ast.Name) or isinstance(sub.ctx, ast.Load)
            ):
                pass
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name) and sub.id == name:
                    return True  # aliased / stored into a structure
    return False


def _stmt_finishes(stmt: ast.stmt, name: str) -> bool:
    """Does this statement end the span ``name`` (call or ``with``)?"""
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _FINISH_ATTRS
        ):
            base = _chain_base(node.func.value)
            if isinstance(base, ast.Name) and base.id == name:
                return True
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return True
    return False


@rule("span-leak")
def span_leak(module: ModuleContext) -> Iterator[Tuple[int, str]]:
    """A started span must be ended on every path (or handed off).

    ``v = tracer.start_span(...)`` opens an interval that only
    ``v.end()`` / ``v.finish()`` / ``with v:`` closes; a code path from
    the definition to the function exit that skips all of them leaves
    the span open forever — the collector never assembles its trace and
    ``tracer.active_spans`` grows without bound.  Spans that escape the
    function (returned, stored, passed to another call, captured by a
    closure) transfer ownership and are not flagged; this probe is
    strictly about locals the function provably abandons.
    """
    for fn in module.walk(ast.FunctionDef, ast.AsyncFunctionDef):
        defs = _span_defs(fn)
        if not defs:
            continue
        cfg = build_cfg(fn)
        stmt_block: Dict[int, int] = {}
        for block in cfg.iter_blocks():
            for stmt in block.stmts:
                stmt_block[id(stmt)] = block.block_id
        for name, def_stmt in defs:
            if id(def_stmt) not in stmt_block:
                continue  # defined inside a nested function
            if _escapes(fn, name, def_stmt):
                continue
            def_block = stmt_block[id(def_stmt)]
            finish_blocks = set()
            for block in cfg.iter_blocks():
                if any(_stmt_finishes(s, name) for s in block.stmts):
                    finish_blocks.add(block.block_id)
            if def_block in finish_blocks:
                continue  # ended in the same straight-line run
            if cfg.path_avoiding(
                def_block, cfg.exit_id, frozenset(finish_blocks)
            ):
                yield def_stmt.lineno, (
                    f"span {name!r} started here can reach the end of "
                    f"{fn.name}() without being ended — close it on every "
                    "path or use `with`"
                )


@rule("unreachable-code")
def unreachable_code(module: ModuleContext) -> Iterator[Tuple[int, str]]:
    """Statements no path can execute are dead weight or a logic slip.

    The classic offender in this tree is code placed after a typed-503
    ``raise`` (the cluster's load-shedding paths) or after an early
    ``return`` added during a refactor.  Detection is CFG reachability,
    so branches that *conditionally* raise are handled correctly — only
    blocks with no route from the function entry are flagged.
    """
    for fn in module.walk(ast.FunctionDef, ast.AsyncFunctionDef):
        cfg = build_cfg(fn)
        reachable = cfg.reachable_from_entry()
        for block in cfg.iter_blocks():
            if block.block_id in reachable or not block.stmts:
                continue
            first = block.stmts[0]
            yield first.lineno, (
                f"unreachable code in {fn.name}() — no path reaches this "
                "statement (dead code after raise/return?)"
            )


# -- cross-process payload hygiene (per module) ------------------------------

#: ``recv.put(...)`` / ``recv.put_nowait(...)`` pickles its payload when
#: ``recv`` is a multiprocessing queue; executor-style submits pickle
#: every argument.  Receiver queue-ness is decided by name (any dotted
#: component containing "queue") or by a local ``Queue()`` construction.
_QUEUE_PUT_ATTRS = frozenset({"put", "put_nowait"})
_EXECUTOR_SUBMIT_ATTRS = frozenset(
    {"submit", "apply", "apply_async", "map_async", "starmap_async"}
)
_QUEUE_CTOR_NAMES = frozenset({"Queue", "SimpleQueue", "JoinableQueue"})

#: Calls whose result is a bulk binary payload: serialised arrays,
#: pickles, packed structs.  Any of these inside a cross-process send
#: means the hot path is copying data the arena should carry.
_PICKLED_PRODUCERS = frozenset(
    {
        "tobytes",
        "tostring",
        "dumps",
        "asarray",
        "ascontiguousarray",
        "frombuffer",
        "fromstring",
        "pack",
    }
)
_ARRAYISH_ANNOTATIONS = frozenset(
    {"ndarray", "bytes", "bytearray", "memoryview"}
)


def _receiver_parts(node: ast.AST) -> List[str]:
    """Identifier components of a call receiver, outermost first.

    ``self._task_queues[worker_id]`` -> ``["self", "_task_queues"]``;
    subscripts and chained calls are unwrapped so the queue-ness of the
    *container* name decides.
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return parts[::-1]
        else:
            return parts[::-1]


def _annotation_names(annotation: Optional[ast.AST]) -> Set[str]:
    if annotation is None:
        return set()
    names: Set[str] = set()
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            names.update(sub.value.replace(".", " ").split())
    return names


def _call_terminal(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _arrayish_names(module: ModuleContext) -> Set[str]:
    """Names bound to ndarray/bytes-like values anywhere in the module.

    Module-wide (not per scope) on purpose: the rule gates a repo where
    queue payloads are small index tuples, so a name that is an array in
    *any* function is suspicious in a cross-process send in all of them.
    """
    numpy_names = _import_aliases(module).get("numpy", set())
    arrayish: Set[str] = set()

    def producer(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        terminal = _call_terminal(value.func)
        if terminal in _PICKLED_PRODUCERS:
            return True
        base = _receiver_parts(value.func)
        return bool(base) and base[0] in numpy_names

    for node in module.walk(ast.Assign):
        if producer(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    arrayish.add(target.id)
    for node in module.walk(ast.AnnAssign):
        if isinstance(node.target, ast.Name) and (
            _annotation_names(node.annotation) & _ARRAYISH_ANNOTATIONS
            or (node.value is not None and producer(node.value))
        ):
            arrayish.add(node.target.id)
    for fn in module.walk(ast.FunctionDef, ast.AsyncFunctionDef):
        args = fn.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + [args.vararg, args.kwarg]
        ):
            if arg is not None and (
                _annotation_names(arg.annotation) & _ARRAYISH_ANNOTATIONS
            ):
                arrayish.add(arg.arg)
    return arrayish


def _queue_ctor_names_bound(module: ModuleContext) -> Set[str]:
    bound: Set[str] = set()
    for node in module.walk(ast.Assign):
        if (
            isinstance(node.value, ast.Call)
            and _call_terminal(node.value.func) in _QUEUE_CTOR_NAMES
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    return bound


def _payload_evidence(arg: ast.AST, arrayish: Set[str]) -> Optional[str]:
    """Why this argument pickles a bulk payload, or None if it is clean."""
    for sub in ast.walk(arg):
        if isinstance(sub, ast.Constant) and isinstance(
            sub.value, (bytes, bytearray)
        ):
            return "a bytes literal"
        if isinstance(sub, ast.Call):
            terminal = _call_terminal(sub.func)
            if terminal in _PICKLED_PRODUCERS:
                return f"{terminal}(...)"
        if isinstance(sub, ast.Name) and sub.id in arrayish:
            return f"array/bytes value {sub.id!r}"
    return None


@rule("cross-process-pickle")
def cross_process_pickle(module: ModuleContext) -> Iterator[Tuple[int, str]]:
    """Cross-process sends must carry slot indices, not pickled arrays.

    The kernel pool's contract (DESIGN.md §16) is that ndarray payloads
    cross the process boundary exactly once, through the shared-memory
    arena; the queues only ever carry tiny ``(slot, seq, kind)`` control
    tuples.  A ``queue.put`` whose payload serialises an array — or an
    executor-style ``submit``/``apply_async`` handed an ndarray — puts
    per-batch pickling back on the hot path, which is precisely the
    copy tax the arena removes.  Scope is the pool package plus the
    serving-path packages that drive it; in-process stores like the
    explanation cache (``self.cache.put``) are not queues and pass.
    """
    if module.package not in CROSS_PROCESS_PACKAGES:
        return
    arrayish = _arrayish_names(module)
    queue_bound = _queue_ctor_names_bound(module)
    for node in module.walk(ast.Call):
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        args = list(node.args) + [kw.value for kw in node.keywords]
        if func.attr in _QUEUE_PUT_ATTRS:
            parts = _receiver_parts(func.value)
            queue_like = any("queue" in part.lower() for part in parts) or (
                bool(parts) and parts[0] in queue_bound
            )
            if not queue_like:
                continue
            channel = "multiprocessing queue"
        elif func.attr in _EXECUTOR_SUBMIT_ATTRS:
            parts = _receiver_parts(func.value)
            if parts[:1] in (["self"], ["cls"]):
                # a class dispatching through its own submit() stays
                # in-process until *its* implementation crosses — and
                # that crossing is what the queue-put arm checks
                continue
            channel = f"executor {func.attr}()"
        else:
            continue
        for arg in args:
            evidence = _payload_evidence(arg, arrayish)
            if evidence is not None:
                yield node.lineno, (
                    f"{evidence} pickled into a {channel} — cross-process "
                    "payloads must travel through the shared-memory arena; "
                    "send only slot/seq control tuples"
                )
                break


# -- project rules (whole program) -------------------------------------------


@dataclass
class ProjectContext:
    """Everything a whole-program rule can see, built once per run."""

    table: SymbolTable
    graph: CallGraph
    # (path, line, rule) -> rendered call-chain lines for --explain.
    explanations: Dict[Tuple[str, int, str], List[str]] = field(
        default_factory=dict
    )


ProjectRuleFunc = Callable[[ProjectContext], Iterable[Finding]]


@dataclass(frozen=True)
class ProjectRuleSpec:
    rule_id: str
    severity: str
    description: str
    func: ProjectRuleFunc


_PROJECT_REGISTRY: Dict[str, ProjectRuleSpec] = {}


def project_rule(
    rule_id: str, *, severity: str = "error"
) -> Callable[[ProjectRuleFunc], ProjectRuleFunc]:
    """Register a whole-program rule (the cross-module sibling of ``rule``)."""

    if severity not in ("error", "warning"):
        raise ValueError(f"severity must be error|warning, got {severity!r}")

    def register(func: ProjectRuleFunc) -> ProjectRuleFunc:
        if rule_id in _PROJECT_REGISTRY:
            raise ValueError(f"duplicate project rule id {rule_id!r}")
        description = (func.__doc__ or rule_id).strip().splitlines()[0]
        _PROJECT_REGISTRY[rule_id] = ProjectRuleSpec(
            rule_id, severity, description, func
        )
        return func

    return register


def all_project_rules() -> List[ProjectRuleSpec]:
    return sorted(_PROJECT_REGISTRY.values(), key=lambda spec: spec.rule_id)


def get_project_rule(rule_id: str) -> ProjectRuleSpec:
    try:
        return _PROJECT_REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_PROJECT_REGISTRY))
        raise KeyError(
            f"unknown project rule {rule_id!r}; known: {known}"
        ) from None


def build_project_context(summaries: Iterable[ModuleSummary]) -> ProjectContext:
    table = SymbolTable(list(summaries))
    return ProjectContext(table=table, graph=build_call_graph(table))


def run_project_rules(
    context: ProjectContext, rule_ids: Optional[Iterable[str]] = None
) -> List[Finding]:
    specs = (
        all_project_rules()
        if rule_ids is None
        else [get_project_rule(rule_id) for rule_id in rule_ids]
    )
    findings: List[Finding] = []
    for spec in specs:
        findings.extend(spec.func(context))
    return sorted(findings)


_WALLCLOCK_SINKS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _is_wallclock_sink(node: str, nargs: int) -> bool:
    return is_external(node) and external_name(node) in _WALLCLOCK_SINKS


def _is_rng_sink(node: str, nargs: int) -> bool:
    if not is_external(node):
        return False
    name = external_name(node)
    if name.startswith("random."):
        attr = name[len("random.") :]
        if attr in _RANDOM_OK:
            return attr == "Random" and nargs == 0
        return "." not in attr
    if name.startswith("numpy.random."):
        attr = name[len("numpy.random.") :]
        if attr in _NP_RANDOM_OK:
            return attr == "default_rng" and nargs == 0
        return "." not in attr
    return False


def _taint_findings(
    context: ProjectContext,
    rule_id: str,
    scope: frozenset,
    sink: Callable[[str, int], bool],
    sink_kind: str,
    remedy: str,
) -> Iterator[Finding]:
    """Shared frontier-reporting logic for the taint family.

    A finding lands on the *last* in-scope function before the chain
    leaves the scoped packages: intermediate in-scope callers are
    suppressed (fixing the frontier fixes them all), and distance-1
    direct calls are left to the syntactic layer (wallclock-in-compute,
    unseeded-rng, tracing-clock-injection), which already reports them
    with per-module precision.
    """
    graph = context.graph
    tainted = graph.taint_from_sinks(sink)
    for node in sorted(tainted):
        module_name, _, qualname = node.partition("::")
        summary = context.table.modules.get(module_name)
        if summary is None or summary.package not in scope:
            continue
        succ, lineno = tainted[node]
        if is_external(succ):
            continue  # direct call: the syntactic rules own this report
        chain = graph.chain(node, tainted)
        intermediate_in_scope = False
        for step_node, _step_line in chain[1:]:
            if is_external(step_node):
                continue
            step_module = step_node.partition("::")[0]
            step_summary = context.table.modules.get(step_module)
            if step_summary is not None and step_summary.package in scope:
                intermediate_in_scope = True
                break
        if intermediate_in_scope:
            continue
        sink_name = external_name(chain[-1][0]) if chain else sink_kind
        hops = " -> ".join(
            external_name(step) if is_external(step) else step.split("::", 1)[1]
            for step, _line in chain
        )
        finding = Finding(
            path=summary.relpath,
            line=lineno,
            rule=rule_id,
            message=(
                f"{qualname} transitively reaches {sink_kind} sink "
                f"{sink_name} via {hops} — {remedy}"
            ),
        )
        context.explanations[(summary.relpath, lineno, rule_id)] = (
            graph.render_chain(chain)
        )
        yield finding


@project_rule("wallclock-taint")
def wallclock_taint(context: ProjectContext) -> Iterator[Finding]:
    """Pure/clock-injected code must not reach wall time through helpers.

    The syntactic ``wallclock-in-compute`` rule sees one module at a
    time, so ``ml`` code calling a gateway/telemetry helper that reads
    ``time.time()`` two hops away passes it silently.  This rule walks
    the whole-program call graph: any function in a pure or
    clock-injected package with a transitive path to a wall-clock sink
    is flagged at the call that starts the chain, and ``--explain
    wallclock-taint`` renders the full route.
    """
    yield from _taint_findings(
        context,
        "wallclock-taint",
        WALLCLOCK_TAINT_PACKAGES,
        _is_wallclock_sink,
        "wall-clock",
        "thread the injected clock through this call chain",
    )


@project_rule("rng-taint")
def rng_taint(context: ProjectContext) -> Iterator[Finding]:
    """Deterministic packages must not reach global RNG state through helpers.

    ``unseeded-rng`` flags direct draws from the process-wide generators
    tree-wide, but a baselined or out-of-scope helper can still leak
    nondeterminism into the seeded layers (ml/xai/gateway/cluster/…)
    through a call chain.  Any function in a deterministic package that
    transitively reaches ``random.*`` / legacy ``np.random.*`` / a
    seedless ``default_rng()`` is flagged with its chain.
    """
    yield from _taint_findings(
        context,
        "rng-taint",
        RNG_TAINT_PACKAGES,
        _is_rng_sink,
        "global-RNG",
        "inject a seeded generator through this call chain",
    )


@project_rule("off-lock-mutation")
def off_lock_mutation(context: ProjectContext) -> Iterator[Finding]:
    """A lock-guarded field must stay guarded across module boundaries.

    The per-module ``lock-discipline`` rule checks a class against
    itself; this extension follows the symbol table: any function —
    anywhere in the tree — that mutates ``obj.field`` on a receiver
    whose annotated/inferred type guards ``field`` with a lock must do
    so inside ``with obj.<lock>:``.  The classic miss is a helper
    module reaching into a node object it was handed.
    """
    table = context.table
    for summary, func in table.iter_functions():
        for write in func.param_writes:
            if write.param.startswith("self."):
                cls_name = func.qualname.split(".", 1)[0]
                owner_cls = summary.classes.get(cls_name)
                if owner_cls is None:
                    continue
                type_text = owner_cls.attr_types.get(
                    write.param[len("self.") :]
                )
            else:
                type_text = func.var_types.get(write.param)
            found = table.find_class(summary, type_text) if type_text else None
            if found is None:
                continue
            cls_module, cls = found
            if not cls.lock_attrs or write.attr not in cls.guarded_attrs:
                continue
            if set(write.held) & set(cls.lock_attrs):
                continue
            lock = cls.lock_attrs[0]
            yield Finding(
                path=summary.relpath,
                line=write.lineno,
                rule="off-lock-mutation",
                message=(
                    f"{cls.name}.{write.attr} is written under "
                    f"{cls.name}.{lock} in {cls_module} but mutated here "
                    f"via {write.param!r} without holding it — wrap the "
                    f"write in `with {write.param}.{lock}:`"
                ),
            )


#: In-tree kernel entry points whose per-request use the serving layer
#: exists to amortise.  Terminal names containing "batch" are the fused
#: endpoints and never count as per-request sinks.
_KERNEL_CALL_NAMES = frozenset(
    {"predict", "predict_proba", "decision_function", "shap_values"}
)
_KERNEL_PACKAGES = frozenset({"ml", "xai"})


def _kernel_sink(table: SymbolTable) -> Callable[[str, int], bool]:
    """Predicate: is this resolved callee a per-request ml/xai kernel?"""

    def predicate(node: str, nargs: int) -> bool:
        if is_external(node):
            return False
        module_name, _, qualname = node.partition("::")
        summary = table.modules.get(module_name)
        if summary is None or summary.package not in _KERNEL_PACKAGES:
            return False
        return qualname.rsplit(".", 1)[-1] in _KERNEL_CALL_NAMES

    return predicate


@project_rule("unbatched-kernel-call")
def unbatched_kernel_call(context: ProjectContext) -> Iterator[Finding]:
    """Serving-path loops must not issue per-request kernel calls.

    The whole point of ``repro.serving`` (DESIGN.md §15) is that queued
    requests coalesce into *one* fused ``predict`` / SHAP call, so a
    loop on the serving path (``serving``/``gateway``/``cluster``) whose
    body reaches an ml/xai kernel — directly or through helpers — is
    dispatching per request again, exactly the regression the batcher
    removed.  The sanctioned shape is a loop over *flushed batches*
    (one fused kernel call per iteration): a loop edge whose callee's
    terminal name contains ``batch`` is therefore exempt, as are the
    kernels' own internal loops (``ml``/``xai`` are out of scope).
    Reported at the loop-edge frontier like ``wallclock-taint``, with
    the full chain available via ``--explain``.
    """
    graph = context.graph
    table = context.table
    sink = _kernel_sink(table)
    tainted = graph.taint_from_sinks(sink)
    for (caller, callee), lineno in sorted(graph.loop_edges.items()):
        module_name, _, qualname = caller.partition("::")
        summary = table.modules.get(module_name)
        if summary is None or summary.package not in SERVING_PATH_PACKAGES:
            continue
        if is_external(callee):
            continue
        callee_terminal = callee.partition("::")[2].rsplit(".", 1)[-1]
        if "batch" in callee_terminal:
            continue  # loop over flushed batches: the coalescing endpoint
        edge = graph.edges.get(caller, {}).get(callee)
        nargs = edge[1] if edge is not None else 0
        if sink(callee, nargs):
            chain = [(caller, lineno), (callee, 0)]
        elif callee in tainted:
            chain = [(caller, lineno)] + graph.chain(callee, tainted)
        else:
            continue
        kernel = chain[-1][0].partition("::")[2]
        hops = " -> ".join(
            external_name(step) if is_external(step) else step.split("::", 1)[1]
            for step, _line in chain
        )
        finding = Finding(
            path=summary.relpath,
            line=lineno,
            rule="unbatched-kernel-call",
            message=(
                f"{qualname} calls a per-request kernel inside a loop "
                f"({hops} reaches {kernel}) — coalesce the loop through "
                f"repro.serving's micro-batcher into one fused "
                f"predict/shap_values_batch call"
            ),
        )
        context.explanations[
            (summary.relpath, lineno, "unbatched-kernel-call")
        ] = graph.render_chain(chain)
        yield finding
