"""Project symbol table: what every module defines, imports and calls.

The per-module rules in :mod:`repro.analysis.rules` see one tree at a
time; the whole-program passes (call graph, taint, cross-method lock
checks) need a *summary* of every module that is cheap to build, cheap
to serialize, and sufficient to resolve names across module boundaries.
:func:`summarize_module` extracts exactly that — definitions, import
aliases, call sites as dotted name chains, inferred receiver types for
the common ``self.attr`` / annotated-parameter cases — and
:class:`SymbolTable` indexes the summaries so
:mod:`repro.analysis.callgraph` can resolve a chain like
``("self", "tracer", "start_span")`` to ``tracing.tracer:Tracer.start_span``.

Summaries round-trip through plain dicts (``to_dict``/``from_dict``)
because the incremental cache stores them as JSON: a warm ``--changed``
run rebuilds the whole-program layer from cached summaries without
re-parsing clean modules.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleSummary",
    "ParamWrite",
    "SymbolTable",
    "module_name",
    "source_hash",
    "summarize_module",
]

#: Pseudo-qualname for statements executed at module import time.
MODULE_BODY = "<module>"

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})


def module_name(relpath: str) -> str:
    """``ml/model.py`` -> ``ml.model``; ``ml/__init__.py`` -> ``ml``."""
    parts = list(Path(relpath).parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts) if parts else "<root>"


def source_hash(source: str) -> str:
    """Content hash keying the incremental cache (stable across runs)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CallSite:
    """One call expressed as a dotted name chain, e.g. ``("np", "random", "rand")``.

    ``self``-rooted chains keep the literal ``"self"`` head; receiver
    resolution happens later against the enclosing class.  ``nargs``
    counts positional + keyword arguments so sink predicates can tell a
    seeded ``Random(0)`` from a seedless ``Random()``.  ``in_loop``
    marks calls issued from a repeated position (``for``/``while``
    bodies, comprehension elements) — the signal the
    ``unbatched-kernel-call`` rule uses to spot per-request kernel
    dispatch on the serving path.
    """

    chain: Tuple[str, ...]
    lineno: int
    nargs: int
    in_loop: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "chain": list(self.chain),
            "lineno": self.lineno,
            "nargs": self.nargs,
            "in_loop": self.in_loop,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "CallSite":
        return cls(
            tuple(raw["chain"]),
            int(raw["lineno"]),
            int(raw["nargs"]),
            bool(raw.get("in_loop", False)),
        )


@dataclass(frozen=True)
class ParamWrite:
    """A mutation ``param.attr = …`` with the ``with param.X:`` locks held."""

    param: str
    attr: str
    lineno: int
    held: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "param": self.param,
            "attr": self.attr,
            "lineno": self.lineno,
            "held": list(self.held),
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "ParamWrite":
        return cls(
            str(raw["param"]), str(raw["attr"]), int(raw["lineno"]), tuple(raw["held"])
        )


@dataclass
class FunctionInfo:
    """One function or method: where it is, what it calls, what it knows."""

    qualname: str  # "f", "Cls.meth", or MODULE_BODY
    lineno: int
    calls: List[CallSite] = field(default_factory=list)
    var_types: Dict[str, str] = field(default_factory=dict)  # name -> type text
    param_writes: List[ParamWrite] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "calls": [c.to_dict() for c in self.calls],
            "var_types": dict(self.var_types),
            "param_writes": [w.to_dict() for w in self.param_writes],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "FunctionInfo":
        return cls(
            qualname=str(raw["qualname"]),
            lineno=int(raw["lineno"]),
            calls=[CallSite.from_dict(c) for c in raw["calls"]],
            var_types=dict(raw["var_types"]),
            param_writes=[ParamWrite.from_dict(w) for w in raw["param_writes"]],
        )


@dataclass
class ClassInfo:
    """One class: bases, inferred attribute types, and its lock contract."""

    name: str
    lineno: int
    bases: Tuple[str, ...] = ()
    methods: Tuple[str, ...] = ()  # method names (bodies live in functions)
    attr_types: Dict[str, str] = field(default_factory=dict)
    lock_attrs: Tuple[str, ...] = ()  # self.X = Lock() in __init__
    guarded_attrs: Tuple[str, ...] = ()  # written under `with self.<lock>`

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "attr_types": dict(self.attr_types),
            "lock_attrs": list(self.lock_attrs),
            "guarded_attrs": list(self.guarded_attrs),
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "ClassInfo":
        return cls(
            name=str(raw["name"]),
            lineno=int(raw["lineno"]),
            bases=tuple(raw["bases"]),
            methods=tuple(raw["methods"]),
            attr_types=dict(raw["attr_types"]),
            lock_attrs=tuple(raw["lock_attrs"]),
            guarded_attrs=tuple(raw["guarded_attrs"]),
        )


@dataclass
class ModuleSummary:
    """Everything the whole-program passes need to know about one module."""

    relpath: str
    module: str  # dotted, relative to the analysis root ("cluster.node")
    package: str  # first path component ("" for root modules)
    digest: str  # content hash of the source
    imports: Dict[str, str] = field(default_factory=dict)  # alias -> dotted
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    # Intra-repo imports for the layering contract and the incremental
    # reverse-dependency closure: (target module, imported names, line).
    raw_imports: List[Tuple[str, Optional[Tuple[str, ...]], int]] = field(
        default_factory=list
    )

    def to_dict(self) -> Dict[str, object]:
        return {
            "relpath": self.relpath,
            "module": self.module,
            "package": self.package,
            "digest": self.digest,
            "imports": dict(self.imports),
            "functions": {q: f.to_dict() for q, f in self.functions.items()},
            "classes": {n: c.to_dict() for n, c in self.classes.items()},
            "raw_imports": [
                [target, list(names) if names is not None else None, lineno]
                for target, names, lineno in self.raw_imports
            ],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "ModuleSummary":
        return cls(
            relpath=str(raw["relpath"]),
            module=str(raw["module"]),
            package=str(raw["package"]),
            digest=str(raw["digest"]),
            imports=dict(raw["imports"]),
            functions={
                q: FunctionInfo.from_dict(f) for q, f in raw["functions"].items()
            },
            classes={n: ClassInfo.from_dict(c) for n, c in raw["classes"].items()},
            raw_imports=[
                (target, tuple(names) if names is not None else None, lineno)
                for target, names, lineno in raw["raw_imports"]
            ],
        )


# -- extraction --------------------------------------------------------------


def _dotted_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a","b","c"); None when the base is not a plain name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _annotation_type(node: Optional[ast.AST]) -> Optional[str]:
    """Extract a usable nominal type from an annotation expression.

    Handles the receiver shapes the call graph can act on: plain names,
    dotted names, string annotations, and ``Optional[T]`` / ``T | None``
    unwrapping.  Anything else (unions of two real types, generics over
    containers) resolves to None — better no edge than a wrong edge.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        chain = _dotted_chain(node)
        return ".".join(chain) if chain else None
    if isinstance(node, ast.Subscript):
        base_chain = _dotted_chain(node.value)
        if base_chain and base_chain[-1] == "Optional":
            return _annotation_type(node.slice)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_type(node.left)
        right = _annotation_type(node.right)
        if left == "None" or left is None:
            return right if right != "None" else None
        if right == "None" or right is None:
            return left if left != "None" else None
        return None  # a real two-type union: ambiguous receiver
    return None


def _call_nargs(node: ast.Call) -> int:
    return len(node.args) + len(node.keywords)


def _is_lock_factory(call: ast.AST) -> bool:
    if not isinstance(call, ast.Call):
        return False
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    return False


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _FunctionScanner:
    """Collect call sites, local types and param mutations from one body.

    Nested ``def``/``lambda`` bodies are folded into the enclosing
    function: a closure that calls ``time.time`` taints its owner, which
    is the conservative answer the taint rules want.
    """

    def __init__(self, info: FunctionInfo, params: Sequence[str]) -> None:
        self.info = info
        self.params = set(params)
        # `with <owner>.X:` currently held, as (owner key, lock attr)
        # pairs where the owner key is "param" or "self.attr".
        self.held: List[Tuple[str, str]] = []
        # statement-loop nesting: calls scanned at depth > 0 are repeated
        self.loop_depth = 0

    def _owner_key(self, chain: Tuple[str, ...]) -> Optional[str]:
        if len(chain) == 1 and (chain[0] in self.params or chain[0] == "self"):
            return chain[0]
        if len(chain) == 2 and chain[0] == "self":
            return ".".join(chain)
        return None

    def scan_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.scan_stmt(stmt)

    def scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            newly_held: List[Tuple[str, str]] = []
            for item in stmt.items:
                self.scan_expr(item.context_expr)
                chain = _dotted_chain(item.context_expr)
                if chain and len(chain) >= 2:
                    owner = self._owner_key(chain[:-1])
                    if owner is not None:
                        newly_held.append((owner, chain[-1]))
            self.held.extend(newly_held)
            self.scan_body(stmt.body)
            del self.held[len(self.held) - len(newly_held) :]
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            # the iterable is evaluated once; target/body repeat per item
            self.scan_expr(stmt.iter)
            self.scan_expr(stmt.target)
            self.loop_depth += 1
            self.scan_body(stmt.body)
            self.loop_depth -= 1
            self.scan_body(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self.loop_depth += 1
            self.scan_expr(stmt.test)
            self.scan_body(stmt.body)
            self.loop_depth -= 1
            self.scan_body(stmt.orelse)
            return
        if isinstance(stmt, ast.AnnAssign):
            declared = _annotation_type(stmt.annotation)
            if declared and isinstance(stmt.target, ast.Name):
                self.info.var_types.setdefault(stmt.target.id, declared)
        elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            # `tracer = Tracer(clock)` types the local for receiver
            # resolution; a capitalised tail reads as a constructor.
            chain = _dotted_chain(stmt.value.func)
            if chain and chain[-1][:1].isupper():
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.info.var_types.setdefault(
                            target.id, ".".join(chain)
                        )
        for field_name, value in ast.iter_fields(stmt):
            if isinstance(value, ast.AST):
                self.scan_expr(value)
            elif isinstance(value, list):
                for element in value:
                    if isinstance(element, ast.stmt):
                        self.scan_stmt(element)
                    elif isinstance(element, ast.ExceptHandler):
                        self.scan_body(element.body)
                    elif isinstance(element, ast.AST):
                        self.scan_expr(element)

    def scan_expr(
        self, node: ast.AST, in_loop: Optional[bool] = None
    ) -> None:
        if in_loop is None:
            in_loop = self.loop_depth > 0
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            # the first iterable is evaluated once; everything else in
            # the comprehension is a repeated position
            generators = node.generators
            self.scan_expr(generators[0].iter, in_loop)
            for gen in generators[1:]:
                self.scan_expr(gen.iter, True)
            for gen in generators:
                self.scan_expr(gen.target, True)
                for cond in gen.ifs:
                    self.scan_expr(cond, True)
            if isinstance(node, ast.DictComp):
                self.scan_expr(node.key, True)
                self.scan_expr(node.value, True)
            else:
                self.scan_expr(node.elt, True)
            return
        if isinstance(node, ast.Call):
            chain = _dotted_chain(node.func)
            if chain:
                self.info.calls.append(
                    CallSite(chain, node.lineno, _call_nargs(node), in_loop)
                )
        elif isinstance(node, ast.Attribute) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            owner_chain = _dotted_chain(node.value)
            owner = self._owner_key(owner_chain) if owner_chain else None
            if owner is not None and owner != "self":
                self.info.param_writes.append(
                    ParamWrite(
                        param=owner,
                        attr=node.attr,
                        lineno=node.lineno,
                        held=tuple(
                            attr
                            for held_owner, attr in self.held
                            if held_owner == owner
                        ),
                    )
                )
        for child in ast.iter_child_nodes(node):
            self.scan_expr(child, in_loop)


def _function_params(fn: ast.AST) -> List[Tuple[str, Optional[str]]]:
    args = fn.args
    params: List[Tuple[str, Optional[str]]] = []
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        params.append((arg.arg, _annotation_type(arg.annotation)))
    if args.vararg:
        params.append((args.vararg.arg, None))
    if args.kwarg:
        params.append((args.kwarg.arg, None))
    return params


def _summarize_function(
    fn: ast.AST, qualname: str
) -> FunctionInfo:
    info = FunctionInfo(qualname=qualname, lineno=fn.lineno)
    params = _function_params(fn)
    for name, declared in params:
        if declared:
            info.var_types[name] = declared
    scanner = _FunctionScanner(info, [name for name, _ in params])
    scanner.scan_body(fn.body)
    return info


def _class_attr_types(
    cls: ast.ClassDef, methods: Sequence[ast.AST]
) -> Dict[str, str]:
    """Infer ``self.attr`` types from annotations and constructor calls."""
    attr_types: Dict[str, str] = {}
    for stmt in cls.body:  # class-level annotations: `tracer: Tracer`
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            declared = _annotation_type(stmt.annotation)
            if declared:
                attr_types.setdefault(stmt.target.id, declared)
    for method in methods:
        for node in ast.walk(method):
            if isinstance(node, ast.AnnAssign):
                attr = _self_attr(node.target)
                declared = _annotation_type(node.annotation)
                if attr and declared:
                    attr_types.setdefault(attr, declared)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                chain = _dotted_chain(node.value.func)
                if not chain:
                    continue
                for target in node.targets:
                    attr = _self_attr(target)
                    # `self.x = Ctor(...)` — a capitalised tail reads as a
                    # class constructor; lowercase tails are factory calls
                    # whose return type we cannot know.
                    if attr and chain[-1][:1].isupper():
                        attr_types.setdefault(attr, ".".join(chain))
    return attr_types


def _class_lock_contract(
    methods: Sequence[ast.AST],
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(lock attrs created in __init__, attrs written under those locks)."""
    lock_attrs: List[str] = []
    for method in methods:
        if method.name != "__init__":
            continue
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None and attr not in lock_attrs:
                        lock_attrs.append(attr)
    if not lock_attrs:
        return (), ()
    guarded: List[str] = []
    lock_set = set(lock_attrs)

    def scan(body: Sequence[ast.stmt], under: bool) -> None:
        for stmt in body:
            inner = under
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = under or any(
                    _self_attr(item.context_expr) in lock_set
                    for item in stmt.items
                )
            if inner:
                for sub in ast.walk(stmt):
                    attr = _self_attr(sub)
                    if (
                        attr is not None
                        and attr not in lock_set
                        and isinstance(sub.ctx, (ast.Store, ast.Del))
                        and attr not in guarded
                    ):
                        guarded.append(attr)
            for _name, value in ast.iter_fields(stmt):
                if isinstance(value, list):
                    stmts = [s for s in value if isinstance(s, ast.stmt)]
                    if stmts:
                        scan(stmts, inner)
                    for element in value:
                        if isinstance(element, ast.ExceptHandler):
                            scan(element.body, inner)

    for method in methods:
        if method.name != "__init__":
            scan(method.body, False)
    return tuple(lock_attrs), tuple(guarded)


def _extract_imports(tree: ast.Module, module: str, is_package: bool) -> Dict[str, str]:
    """Local alias -> absolute dotted target, relative imports resolved."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname:
                    imports[item.asname] = item.name
                else:
                    head = item.name.split(".")[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                parts = module.split(".") if module != "<root>" else []
                keep = len(parts) - node.level + (1 if is_package else 0)
                if keep < 0:
                    continue
                base = parts[:keep]
                if node.module:
                    base = base + node.module.split(".")
                target = ".".join(base)
                if target:
                    # Mark as tree-relative so resolution knows it is
                    # intra-repo even without the top-package prefix.
                    for item in node.names:
                        imports[item.asname or item.name] = (
                            f"@{target}.{item.name}"
                        )
            elif node.module:
                for item in node.names:
                    imports[item.asname or item.name] = (
                        f"{node.module}.{item.name}"
                    )
    return imports


def summarize_module(
    relpath: str, tree: ast.Module, source: str
) -> ModuleSummary:
    """Build the whole-program summary for one parsed module."""
    module = module_name(relpath)
    parts = Path(relpath).parts
    package = parts[0] if len(parts) > 1 else ""
    is_package = Path(relpath).name == "__init__.py"
    summary = ModuleSummary(
        relpath=relpath,
        module=module,
        package=package,
        digest=source_hash(source),
        imports=_extract_imports(tree, module, is_package),
    )

    module_body_stmts: List[ast.stmt] = []
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.functions[stmt.name] = _summarize_function(stmt, stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            methods = [
                s
                for s in stmt.body
                if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            lock_attrs, guarded = _class_lock_contract(methods)
            bases = []
            for base in stmt.bases:
                chain = _dotted_chain(base)
                if chain:
                    bases.append(".".join(chain))
            summary.classes[stmt.name] = ClassInfo(
                name=stmt.name,
                lineno=stmt.lineno,
                bases=tuple(bases),
                methods=tuple(m.name for m in methods),
                attr_types=_class_attr_types(stmt, methods),
                lock_attrs=lock_attrs,
                guarded_attrs=guarded,
            )
            for method in methods:
                qualname = f"{stmt.name}.{method.name}"
                summary.functions[qualname] = _summarize_function(
                    method, qualname
                )
        else:
            module_body_stmts.append(stmt)
    if module_body_stmts:
        info = FunctionInfo(qualname=MODULE_BODY, lineno=1)
        scanner = _FunctionScanner(info, [])
        scanner.scan_body(module_body_stmts)
        if info.calls or info.param_writes:
            summary.functions[MODULE_BODY] = info
    return summary


class SymbolTable:
    """Index over every module summary: the project-wide name space."""

    def __init__(self, summaries: Sequence[ModuleSummary], top_package: str = "repro") -> None:
        self.top_package = top_package
        self.modules: Dict[str, ModuleSummary] = {
            s.module: s for s in summaries
        }
        self.by_relpath: Dict[str, ModuleSummary] = {
            s.relpath: s for s in summaries
        }

    def summaries(self) -> List[ModuleSummary]:
        return [self.modules[name] for name in sorted(self.modules)]

    def resolve_dotted(self, dotted: str) -> Optional[Tuple[str, str]]:
        """Absolute dotted path -> (module, qualname) for in-tree targets.

        ``repro.tracing.tracer.Tracer.start_span`` resolves to
        ``("tracing.tracer", "Tracer.start_span")``.  Package-``__init__``
        re-exports are followed one level: ``repro.tracing.Tracer`` finds
        the alias in ``tracing/__init__.py`` and chases it to the defining
        module.  Returns None for external names.
        """
        if dotted.startswith("@"):
            rel = dotted[1:]
        elif dotted == self.top_package:
            rel = ""
        elif dotted.startswith(self.top_package + "."):
            rel = dotted[len(self.top_package) + 1 :]
        else:
            return None
        for _hop in range(4):  # bounded re-export chasing
            parts = rel.split(".")
            module = None
            for cut in range(len(parts), 0, -1):
                candidate = ".".join(parts[:cut])
                if candidate in self.modules:
                    module = candidate
                    remainder = parts[cut:]
                    break
            if module is None:
                return None
            summary = self.modules[module]
            if not remainder:
                return (module, MODULE_BODY)
            head = remainder[0]
            if head in summary.functions or head in summary.classes:
                return (module, ".".join(remainder))
            alias = summary.imports.get(head)
            if alias is None:
                return (module, ".".join(remainder))  # unknown attr: best effort
            if alias.startswith("@"):
                rel = ".".join([alias[1:], *remainder[1:]])
            elif alias.startswith(self.top_package + ".") or alias == self.top_package:
                stripped = alias[len(self.top_package) + 1 :] if alias != self.top_package else ""
                rel = ".".join(filter(None, [stripped, *remainder[1:]]))
            else:
                return None  # re-export of an external name
        return None

    def find_class(
        self, summary: ModuleSummary, type_text: str
    ) -> Optional[Tuple[str, ClassInfo]]:
        """Resolve a type annotation string to (module, ClassInfo)."""
        if not type_text:
            return None
        head, *rest = type_text.split(".")
        if not rest and head in summary.classes:
            return (summary.module, summary.classes[head])
        target = summary.imports.get(head)
        if target is None:
            if rest:  # maybe "module.Class" with module == this package?
                return None
            return None
        dotted = ".".join([target, *rest])
        resolved = self.resolve_dotted(dotted)
        if resolved is None:
            return None
        module, qualname = resolved
        cls = self.modules[module].classes.get(qualname)
        if cls is not None:
            return (module, cls)
        return None

    def resolve_method(
        self, module: str, cls: ClassInfo, method: str, _depth: int = 0
    ) -> Optional[Tuple[str, str]]:
        """Find ``method`` on ``cls`` or its in-tree bases -> (module, qualname)."""
        if method in cls.methods:
            return (module, f"{cls.name}.{method}")
        if _depth >= 4:
            return None
        summary = self.modules[module]
        for base in cls.bases:
            found = self.find_class(summary, base)
            if found is None:
                continue
            base_module, base_cls = found
            resolved = self.resolve_method(
                base_module, base_cls, method, _depth + 1
            )
            if resolved is not None:
                return resolved
        return None

    def iter_functions(self) -> Iterator[Tuple[ModuleSummary, FunctionInfo]]:
        for module in sorted(self.modules):
            summary = self.modules[module]
            for qualname in sorted(summary.functions):
                yield summary, summary.functions[qualname]
