"""Whole-program call graph over resolved names.

Nodes are functions.  In-tree nodes are ``"<module>::<qualname>"``
(``cluster.node::ClusterNode.tick``); calls that leave the tree become
external nodes ``"ext::<dotted>"`` (``ext::time.time``) so sink
predicates can match on them.  Resolution covers the cases that occur
in this codebase:

* plain names — local defs, ``from x import f`` aliases, constructors;
* ``self.method()`` — the enclosing class, then in-tree base classes;
* ``self.attr.method()`` — via attribute types inferred from
  ``self.attr = Ctor(...)`` and annotations;
* ``var.method()`` — via parameter/local annotations and
  ``var = Ctor(...)`` constructor assignments;
* ``module.attr(...)`` chains through import aliases, following
  package-``__init__`` re-exports to the defining module.

Unresolvable receivers produce *no* edge: the taint rules prefer a
false negative over a fabricated cross-module path.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.symbols import (
    MODULE_BODY,
    CallSite,
    FunctionInfo,
    ModuleSummary,
    SymbolTable,
)

__all__ = ["CallGraph", "build_call_graph", "external_name", "is_external"]

EXT_PREFIX = "ext::"


def node_id(module: str, qualname: str) -> str:
    return f"{module}::{qualname}"


def external_name(node: str) -> str:
    return node[len(EXT_PREFIX) :]


def is_external(node: str) -> bool:
    return node.startswith(EXT_PREFIX)


class CallGraph:
    """Directed call graph plus enough metadata to render and explain it."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        # caller node -> {callee node: (call lineno, nargs)}
        self.edges: Dict[str, Dict[str, Tuple[int, int]]] = {}
        # in-tree node -> (relpath, def lineno)
        self.locations: Dict[str, Tuple[str, int]] = {}
        # (caller, callee) -> lineno of a call issued inside a loop
        self.loop_edges: Dict[Tuple[str, str], int] = {}

    def add_edge(
        self,
        caller: str,
        callee: str,
        lineno: int,
        nargs: int,
        in_loop: bool = False,
    ) -> None:
        callees = self.edges.setdefault(caller, {})
        if callee not in callees:
            callees[callee] = (lineno, nargs)
        if in_loop and (caller, callee) not in self.loop_edges:
            self.loop_edges[(caller, callee)] = lineno

    def callees(self, node: str) -> Dict[str, Tuple[int, int]]:
        return self.edges.get(node, {})

    def nodes(self) -> List[str]:
        seen: Set[str] = set(self.locations)
        for caller, callees in self.edges.items():
            seen.add(caller)
            seen.update(callees)
        return sorted(seen)

    # -- taint ---------------------------------------------------------------

    def taint_from_sinks(
        self, sink: Callable[[str, int], bool]
    ) -> Dict[str, Tuple[str, int]]:
        """Which nodes can transitively reach a sink, and through whom.

        ``sink(node, nargs)`` classifies a *callee* (usually an external
        node) as a sink for this taint family.  Returns, for every
        tainted node, its next hop toward the sink and the line of the
        call that takes it there — enough to reconstruct the whole chain
        with :meth:`chain`.  Propagation is a reverse BFS, so each node
        records its *shortest* route to a sink, deterministically
        (edges are visited in sorted order).
        """
        tainted: Dict[str, Tuple[str, int]] = {}
        # Seed: callers with a direct edge to a sink callee.  Sink-ness
        # is judged per *edge* (nargs distinguishes Random(0) from
        # Random()), so the sink node itself never enters the map.
        for caller in sorted(self.edges):
            for callee in sorted(self.edges[caller]):
                lineno, nargs = self.edges[caller][callee]
                if caller not in tainted and sink(callee, nargs):
                    tainted[caller] = (callee, lineno)
        reverse: Dict[str, List[str]] = {}
        for caller in self.edges:
            for callee in self.edges[caller]:
                reverse.setdefault(callee, []).append(caller)
        frontier = sorted(tainted)
        while frontier:
            next_frontier: List[str] = []
            for node in frontier:
                for caller in sorted(reverse.get(node, ())):
                    if caller in tainted:
                        continue
                    lineno, _nargs = self.edges[caller][node]
                    tainted[caller] = (node, lineno)
                    next_frontier.append(caller)
            frontier = next_frontier
        return tainted

    def chain(
        self, node: str, tainted: Dict[str, Tuple[str, int]]
    ) -> List[Tuple[str, int]]:
        """The call chain node → … → sink as (node, call lineno) steps."""
        steps: List[Tuple[str, int]] = []
        current = node
        while current:
            succ, lineno = tainted.get(current, ("", 0))
            steps.append((current, lineno))
            current = succ
        return steps

    def render_chain(self, chain: Sequence[Tuple[str, int]]) -> List[str]:
        """Human-readable chain lines for ``--explain`` output."""
        lines = []
        for node, lineno in chain:
            if is_external(node):
                lines.append(f"{external_name(node)}  [sink]")
                continue
            module, qualname = node.split("::", 1)
            summary = self.table.modules.get(module)
            relpath = summary.relpath if summary else module
            suffix = f" (calls next at {relpath}:{lineno})" if lineno else ""
            lines.append(f"{module}.{qualname}{suffix}")
        return lines

    def to_dot(self, max_label: int = 60) -> str:
        """GraphViz DOT of the in-tree call graph (external sinks boxed)."""
        lines = [
            "digraph callgraph {",
            "  rankdir=LR;",
            '  node [fontsize=9, shape=ellipse];',
        ]

        def quote(node: str) -> str:
            label = (
                external_name(node)
                if is_external(node)
                else node.replace("::", ".")
            )
            if len(label) > max_label:
                label = label[: max_label - 1] + "…"
            return '"' + label.replace('"', "'") + '"'

        externals = sorted(
            {
                callee
                for callees in self.edges.values()
                for callee in callees
                if is_external(callee)
            }
        )
        for node in externals:
            lines.append(f"  {quote(node)} [shape=box, style=dashed];")
        for caller in sorted(self.edges):
            for callee in sorted(self.edges[caller]):
                lines.append(f"  {quote(caller)} -> {quote(callee)};")
        lines.append("}")
        return "\n".join(lines)


def _resolve_type_method(
    table: SymbolTable,
    summary: ModuleSummary,
    type_text: Optional[str],
    method: str,
) -> Optional[str]:
    if not type_text:
        return None
    found = table.find_class(summary, type_text)
    if found is None:
        return None
    module, cls = found
    resolved = table.resolve_method(module, cls, method)
    if resolved is None:
        return None
    return node_id(*resolved)


def resolve_call(
    table: SymbolTable,
    summary: ModuleSummary,
    func: FunctionInfo,
    site: CallSite,
) -> Optional[str]:
    """Resolve one call site to a node id, or None when unknowable."""
    chain = site.chain
    head = chain[0]

    if head == "self" and "." in func.qualname:
        cls_name = func.qualname.split(".", 1)[0]
        cls = summary.classes.get(cls_name)
        if cls is None:
            return None
        if len(chain) == 2:
            resolved = table.resolve_method(summary.module, cls, chain[1])
            return node_id(*resolved) if resolved else None
        if len(chain) == 3:
            return _resolve_type_method(
                table, summary, cls.attr_types.get(chain[1]), chain[2]
            )
        return None

    if len(chain) == 2 and head in func.var_types:
        return _resolve_type_method(
            table, summary, func.var_types[head], chain[1]
        )

    if len(chain) == 1:
        if head in summary.functions:
            return node_id(summary.module, head)
        if head in summary.classes:
            cls = summary.classes[head]
            resolved = table.resolve_method(summary.module, cls, "__init__")
            if resolved is not None:
                return node_id(*resolved)
            return node_id(summary.module, head)  # class without __init__

    target = summary.imports.get(head)
    if target is not None:
        dotted = ".".join([target, *chain[1:]])
        resolved = table.resolve_dotted(dotted)
        if resolved is not None:
            module, qualname = resolved
            dest = table.modules[module]
            if qualname in dest.functions:
                return node_id(module, qualname)
            if qualname in dest.classes:
                ctor = table.resolve_method(
                    module, dest.classes[qualname], "__init__"
                )
                return node_id(*ctor) if ctor else node_id(module, qualname)
            head_name = qualname.split(".", 1)[0]
            if head_name in dest.classes and "." in qualname:
                resolved_method = table.resolve_method(
                    module, dest.classes[head_name], qualname.split(".")[-1]
                )
                if resolved_method is not None:
                    return node_id(*resolved_method)
            if qualname == MODULE_BODY:
                return None
            return None
        if dotted.startswith("@"):
            return None  # relative import that left the analyzed tree
        if not dotted.startswith(table.top_package + "."):
            return EXT_PREFIX + dotted
        return None

    # Method call on an unresolvable receiver, builtins, etc.
    return None


def build_call_graph(
    table: SymbolTable, packages: Optional[Iterable[str]] = None
) -> CallGraph:
    """Assemble the call graph for every function in the table.

    ``packages`` optionally restricts *callers* (callees always resolve
    tree-wide) — useful for focused ``--graph`` exports.
    """
    wanted = set(packages) if packages is not None else None
    graph = CallGraph(table)
    for summary, func in table.iter_functions():
        caller = node_id(summary.module, func.qualname)
        graph.locations[caller] = (summary.relpath, func.lineno)
        if wanted is not None and summary.package not in wanted:
            continue
        for site in func.calls:
            callee = resolve_call(table, summary, func, site)
            if callee is None or callee == caller:
                continue
            graph.add_edge(
                caller, callee, site.lineno, site.nargs, site.in_loop
            )
    return graph
