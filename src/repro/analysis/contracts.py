"""The layering contract: which package may import which, declared once.

The repo is layered like the SPATIAL deployment it reproduces — pure
substrates at the bottom (``ml``, ``datasets``, ``telemetry``), trust
metrics above them, orchestration (``core``) and serving (``gateway``)
on top.  ``ALLOWED_IMPORTS`` is the single source of truth for the
allowed package→package edges (mirrored as a diagram in DESIGN.md);
:class:`ImportGraphAnalyzer` parses every module's imports into a
``networkx`` digraph and emits findings for (a) any edge outside the
contract and (b) any import cycle at module granularity.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.analysis.engine import Finding

__all__ = [
    "ALLOWED_IMPORTS",
    "CLOCK_IMPORT_BANNED_PACKAGES",
    "CLOCK_INJECTED_PACKAGES",
    "CROSS_PROCESS_PACKAGES",
    "PURE_PACKAGES",
    "RNG_TAINT_PACKAGES",
    "SERVING_PATH_PACKAGES",
    "WALLCLOCK_TAINT_PACKAGES",
    "ImportGraphAnalyzer",
    "TOP_PACKAGE",
    "extract_intra_imports",
]

TOP_PACKAGE = "repro"

# package -> packages it may import.  A missing key means "may import
# nothing inside repro but its own package".  Root modules (cli.py,
# __init__.py, __main__.py) are the application layer: unrestricted.
ALLOWED_IMPORTS: Dict[str, frozenset] = {
    # layer 0 — substrates: no intra-repo dependencies
    "datasets": frozenset(),
    "telemetry": frozenset(),
    "analysis": frozenset(),
    "ml": frozenset(),
    # layer 1 — trust metrics and learning extensions over the substrates
    "privacy": frozenset({"ml"}),
    "trust": frozenset({"ml"}),
    "xai": frozenset({"ml"}),
    "federated": frozenset({"ml", "datasets"}),
    # tracing sits just above telemetry: spans are the interval-valued
    # sibling of events, and the exemplar join needs both vocabularies
    "tracing": frozenset({"telemetry"}),
    # the kernel pool ships batches to forked workers through shared
    # memory; it publishes occupancy/crash counters through telemetry
    # but must stay ignorant of the layers that feed it
    "pool": frozenset({"telemetry"}),
    # the SLO engine evaluates rollup windows and drills into traces;
    # incident *rendering* (narrator/dashboard) lives in core, above it
    "slo": frozenset({"telemetry", "tracing"}),
    # the serving layer fuses per-request work into kernel calls; it
    # sits between the request sources (gateway/cluster) and the pure
    # kernels, publishing its counters through telemetry; the engine
    # may hand flushed batches to a repro.pool worker pool
    "serving": frozenset({"ml", "xai", "telemetry", "tracing", "pool"}),
    # layer 2 — serving and adversarial workloads
    "gateway": frozenset({"ml", "serving", "telemetry", "tracing"}),
    # the multi-node deployment composes the single-node serving engine
    # with the observability substrates; it must not reach into ml/core
    "cluster": frozenset({"gateway", "serving", "telemetry", "tracing"}),
    "attacks": frozenset({"ml", "privacy", "gateway", "datasets"}),
    # layer 3 — orchestration: may use everything below, never the CLI
    "core": frozenset(
        {
            "ml",
            "datasets",
            "telemetry",
            "tracing",
            "privacy",
            "trust",
            "xai",
            "federated",
            "attacks",
            "slo",
        }
    ),
}

# Packages where wall-clock access is banned outright (see the
# wallclock-in-compute rule): results must be a function of inputs+seed.
PURE_PACKAGES = frozenset(
    {
        "ml",
        "xai",
        "trust",
        "datasets",
        "privacy",
        "federated",
        "attacks",
        # the serving layer is pure given (inputs, now): every entry
        # point takes the caller's clock reading, so batching/caching
        # decisions replay identically under simulated time
        "serving",
    }
)

# Packages whose timestamps must come from an injected clock: tracing
# (span times) and cluster (node/fault/autoscaler scheduling) both run
# on the simulator's virtual ``now`` in capacity experiments.
CLOCK_INJECTED_PACKAGES = frozenset({"tracing", "cluster"})

# Packages where even *importing* time/datetime is banned (the
# tracing-clock-injection rule).  The clock-injected packages would mix
# wall time into virtual-time runs; attacks/federated/privacy are
# seeded-compute layers whose only sanctioned duration source is the
# injectable cost clock in ``repro.attacks.base``; slo runs entirely on
# window/alert timestamps (simulated time) so its reports stay
# byte-stable.
CLOCK_IMPORT_BANNED_PACKAGES = CLOCK_INJECTED_PACKAGES | frozenset(
    {"attacks", "federated", "privacy", "slo"}
)

# Taint scopes for the whole-program flow rules (rules_flow.py): code in
# these packages must not *transitively* reach a wall-clock / global-RNG
# sink, even through helpers in other layers.
WALLCLOCK_TAINT_PACKAGES = PURE_PACKAGES | CLOCK_INJECTED_PACKAGES
RNG_TAINT_PACKAGES = PURE_PACKAGES | frozenset(
    {"gateway", "cluster", "tracing"}
)

# Scope of the unbatched-kernel-call flow rule: packages on the serving
# path, where a per-request model/XAI kernel call inside a loop defeats
# the micro-batcher (DESIGN.md §15).  The pure kernel layers themselves
# are out of scope — their internal loops are the batched endpoints.
SERVING_PATH_PACKAGES = frozenset({"serving", "gateway", "cluster"})

# Scope of the cross-process-pickle rule: packages that own or drive the
# multi-process kernel pool (DESIGN.md §16).  Inside them, ndarray/bytes
# payloads must cross process boundaries through the shared-memory
# arena, never by pickling through a multiprocessing queue or executor
# submit — the zero-copy hot path is the whole point of repro.pool.
CROSS_PROCESS_PACKAGES = SERVING_PATH_PACKAGES | frozenset({"pool"})


def _module_name(relpath: str) -> str:
    """``ml/model.py`` -> ``ml.model``; ``ml/__init__.py`` -> ``ml``."""
    parts = list(Path(relpath).parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts) if parts else "<root>"


def extract_intra_imports(
    relpath: str, tree: ast.Module, top_package: str = TOP_PACKAGE
) -> List[Tuple[str, Optional[Tuple[str, ...]], int]]:
    """Intra-repo imports of one module: (target, imported names, line).

    ``target`` is the dotted module path relative to the analyzed tree
    (``"gateway.services"``); ``names`` is the tuple of imported names
    for from-imports, or None for plain ``import`` statements.  Shared
    by the live AST path and the incremental cache, which stores these
    tuples so a warm run can rebuild the import graph without parsing.
    """
    src_module = _module_name(relpath)
    is_package = Path(relpath).name == "__init__.py"
    prefix = top_package + "."

    def strip(dotted: str) -> str:
        if dotted == top_package:
            return "<root>"
        return dotted[len(top_package) + 1 :]

    out: List[Tuple[str, Optional[Tuple[str, ...]], int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == top_package or item.name.startswith(prefix):
                    out.append((strip(item.name), None, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            names = tuple(item.name for item in node.names)
            if node.level:
                # Resolve against the containing package: for module
                # a.b.c, level=1 -> a.b; for package a.b (__init__),
                # level=1 -> a.b itself.
                parts = src_module.split(".")
                keep = len(parts) - node.level + (1 if is_package else 0)
                if keep < 0:
                    continue
                base = parts[:keep]
                if node.module:
                    base = base + node.module.split(".")
                if base:
                    out.append((".".join(base), names, node.lineno))
            elif node.module and (
                node.module == top_package or node.module.startswith(prefix)
            ):
                out.append((strip(node.module), names, node.lineno))
    return out


class ImportGraphAnalyzer:
    """Build the intra-repo import graph and check it against the contract."""

    def __init__(
        self,
        allowed: Optional[Dict[str, frozenset]] = None,
        top_package: str = TOP_PACKAGE,
    ) -> None:
        self.allowed = dict(ALLOWED_IMPORTS if allowed is None else allowed)
        self.top_package = top_package
        self.module_graph = nx.DiGraph()
        self.package_graph = nx.DiGraph()
        # Raw imports: (src_mod, dst_mod, imported names or None, line).
        self._raw: List[Tuple[str, str, Optional[Tuple[str, ...]], int]] = []
        self._edges: List[Tuple[str, str, int]] = []  # resolved (src, dst, line)
        self._finalized = False

    # -- graph construction -------------------------------------------------

    def add_module(self, relpath: str, tree: ast.Module) -> None:
        self.add_raw_imports(
            relpath, extract_intra_imports(relpath, tree, self.top_package)
        )

    def add_raw_imports(
        self,
        relpath: str,
        raw_imports: Iterable[Tuple[str, Optional[Tuple[str, ...]], int]],
    ) -> None:
        """Ingest pre-extracted imports (the incremental cache's path in)."""
        src_module = _module_name(relpath)
        self.module_graph.add_node(src_module, relpath=relpath)
        for target, names, lineno in raw_imports:
            self._raw.append((src_module, target, names, lineno))
        self._finalized = False

    def add_tree(self, root: Path) -> int:
        count = 0
        for path in sorted(root.rglob("*.py")):
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except SyntaxError:
                continue  # the engine reports this as its own finding
            self.add_module(path.relative_to(root).as_posix(), tree)
            count += 1
        return count


    # -- checks -------------------------------------------------------------

    def finalize(self) -> None:
        """Resolve raw imports to module edges; project down to packages.

        ``from repro.pkg import name`` points at ``pkg.name`` when that is
        a real module in the analyzed tree (otherwise ``name`` is an
        attribute and the edge stays on the package ``__init__``).  This
        matters for cycle fidelity: a package re-exporting its own
        submodules must not read as a self-cycle.
        """
        if self._finalized:
            return
        real = {
            node
            for node, data in self.module_graph.nodes(data=True)
            if "relpath" in data
        }
        self._edges = []
        for src, target, names, lineno in self._raw:
            if names is None:
                resolved = [target]
            else:
                resolved = [
                    f"{target}.{name}"
                    for name in names
                    if f"{target}.{name}" in real
                ]
                if len(resolved) < len(names):
                    # at least one imported name is an attribute, which
                    # executes the package __init__ itself
                    resolved.append(target)
            for dst in resolved:
                if dst == src:
                    continue
                self._edges.append((src, dst, lineno))
                self.module_graph.add_edge(src, dst)
        for src, dst, _ in self._edges:
            sp, dp = src.split(".")[0], dst.split(".")[0]
            if sp != dp and dp != "<root>":
                self.package_graph.add_edge(sp, dp)
        self._finalized = True

    def contract_violations(self) -> List[Finding]:
        self.finalize()
        findings = []
        relpaths = nx.get_node_attributes(self.module_graph, "relpath")
        for src, dst, lineno in self._edges:
            src_pkg = src.split(".")[0]
            dst_pkg = dst.split(".")[0]
            if src_pkg == dst_pkg or dst_pkg == "<root>":
                continue
            if "." not in src and src not in self.allowed:
                continue  # root modules are the unrestricted top layer
            permitted = self.allowed.get(src_pkg, frozenset())
            if dst_pkg not in permitted:
                findings.append(
                    Finding(
                        path=relpaths.get(src, src),
                        line=lineno,
                        rule="layer-contract",
                        message=(
                            f"package '{src_pkg}' may not import "
                            f"'{dst_pkg}' (allowed: "
                            f"{sorted(permitted) or 'nothing'})"
                        ),
                    )
                )
        return sorted(findings)

    def import_cycles(self) -> List[Finding]:
        self.finalize()
        findings = []
        relpaths = nx.get_node_attributes(self.module_graph, "relpath")
        for cycle in nx.simple_cycles(self.module_graph):
            anchor = min(cycle)
            ordered = cycle[cycle.index(anchor) :] + cycle[: cycle.index(anchor)]
            findings.append(
                Finding(
                    path=relpaths.get(anchor, anchor),
                    line=1,
                    rule="import-cycle",
                    message=(
                        "import cycle: " + " -> ".join(ordered + [anchor])
                    ),
                )
            )
        return sorted(findings)

    def check(self) -> List[Finding]:
        return sorted(self.contract_violations() + self.import_cycles())

    def package_edges(self) -> List[Tuple[str, str]]:
        self.finalize()
        return sorted(self.package_graph.edges())
