"""Static-analysis engine: software probes over the source tree itself.

SPATIAL's thesis is that AI pipelines need continuous probes gauging
trustworthy properties; this package applies the same idea to the
codebase — an AST rule engine (one parse per module, rules registered by
decorator) plus a ``networkx`` import-graph pass that enforces the
layering contract declared in :mod:`repro.analysis.contracts`.  Run it
with ``python -m repro lint``; the tier-1 suite gates on zero
non-baselined findings.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.contracts import (
    ALLOWED_IMPORTS,
    PURE_PACKAGES,
    ImportGraphAnalyzer,
)
from repro.analysis.engine import (
    AnalysisEngine,
    Finding,
    ModuleContext,
    RuleSpec,
    all_rules,
    get_rule,
    rule,
)
from repro.analysis.runner import (
    LintReport,
    default_root,
    find_baseline,
    run_analysis,
)
from repro.analysis import rules  # noqa: F401  (registers the catalogue)

__all__ = [
    "ALLOWED_IMPORTS",
    "AnalysisEngine",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ImportGraphAnalyzer",
    "LintReport",
    "ModuleContext",
    "PURE_PACKAGES",
    "RuleSpec",
    "all_rules",
    "default_root",
    "find_baseline",
    "get_rule",
    "rule",
    "rules",
    "run_analysis",
]
