"""Static-analysis engine: software probes over the source tree itself.

SPATIAL's thesis is that AI pipelines need continuous probes gauging
trustworthy properties; this package applies the same idea to the
codebase — an AST rule engine (one parse per module, rules registered by
decorator) plus a ``networkx`` import-graph pass that enforces the
layering contract declared in :mod:`repro.analysis.contracts`.  Run it
with ``python -m repro lint``; the tier-1 suite gates on zero
non-baselined findings.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.cache import AnalysisCache
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.contracts import (
    ALLOWED_IMPORTS,
    PURE_PACKAGES,
    ImportGraphAnalyzer,
)
from repro.analysis.engine import (
    AnalysisEngine,
    Finding,
    ModuleContext,
    RuleSpec,
    all_rules,
    get_rule,
    rule,
)
from repro.analysis.flow import CFG, build_cfg
from repro.analysis.runner import (
    LintReport,
    default_cache_path,
    default_root,
    find_baseline,
    run_analysis,
    split_rule_ids,
)
from repro.analysis.symbols import ModuleSummary, SymbolTable, summarize_module
from repro.analysis import rules  # noqa: F401  (registers the catalogue)
from repro.analysis import rules_flow  # noqa: F401  (CFG + project rules)
from repro.analysis.rules_flow import (
    ProjectContext,
    all_project_rules,
    project_rule,
)

__all__ = [
    "ALLOWED_IMPORTS",
    "AnalysisCache",
    "AnalysisEngine",
    "Baseline",
    "BaselineEntry",
    "CFG",
    "CallGraph",
    "Finding",
    "ImportGraphAnalyzer",
    "LintReport",
    "ModuleContext",
    "ModuleSummary",
    "PURE_PACKAGES",
    "ProjectContext",
    "RuleSpec",
    "SymbolTable",
    "all_project_rules",
    "all_rules",
    "build_call_graph",
    "build_cfg",
    "default_cache_path",
    "default_root",
    "find_baseline",
    "get_rule",
    "project_rule",
    "rule",
    "rules",
    "rules_flow",
    "run_analysis",
    "split_rule_ids",
    "summarize_module",
]
