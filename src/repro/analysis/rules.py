"""The probe catalogue: one registered rule per repo invariant.

Every rule is a generator ``(module: ModuleContext) -> (lineno, message)``
registered via :func:`repro.analysis.engine.rule`.  The catalogue encodes
the defect classes reviews of this repo keep finding by hand — the PR-1
dashboard bug was a placeholder-less f-string — plus the determinism and
clock-injection invariants a reproduction cannot afford to lose.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.contracts import (
    CLOCK_IMPORT_BANNED_PACKAGES,
    PURE_PACKAGES,
)
from repro.analysis.engine import ModuleContext, rule

__all__ = ["BUILTIN_NAMES"]


@rule("fstring-placeholder")
def fstring_placeholder(module: ModuleContext) -> Iterator[Tuple[int, str]]:
    """An f-string without placeholders is almost always a forgotten {...}.

    Format specs (the ``:.3f`` in ``f"{x:.3f}"``) are themselves JoinedStr
    nodes without placeholders — they are legitimate and must be excluded,
    or every width/precision spec becomes a false positive.
    """
    spec_ids = {
        id(node.format_spec)
        for node in module.walk(ast.FormattedValue)
        if node.format_spec
    }
    for node in module.walk(ast.JoinedStr):
        if id(node) in spec_ids:
            continue
        if not any(isinstance(p, ast.FormattedValue) for p in node.values):
            yield node.lineno, (
                "f-string has no placeholders — a {…} was probably forgotten"
            )


_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set)
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict"}
)


@rule("mutable-default")
def mutable_default(module: ModuleContext) -> Iterator[Tuple[int, str]]:
    """A mutable default argument shares one object across every call."""
    for node in module.walk(ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda):
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        name = getattr(node, "name", "<lambda>")
        for default in defaults:
            bad = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
            )
            if bad:
                yield default.lineno, (
                    f"mutable default argument in {name}() — "
                    "use None and allocate inside the body"
                )


@rule("swallowed-except")
def swallowed_except(module: ModuleContext) -> Iterator[Tuple[int, str]]:
    """A bare or pass-only except hides the failure it catches.

    Bare ``except:`` also traps ``KeyboardInterrupt``/``SystemExit``;
    a handler whose body is only ``pass``/``...`` erases the error
    entirely.  Catch a concrete type and record what was caught (the
    registry's ``error_reading`` pattern), or use ``contextlib.suppress``
    to make intentional swallowing explicit.
    """
    for handler in module.walk(ast.ExceptHandler):
        if handler.type is None:
            yield handler.lineno, (
                "bare `except:` traps KeyboardInterrupt/SystemExit — "
                "name the exception type"
            )
            continue
        body_is_noop = all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
            )
            for stmt in handler.body
        )
        if body_is_noop:
            yield handler.lineno, (
                "exception silently swallowed (pass-only handler) — "
                "record it or use contextlib.suppress"
            )


# Constructors that *produce* a seedable generator are fine; everything
# else on the global modules mutates or reads hidden process-wide state.
_RANDOM_OK = frozenset({"Random", "SystemRandom"})
_NP_RANDOM_OK = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
        "MT19937",
    }
)


def _import_aliases(module: ModuleContext) -> Dict[str, Set[str]]:
    """Map canonical module name -> local alias names bound in this module."""
    aliases: Dict[str, Set[str]] = {}
    for node in module.walk(ast.Import):
        for item in node.names:
            bound = item.asname or item.name.split(".")[0]
            aliases.setdefault(item.name.split(".")[0], set()).add(bound)
    return aliases


@rule("unseeded-rng")
def unseeded_rng(module: ModuleContext) -> Iterator[Tuple[int, str]]:
    """Global RNG state breaks reproducibility — inject a seeded generator.

    ``random.random()`` and legacy ``np.random.rand()`` draw from hidden
    process-wide state: two call sites interleave and every result depends
    on import order.  Library code must thread a ``random.Random(seed)``
    or ``np.random.default_rng(seed)`` instance instead.
    """
    aliases = _import_aliases(module)
    random_names = aliases.get("random", set())
    numpy_names = aliases.get("numpy", set())
    from_random: Set[str] = set()
    for node in module.walk(ast.ImportFrom):
        if node.module == "random" and node.level == 0:
            for item in node.names:
                if item.name not in _RANDOM_OK:
                    from_random.add(item.asname or item.name)

    seeded_ctors: Set[str] = set()
    for node in module.walk(ast.ImportFrom):
        if node.module == "random" and node.level == 0:
            for item in node.names:
                if item.name == "Random":
                    seeded_ctors.add(item.asname or item.name)
        elif node.module in ("numpy.random", "numpy") and node.level == 0:
            for item in node.names:
                if item.name == "default_rng":
                    seeded_ctors.add(item.asname or item.name)

    for node in module.walk(ast.Call):
        func = node.func
        seedless = not node.args and not node.keywords
        if isinstance(func, ast.Name) and func.id in from_random:
            yield node.lineno, (
                f"global-state RNG call {func.id}() — "
                "inject random.Random(seed) instead"
            )
        elif isinstance(func, ast.Name) and func.id in seeded_ctors and seedless:
            yield node.lineno, (
                f"seedless generator {func.id}() draws OS entropy — "
                "pass an explicit seed"
            )
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            base = func.value.id
            if base in random_names and func.attr not in _RANDOM_OK:
                yield node.lineno, (
                    f"global-state RNG call random.{func.attr}() — "
                    "inject random.Random(seed) instead"
                )
            elif base in random_names and func.attr == "Random" and seedless:
                yield node.lineno, (
                    "seedless random.Random() draws OS entropy — "
                    "pass an explicit seed"
                )
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in numpy_names
            and func.attr not in _NP_RANDOM_OK
        ):
            yield node.lineno, (
                f"legacy global np.random.{func.attr}() — "
                "use np.random.default_rng(seed)"
            )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "default_rng"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in numpy_names
            and seedless
        ):
            yield node.lineno, (
                "seedless np.random.default_rng() draws OS entropy — "
                "pass an explicit seed"
            )


_WALLCLOCK_TIME_ATTRS = frozenset({"time", "time_ns"})
_WALLCLOCK_DT_ATTRS = frozenset({"now", "utcnow", "today"})


@rule("wallclock-in-compute")
def wallclock_in_compute(module: ModuleContext) -> Iterator[Tuple[int, str]]:
    """Pure compute packages must take an injected clock, not read wall time.

    Applies only to the pure layers (see ``PURE_PACKAGES`` in the layering
    contract): ml, xai, trust, datasets, privacy, federated, attacks.
    The telemetry rollup layer shows the sanctioned pattern — a ``clock``
    callable injected at construction, so tests and replays control time.
    """
    if module.package not in PURE_PACKAGES:
        return
    aliases = _import_aliases(module)
    time_names = aliases.get("time", set())
    datetime_mods = aliases.get("datetime", set())
    from_imports: Set[str] = set()
    datetime_classes: Set[str] = set()
    for node in module.walk(ast.ImportFrom):
        if node.level:
            continue
        if node.module == "time":
            for item in node.names:
                if item.name in _WALLCLOCK_TIME_ATTRS:
                    from_imports.add(item.asname or item.name)
        elif node.module == "datetime":
            for item in node.names:
                if item.name == "datetime":
                    datetime_classes.add(item.asname or item.name)

    for node in module.walk(ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in from_imports:
            yield node.lineno, (
                f"wall-clock {func.id}() in pure package "
                f"'{module.package}' — inject a clock callable"
            )
        elif isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in time_names
                and func.attr in _WALLCLOCK_TIME_ATTRS
            ):
                yield node.lineno, (
                    f"wall-clock time.{func.attr}() in pure package "
                    f"'{module.package}' — inject a clock callable"
                )
            elif (
                isinstance(base, ast.Name)
                and base.id in datetime_classes
                and func.attr in _WALLCLOCK_DT_ATTRS
            ):
                yield node.lineno, (
                    f"wall-clock datetime.{func.attr}() in pure package "
                    f"'{module.package}' — inject a clock callable"
                )
            elif (
                isinstance(base, ast.Attribute)
                and base.attr == "datetime"
                and isinstance(base.value, ast.Name)
                and base.value.id in datetime_mods
                and func.attr in _WALLCLOCK_DT_ATTRS
            ):
                yield node.lineno, (
                    f"wall-clock datetime.datetime.{func.attr}() in pure "
                    f"package '{module.package}' — inject a clock callable"
                )


_CLOCK_MODULES = frozenset({"time", "datetime"})


@rule("tracing-clock-injection")
def tracing_clock_injection(module: ModuleContext) -> Iterator[Tuple[int, str]]:
    """Clock-disciplined packages must never import time — clocks are injected.

    Span timestamps come from the :class:`~repro.tracing.tracer.Tracer`'s
    ``clock`` callable (the simulator's virtual ``now`` in capacity
    experiments, ``time.perf_counter`` at the application layer).  A direct
    ``time.*`` or ``datetime`` read anywhere in ``repro.tracing`` would
    silently mix wall time into virtual-time traces, so the *import* is
    banned outright — stricter than the pure-package rule, which only
    bans specific wall-clock calls.  ``repro.cluster`` is held to the
    same bar: node lifecycles, fault plans and autoscaler ticks all run
    on the simulator's virtual clock, and one wall-time read would
    desynchronise failover timing from the workload it interrupts.  The
    seeded-compute packages (``attacks``, ``federated``, ``privacy``)
    are also covered: their only sanctioned duration source is the
    injectable cost clock in ``repro.attacks.base``, which carries the
    single baselined import.
    """
    if module.package not in CLOCK_IMPORT_BANNED_PACKAGES:
        return
    package = f"repro.{module.package}"
    for node in module.walk(ast.Import):
        for item in node.names:
            root_name = item.name.split(".")[0]
            if root_name in _CLOCK_MODULES:
                yield node.lineno, (
                    f"'{item.name}' imported in {package} — "
                    "timestamps must come from the injected clock"
                )
    for node in module.walk(ast.ImportFrom):
        if node.level == 0 and node.module:
            root_name = node.module.split(".")[0]
            if root_name in _CLOCK_MODULES:
                yield node.lineno, (
                    f"'from {node.module} import …' in {package} — "
                    "timestamps must come from the injected clock"
                )


def _module_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (defs, classes, assigns, imports)."""
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            names.add(stmt.target.id)
        elif isinstance(stmt, ast.Import):
            for item in stmt.names:
                names.add(item.asname or item.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for item in stmt.names:
                names.add(item.asname or item.name)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # TYPE_CHECKING / fallback-import blocks bind names too.
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for item in sub.names:
                        names.add(item.asname or item.name.split(".")[0])
                elif isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    names.add(sub.name)
    return names


def _declared_all(tree: ast.Module) -> Tuple[Optional[int], Optional[List[str]]]:
    for stmt in tree.body:
        targets = (
            stmt.targets
            if isinstance(stmt, ast.Assign)
            else [stmt.target]
            if isinstance(stmt, ast.AnnAssign)
            else []
        )
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        value = stmt.value
        if isinstance(value, (ast.List, ast.Tuple)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in value.elts
        ):
            return stmt.lineno, [e.value for e in value.elts]
        return stmt.lineno, None  # dynamic __all__: cannot check
    return None, None


@rule("all-drift")
def all_drift(module: ModuleContext) -> Iterator[Tuple[int, str]]:
    """``__all__`` must match the names the module actually binds.

    Both directions: an ``__all__`` entry with no backing definition is a
    broken export (``from pkg import *`` raises AttributeError), and — in
    package ``__init__`` modules, where imports *are* the public API — a
    public binding missing from ``__all__`` is silent API drift.
    """
    lineno, exported = _declared_all(module.tree)
    if lineno is None or exported is None:
        return
    bound = _module_bindings(module.tree)
    for name in exported:
        if name not in bound:
            yield lineno, (
                f"__all__ exports {name!r} but the module never binds it"
            )
    if module.is_init:
        public = {
            n for n in bound if not n.startswith("_") and n != "annotations"
        }
        for name in sorted(public - set(exported)):
            yield lineno, (
                f"public name {name!r} is bound in __init__ "
                "but missing from __all__"
            )
    seen: Set[str] = set()
    for name in exported:
        if name in seen:
            yield lineno, f"__all__ lists {name!r} twice"
        seen.add(name)


BUILTIN_NAMES = frozenset(
    name for name in dir(builtins) if not name.startswith("_")
)


@rule("shadowed-builtin")
def shadowed_builtin(module: ModuleContext) -> Iterator[Tuple[int, str]]:
    """A parameter named after a builtin shadows it for the whole body.

    ``def f(input, type)`` makes ``input()``/``type()`` unreachable and
    misleads readers; rename (``input_``, ``kind``) or pick a domain term.
    """
    for node in module.walk(ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda):
        args = node.args
        params = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]
        if args.vararg:
            params.append(args.vararg)
        if args.kwarg:
            params.append(args.kwarg)
        name = getattr(node, "name", "<lambda>")
        for param in params:
            if param.arg in BUILTIN_NAMES:
                yield param.lineno, (
                    f"parameter {param.arg!r} of {name}() shadows a builtin"
                )


_PREDICT_NAMES = frozenset(
    {"predict", "predict_proba", "predict_fn", "decision_function"}
)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _loop_repeated_nodes(loop: ast.AST) -> Iterator[ast.AST]:
    """Sub-nodes of a loop that execute once *per iteration*.

    Excludes the parts evaluated a single time before the loop runs: a
    ``for`` statement's iterable and the outermost comprehension source
    (``model.predict(X)`` as the thing being iterated is a batched call,
    exactly the pattern the rule wants to encourage).
    """
    if isinstance(loop, ast.For):
        repeated = [*loop.body, *loop.orelse]
    elif isinstance(loop, ast.While):
        repeated = [loop.test, *loop.body, *loop.orelse]
    else:  # comprehension: everything except the first generator's source
        repeated = [
            getattr(loop, "elt", None),
            getattr(loop, "key", None),
            getattr(loop, "value", None),
        ]
        for i, gen in enumerate(loop.generators):
            if i > 0:
                repeated.append(gen.iter)
            repeated.extend(gen.ifs)
        repeated = [node for node in repeated if node is not None]
    for node in repeated:
        yield from ast.walk(node)


@rule("predict-in-loop")
def predict_in_loop(module: ModuleContext) -> Iterator[Tuple[int, str]]:
    """Model evaluation inside a Python loop defeats batched inference.

    The xai estimators are built around vectorized single-call model
    evaluation (stack the inputs, predict once, reduce) — a ``predict`` /
    ``predict_proba`` / ``predict_fn`` / ``decision_function`` reference
    inside a per-iteration position of a loop or comprehension is a
    hot-path regression waiting to happen.  Intentional remnants (the
    loop-based reference oracle, bounded-memory chunking) are baselined
    with their rationale in ``lint-baseline.json``.
    """
    if module.package != "xai":
        return
    seen: Set[Tuple[int, int]] = set()
    for loop in module.walk(ast.For, ast.While, *_COMPREHENSIONS):
        for sub in _loop_repeated_nodes(loop):
            if isinstance(sub, ast.Name) and sub.id in _PREDICT_NAMES:
                name = sub.id
            elif isinstance(sub, ast.Attribute) and sub.attr in _PREDICT_NAMES:
                name = sub.attr
            else:
                continue
            key = (sub.lineno, sub.col_offset)
            if key in seen:
                continue
            seen.add(key)
            yield sub.lineno, (
                f"{name} used inside a Python loop — stack the inputs "
                "and evaluate the model in one batched call"
            )


_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})


def _is_lock_factory(call: ast.AST) -> bool:
    if not isinstance(call, ast.Call):
        return False
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    return False


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _with_holds_lock(stmt: ast.With, lock_names: Set[str]) -> bool:
    for item in stmt.items:
        attr = _self_attr(item.context_expr)
        if attr in lock_names:
            return True
    return False


def _scan_lock_usage(
    body: List[ast.stmt],
    lock_names: Set[str],
    under_lock: bool,
    sink: List[Tuple[str, int, bool, bool]],
) -> None:
    """Record (attr, lineno, is_write, under_lock) for every self.X touch."""
    for stmt in body:
        if isinstance(stmt, ast.With):
            inner = under_lock or _with_holds_lock(stmt, lock_names)
            for item in stmt.items:  # the context expr itself
                _collect_attr_touches(item.context_expr, under_lock, sink)
            _scan_lock_usage(stmt.body, lock_names, inner, sink)
            continue
        for field_name, value in ast.iter_fields(stmt):
            if field_name in ("body", "orelse", "finalbody"):
                _scan_lock_usage(value, lock_names, under_lock, sink)
            elif field_name == "handlers":
                for handler in value:
                    _scan_lock_usage(
                        handler.body, lock_names, under_lock, sink
                    )
            elif isinstance(value, ast.AST):
                _collect_attr_touches(value, under_lock, sink)
            elif isinstance(value, list):
                for element in value:
                    if isinstance(element, ast.stmt):
                        _scan_lock_usage(
                            [element], lock_names, under_lock, sink
                        )
                    elif isinstance(element, ast.AST):
                        _collect_attr_touches(element, under_lock, sink)


def _collect_attr_touches(
    node: ast.AST, under_lock: bool, sink: List[Tuple[str, int, bool, bool]]
) -> None:
    for sub in ast.walk(node):
        attr = _self_attr(sub)
        if attr is None:
            continue
        is_write = isinstance(sub.ctx, (ast.Store, ast.Del))
        sink.append((attr, sub.lineno, is_write, under_lock))


@rule("lock-discipline")
def lock_discipline(module: ModuleContext) -> Iterator[Tuple[int, str]]:
    """An attribute written under ``self._lock`` must always be accessed under it.

    If ``__init__`` creates a Lock and some method writes ``self.x``
    inside ``with self._lock:``, then any *other* access of ``self.x``
    outside the lock is a race window — the lock only protects what is
    consistently guarded.  ``__init__`` itself is exempt (no concurrent
    aliases exist yet).
    """
    for cls in module.walk(ast.ClassDef):
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_names: Set[str] = set()
        for method in methods:
            if method.name != "__init__":
                continue
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and _is_lock_factory(
                    node.value
                ):
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            lock_names.add(attr)
        if not lock_names:
            continue

        touches: Dict[str, List[Tuple[str, int, bool, bool]]] = {}
        for method in methods:
            sink: List[Tuple[str, int, bool, bool]] = []
            _scan_lock_usage(method.body, lock_names, False, sink)
            touches[method.name] = sink

        guarded: Set[str] = set()
        for method_name, sink in touches.items():
            if method_name == "__init__":
                continue
            for attr, _lineno, is_write, under_lock in sink:
                if is_write and under_lock and attr not in lock_names:
                    guarded.add(attr)

        for method_name, sink in touches.items():
            if method_name == "__init__":
                continue
            for attr, lineno, _is_write, under_lock in sink:
                if attr in guarded and not under_lock:
                    yield lineno, (
                        f"{cls.name}.{attr} is lock-guarded elsewhere but "
                        f"accessed without the lock in {method_name}()"
                    )


def _is_empty_list_init(value: ast.AST) -> bool:
    """``[]`` or ``list()`` — the start of an unbounded accumulator."""
    if isinstance(value, ast.List) and not value.elts:
        return True
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "list"
        and not value.args
        and not value.keywords
    )


def _empty_list_attrs(module: ModuleContext) -> Set[str]:
    """Attribute names assigned an empty list inside any ``__init__``."""
    attrs: Set[str] = set()
    for fn in module.walk(ast.FunctionDef):
        if fn.name != "__init__":
            continue
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and _is_empty_list_init(node.value):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None \
                    and _is_empty_list_init(node.value):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Attribute):
                    attrs.add(target.attr)
    return attrs


@rule("hotpath-accumulator")
def hotpath_accumulator(module: ModuleContext) -> Iterator[Tuple[int, str]]:
    """Per-event Python-list patterns that cap gateway capacity runs.

    The million-request pipeline (DESIGN.md §11) exists because the seed
    gateway accumulated one Python object per simulated request: list
    queues dequeued with ``pop(0)`` (O(queue) per service completion)
    and per-request ``.append`` onto unbounded instance lists (O(run)
    memory).  Inside ``repro.gateway`` this rule flags

    * any ``X.pop(0)`` call — a deque with ``popleft()`` is O(1) and
      drop-in for FIFO order, and
    * ``obj.attr.append(...)`` outside ``__init__`` where ``attr`` is
      initialised as an empty list in an ``__init__`` of the same module
      — the signature of an accumulator that grows with event count.

    Intentional remnants — the record-based oracle paths the columnar
    pipeline is checked against, and lists bounded by vocabulary rather
    than request count — are baselined with their rationale in
    ``lint-baseline.json``.
    """
    if module.package != "gateway":
        return
    for node in module.walk(ast.Call):
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == 0
        ):
            yield node.lineno, (
                "list.pop(0) is O(queue length) per dequeue — use "
                "collections.deque.popleft()"
            )
    accumulators = _empty_list_attrs(module)
    if not accumulators:
        return
    seen: Set[Tuple[int, int]] = set()
    for fn in module.walk(ast.FunctionDef, ast.AsyncFunctionDef):
        if fn.name == "__init__":
            continue
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr in accumulators
            ):
                key = (node.lineno, node.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                yield node.lineno, (
                    f"append onto {node.func.value.attr!r} (an empty-list "
                    "instance attribute) grows without bound on a gateway "
                    "hot path — stream into a sketch/reservoir or use a "
                    "bounded structure"
                )


_SLO_FACTORIES = frozenset({"SLODefinition", "BurnRateRule"})
_SLO_THRESHOLD_KWARGS = frozenset(
    {
        "target",
        "threshold",
        "factor",
        "short_seconds",
        "long_seconds",
        "budget_seconds",
    }
)
#: The one module allowed to spell SLO policy numbers: the declarative
#: definition catalogue (and loader) itself.
_SLO_DEFINITION_MODULES = frozenset({"slo/definitions.py"})


def _call_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_numeric_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(
            node.value, bool
        )
    # a negated literal (-0.5) parses as UnaryOp(USub, Constant)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _is_numeric_literal(node.operand)
    return False


@rule("slo-threshold-literal")
def slo_threshold_literal(module: ModuleContext) -> Iterator[Tuple[int, str]]:
    """SLO policy numbers belong in ``repro.slo.definitions`` (or a JSON
    file fed to ``load_definitions``), nowhere else.

    A ``target=0.99`` spelled inline at a construction site silently forks
    the objective from the declared catalogue: the dashboard, the burn-rate
    evaluator, and the incident narrative each believe a different number.
    Construction sites elsewhere must take thresholds from a loaded
    definition or a named catalogue entry, so this rule flags any numeric
    literal passed to ``SLODefinition``/``BurnRateRule`` outside the
    definitions module.
    """
    if module.relpath in _SLO_DEFINITION_MODULES:
        return
    for node in module.walk(ast.Call):
        name = _call_name(node.func)
        if name not in _SLO_FACTORIES:
            continue
        literal_args = [arg for arg in node.args if _is_numeric_literal(arg)]
        literal_kwargs = [
            kw.arg
            for kw in node.keywords
            if kw.arg in _SLO_THRESHOLD_KWARGS
            and _is_numeric_literal(kw.value)
        ]
        if literal_args or literal_kwargs:
            what = ", ".join(
                [f"positional #{i}" for i, _ in enumerate(literal_args, 1)]
                + list(literal_kwargs)
            )
            yield node.lineno, (
                f"hard-coded SLO threshold literal(s) ({what}) in "
                f"{name}(...) — declare objectives in "
                "repro.slo.definitions or load them via load_definitions()"
            )
