"""Incremental analysis cache: per-module results keyed by content hash.

A cold ``repro lint`` run spends nearly all its time in the per-module
phase — parsing, syntactic rules, CFG rules, summary extraction.  All of
that is a pure function of one module's bytes, so the cache stores, per
relpath: the source digest, the per-module findings, the serialized
:class:`~repro.analysis.symbols.ModuleSummary` (which feeds the global
phase), and the raw intra-repo imports (which rebuild the import graph
without parsing).  A warm ``--changed`` run re-analyzes only the *dirty
closure*: modules whose content hash moved, plus every module that
imports a dirty one, transitively — the reverse of the dependency edges
the layering contract already tracks.  Everything else is replayed from
the cache; the global phase (symbol table, call graph, project rules,
contracts) is cheap and recomputed every run from the union of fresh
and cached summaries, so whole-program findings stay exact.

The cache is invalidated wholesale when the engine version or the rule
catalogue changes: findings are only replayable if the probes that
produced them are identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.contracts import ImportGraphAnalyzer

__all__ = ["AnalysisCache", "CACHE_VERSION", "ModuleRecord"]

# Bump when the per-module result shape or any rule semantics change in
# a way the rule-id list does not capture.
# v2: CallSite records grew the in_loop flag (unbatched-kernel-call).
CACHE_VERSION = 2

RawImport = Tuple[str, Optional[Tuple[str, ...]], int]


@dataclass
class ModuleRecord:
    """Everything the per-module phase produced for one file."""

    digest: str
    findings: List[dict] = field(default_factory=list)
    summary: Optional[dict] = None  # ModuleSummary.to_dict(); None on syntax error
    raw_imports: List[RawImport] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "digest": self.digest,
            "findings": self.findings,
            "summary": self.summary,
            "raw_imports": [
                [target, list(names) if names is not None else None, lineno]
                for target, names, lineno in self.raw_imports
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleRecord":
        return cls(
            digest=data["digest"],
            findings=list(data.get("findings", [])),
            summary=data.get("summary"),
            raw_imports=[
                (target, tuple(names) if names is not None else None, lineno)
                for target, names, lineno in data.get("raw_imports", [])
            ],
        )


class AnalysisCache:
    """Load/validate/save the per-module result store."""

    def __init__(
        self, path: Optional[Path], rule_ids: Sequence[str]
    ) -> None:
        self.path = path
        self.rule_key = ",".join(sorted(rule_ids))
        self.records: Dict[str, ModuleRecord] = {}
        self.loaded_from_disk = False

    @classmethod
    def load(
        cls, path: Optional[Path], rule_ids: Sequence[str]
    ) -> "AnalysisCache":
        """Read the cache; mismatched version/rule catalogue means empty."""
        cache = cls(path, rule_ids)
        if path is None or not Path(path).is_file():
            return cache
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            return cache
        if (
            data.get("version") != CACHE_VERSION
            or data.get("rule_key") != cache.rule_key
        ):
            return cache
        for relpath, record in data.get("modules", {}).items():
            try:
                cache.records[relpath] = ModuleRecord.from_dict(record)
            except (KeyError, TypeError, ValueError):
                continue
        cache.loaded_from_disk = True
        return cache

    def save(self) -> None:
        if self.path is None:
            return
        payload = {
            "version": CACHE_VERSION,
            "rule_key": self.rule_key,
            "modules": {
                relpath: record.to_dict()
                for relpath, record in sorted(self.records.items())
            },
        }
        Path(self.path).write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )

    # -- invalidation --------------------------------------------------------

    def dirty_closure(self, digests: Dict[str, str]) -> Set[str]:
        """Relpaths needing re-analysis for the tree state in ``digests``.

        Seeds: new modules, modules whose digest moved, and (for graph
        purposes) modules that vanished.  The closure adds every cached
        module that transitively imports a seed, using the *cached*
        import edges — a changed module's new imports only affect its
        own (already dirty) result.
        """
        seeds: Set[str] = set()
        for relpath, digest in digests.items():
            record = self.records.get(relpath)
            if record is None or record.digest != digest:
                seeds.add(relpath)
        removed = set(self.records) - set(digests)

        if not seeds and not removed:
            return set()

        # Reverse-dependency closure over the cached import graph.
        analyzer = ImportGraphAnalyzer()
        for relpath, record in self.records.items():
            analyzer.add_raw_imports(relpath, record.raw_imports)
        analyzer.finalize()
        graph = analyzer.module_graph

        module_of = {
            relpath: _module_name(relpath) for relpath in self.records
        }
        by_module = {name: relpath for relpath, name in module_of.items()}

        frontier = [
            module_of[relpath]
            for relpath in (seeds | removed)
            if relpath in module_of
        ]
        dirty_modules: Set[str] = set(frontier)
        while frontier:
            node = frontier.pop()
            if node not in graph:
                continue
            for pred in graph.predecessors(node):
                if pred not in dirty_modules:
                    dirty_modules.add(pred)
                    frontier.append(pred)
        # A dirty package __init__ dirties its importers too via the
        # graph; map module names back to files that still exist.
        closure = {
            by_module[name]
            for name in dirty_modules
            if name in by_module and by_module[name] in digests
        }
        return closure | (seeds & set(digests))

    def prune(self, digests: Dict[str, str]) -> None:
        """Drop records for files no longer in the tree."""
        for relpath in set(self.records) - set(digests):
            del self.records[relpath]


def _module_name(relpath: str) -> str:
    parts = list(Path(relpath).parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts) if parts else "<root>"
