"""Cluster capacity runs: columnar workloads over a multi-node topology.

:class:`ClusterRunner` is the cluster sibling of
:class:`~repro.gateway.capacity.CapacityRunner`: the same single
:class:`~repro.gateway.records.RecordLog`, the same single event heap,
the same streaming per-route aggregates — plus everything a one-node run
never needs:

* **replica dispatch** — each request routes to the first *serving* node
  on its route's ring preference list (one attribute check per request
  when the cluster is healthy);
* **failover** — a typed failure (queue-full rejection, crash-lost row,
  partition-lost response) retries on the next live replica up to
  ``max_attempts``, then finalises with a typed error.  Nothing is ever
  silently dropped: every appended row is observed exactly once, as a
  success or as an interned, named failure (``conservation()`` exposes
  the ledger the failover tests assert on);
* **per-node attribution** — stats shard per (node, route); summaries
  merge back per route, per node, and cluster-wide, and exemplar events
  carry node-qualified sources (``"shap@node-3"``) plus a ``node_id``
  label so rollups shard per node downstream;
* **cross-node traces** — with ``trace_every=N``, every Nth request
  materialises a full span tree at completion time (no extra heap
  events): gateway legs on the entry node, queue/process on the serving
  node, one error span per failed attempt.  Spans carry ``node_id``
  attributes, so when entry ≠ serving the critical path provably spans
  two nodes.

Fault plans (:mod:`repro.cluster.faults`) are replayed onto the shared
heap; the runner owns all consequences — epoch-guarded services drop
stale completions, lost rows fail over here.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from math import ceil as _ceil, log as _mlog
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.faults import (
    FAULT_CRASH,
    FAULT_HEAL,
    FAULT_PARTITION,
    FAULT_POOL_CRASH,
    FAULT_RESTART,
    FAULT_RESTORE,
    FAULT_SLOW,
    FaultEvent,
    FaultPlan,
)
from repro.cluster.node import ClusterNode, NodeService
from repro.cluster.topology import ClusterTopology
from repro.gateway.arrivals import PoissonArrivalGroup, arrival_chunks
from repro.gateway.capacity import ARRIVAL_CHUNK, _SimCacheGate
from repro.gateway.loadgen import SummaryReport, ThreadGroup
from repro.gateway.records import RecordLog
from repro.gateway.simulation import _NO_ARG
from repro.gateway.sketches import QuantileSketch, RouteStats, StreamingMoments
from repro.serving.policy import ServingPolicy
from repro.telemetry.events import (
    KIND_POOL,
    KIND_RESPONSE,
    KIND_SERVING,
    KIND_UTILIZATION,
    TelemetryEvent,
)
from repro.tracing import NODE_ID_ATTR, TraceCollector, Tracer

__all__ = ["ClusterRunner", "node_source"]


def node_source(route: str, node_id: str) -> str:
    """The node-qualified telemetry source (``"shap@node-3"``) that
    shards rollup windows per node."""
    return f"{route}@{node_id}"


class _ClusterUser:
    """One closed-loop user pinned to an entry node.

    The cluster twin of ``capacity._VirtualUser``: a reusable state
    object whose bound method is the scheduled iteration callback.  The
    one structural difference: submission goes through the runner's
    replica scan instead of a pre-bound service, because the serving
    node can change under it mid-run.
    """

    __slots__ = ("runner", "entry", "route", "route_id", "payload_id",
                 "think", "delay", "remaining", "sim", "overhead", "log",
                 "step")

    def __init__(
        self,
        runner: "ClusterRunner",
        group: ThreadGroup,
        entry: ClusterNode,
    ) -> None:
        self.runner = runner
        self.entry = entry
        self.sim = runner.sim
        self.overhead = runner.overhead
        self.log = runner.log
        self.route = group.route
        self.route_id = runner.bind_route(group.route)
        self.payload_id = runner.log.intern_payload(group.payload)
        self.think = group.think_time
        #: response receipt (``end``) -> next submit: think + request leg
        self.delay = runner.overhead + group.think_time
        self.remaining = group.iterations
        self.step = self.advance if runner.trace_every else self._advance_untraced

    def advance(self) -> None:
        self.remaining -= 1
        runner = self.runner
        runner.sent += 1
        log = self.log
        row = log.append(
            self.route_id, self.payload_id, self.sim.now - self.overhead
        )
        in_flight = runner.in_flight + 1
        runner.in_flight = in_flight
        log.v_active[row] = in_flight
        if runner.sent % runner.trace_every == 0:
            log.slots[row] = _TracedJob(
                self if self.remaining > 0 else None,
                self.entry,
                self.route_id,
            )
        elif self.remaining > 0:
            log.slots[row] = self
        runner.submit(row, self.route_id)

    def _advance_untraced(self) -> None:
        self.remaining -= 1
        log = self.log
        row = log.append(
            self.route_id, self.payload_id, self.sim.now - self.overhead
        )
        runner = self.runner
        in_flight = runner.in_flight + 1
        runner.in_flight = in_flight
        log.v_active[row] = in_flight
        if self.remaining > 0:
            log.slots[row] = self
        runner.submit(row, self.route_id)


class _OpenLoopDriver:
    """Feeds one Poisson group's arrivals into the heap, chunk by chunk."""

    __slots__ = ("runner", "entry", "route", "route_id", "payload_id",
                 "chunks", "sim", "overhead", "log", "step")

    def __init__(
        self,
        runner: "ClusterRunner",
        group: PoissonArrivalGroup,
        entry: ClusterNode,
        rng: np.random.Generator,
    ) -> None:
        self.runner = runner
        self.entry = entry
        self.sim = runner.sim
        self.overhead = runner.overhead
        self.log = runner.log
        self.route = group.route
        self.route_id = runner.bind_route(group.route)
        self.payload_id = runner.log.intern_payload(group.payload)
        self.chunks = arrival_chunks(group, rng, ARRIVAL_CHUNK)
        self.step = self.fire if runner.trace_every else self._fire_untraced

    def load_chunk(self) -> None:
        """Bulk-load the next arrival chunk; chain the following load."""
        times = next(self.chunks, None)
        if times is None:
            return
        sim = self.sim
        fire = self.step
        schedule = sim.schedule
        shift = self.overhead - sim.now
        delays = (times + shift).tolist()
        for delay in delays:
            schedule(delay, fire)
        schedule(delays[-1], self.load_chunk)

    def fire(self) -> None:
        runner = self.runner
        runner.sent += 1
        log = self.log
        row = log.append(
            self.route_id, self.payload_id, self.sim.now - self.overhead
        )
        in_flight = runner.in_flight + 1
        runner.in_flight = in_flight
        log.v_active[row] = in_flight
        if runner.sent % runner.trace_every == 0:
            log.slots[row] = _TracedJob(None, self.entry, self.route_id)
        runner.submit(row, self.route_id)

    def _fire_untraced(self) -> None:
        log = self.log
        row = log.append(
            self.route_id, self.payload_id, self.sim.now - self.overhead
        )
        runner = self.runner
        in_flight = runner.in_flight + 1
        runner.in_flight = in_flight
        log.v_active[row] = in_flight
        runner.submit(row, self.route_id)


class _TracedJob:
    """A trace-sampled request: accumulates history, materialises at end.

    No span exists while the request is in flight — the whole tree is
    built retroactively from the row's columns and the recorded failover
    attempts when the request finally completes (same zero-extra-events
    stance as the service layer's stage materialisation).  ``user`` is
    the closed-loop owner to reschedule afterwards, if any.
    """

    __slots__ = ("user", "entry", "route_id", "attempts")

    def __init__(
        self,
        user: Optional[_ClusterUser],
        entry: ClusterNode,
        route_id: int,
    ) -> None:
        self.user = user
        self.entry = entry
        self.route_id = route_id
        #: (node_id, error_code, at) per failed attempt, in order.
        self.attempts: List[Tuple[str, int, float]] = []

    def complete(
        self,
        runner: "ClusterRunner",
        service: Optional[NodeService],
        row: int,
        end: float,
        ms: float,
        ok: bool,
        final_code: int = 0,
    ):
        """Materialise the span tree and hand control back to the owner.

        Returns the root span's context so the completion sink can stamp
        exemplar labels onto a sampled response event, when the same
        request is both traced and response-sampled.
        """
        tracer = runner.tracer
        log = runner.log
        entry_id = self.entry.node_id
        route = log.route_name(self.route_id)
        arrival = log.v_arrival[row]
        root = tracer.start_span(
            "cluster.request",
            start_time=arrival,
            attributes={NODE_ID_ATTR: entry_id, "route": route},
        )
        tracer.start_span(
            "gateway.route",
            parent=root,
            start_time=arrival,
            attributes={NODE_ID_ATTR: entry_id},
        ).end(at=arrival + runner.overhead)
        cursor = arrival + runner.overhead
        for node_id, code, failed_at in self.attempts:
            tracer.start_span(
                "service.attempt",
                parent=root,
                start_time=cursor,
                attributes={NODE_ID_ATTR: node_id},
            ).record_error(log.error_message(code)).end(at=failed_at)
            cursor = failed_at
        if ok and service is not None:
            serving = service.node
            start = log.v_start[row]
            finish = end - runner.overhead
            if start > cursor:
                tracer.start_span(
                    "service.queue",
                    parent=root,
                    start_time=cursor,
                    attributes={NODE_ID_ATTR: serving.node_id},
                ).end(at=start)
            tracer.start_span(
                "service.process",
                parent=root,
                start_time=start,
                attributes={NODE_ID_ATTR: serving.node_id, "route": route},
            ).end(at=finish)
            tracer.start_span(
                "gateway.respond",
                parent=root,
                start_time=finish,
                attributes={NODE_ID_ATTR: entry_id},
            ).end(at=end)
            if serving is not self.entry:
                runner.cross_node_traces += 1
            stats = service.stats
        else:
            reason = log.error_message(final_code)
            tracer.start_span(
                "cluster.failover",
                parent=root,
                start_time=cursor,
                attributes={NODE_ID_ATTR: entry_id},
            ).record_error(reason).end(at=end)
            root.record_error(reason)
            stats = runner.lost_stats(self.route_id)
        root.end(at=end)
        stats.exemplars.offer(ms, end, route, root.context)
        user = self.user
        if user is not None:
            _heappush(
                runner._sim_queue,
                (
                    end + user.delay,
                    next(runner._sim_counter),
                    user.step,
                    _NO_ARG,
                ),
            )
        return root.context


class ClusterRunner:
    """Drives columnar workloads against a :class:`ClusterTopology`.

    Parameters
    ----------
    topology:
        The cluster control plane (nodes + ring + replica placement).
        The runner registers itself as the membership listener so
        autoscaler joins/drains rebind the data plane.
    retain_records:
        ``True`` keeps every row (exact oracles); ``False`` recycles
        completed rows — memory bounded by the in-flight count.
    trace_every:
        Materialise a full cross-node span tree for every Nth request
        (0 disables).
    max_attempts:
        Dispatch attempts per request (1 primary + retries) before the
        typed ``failover retries exhausted`` error.
    telemetry, topic:
        Optional telemetry target for :meth:`run`'s bounded summary,
        per-node and exemplar events.
    response_every:
        Publish every Nth completion as a live telemetry event stream
        (0 disables — the default, so capacity benches are untouched):
        a node-qualified latency event per sampled success plus an
        ``ok:<route>`` 0/1 availability event per sampled completion.
        This is the event feed the SLO burn-rate evaluator watches;
        sampled requests that are also traced carry exemplar labels.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        retain_records: bool = False,
        seed: int = 0,
        trace_every: int = 0,
        max_attempts: int = 3,
        series_slots: int = 512,
        exemplar_slots: int = 8,
        relative_accuracy: float = 0.005,
        telemetry=None,
        topic: str = "cluster",
        initial_capacity: int = 4096,
        max_traces: int = 1024,
        response_every: int = 0,
        serving: Optional[ServingPolicy] = None,
    ) -> None:
        if trace_every < 0:
            raise ValueError("trace_every must be >= 0")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if response_every < 0:
            raise ValueError("response_every must be >= 0")
        self.topology = topology
        self.sim = topology.sim
        self.overhead = topology.overhead_seconds
        self.log = RecordLog(initial_capacity, retain=retain_records)
        self.seed = seed
        self.trace_every = trace_every
        self.max_attempts = max_attempts
        self.series_slots = series_slots
        self.exemplar_slots = exemplar_slots
        self.relative_accuracy = relative_accuracy
        self.telemetry = telemetry
        self.topic = topic
        self.response_every = response_every
        #: hot-path sampling stride; 0 when disabled *or* untargeted, so
        #: the completion sink pays one attribute check when off
        self._publish_every = response_every if telemetry is not None else 0
        self._completions = 0
        self.collector = TraceCollector(max_traces=max_traces)
        self.tracer = Tracer(
            clock=lambda: self.sim.now, collector=self.collector, seed=seed
        )
        # -- conservation ledger: appended == observed at drain, always
        self.sent = 0
        self.in_flight = 0
        self.observed = 0
        self.final_failures = 0
        self.failovers = 0
        self.lost_in_flight = 0
        self.lost_responses = 0
        self.pool_worker_crashes = 0
        self.pool_redispatched = 0
        self.cross_node_traces = 0
        self.fault_log: List[Tuple[float, str, str]] = []
        #: (node_id, route_id) -> streaming aggregate
        self.node_route_stats: Dict[Tuple[str, int], RouteStats] = {}
        self._lost_stats: Dict[int, RouteStats] = {}
        #: route id -> preference-ordered service list (rebuilt on
        #: membership change, *not* on faults — dispatch skips dead nodes
        #: via the node ``serving`` flag)
        self._route_services: List[List[NodeService]] = []
        self._bound_routes: Dict[int, str] = {}
        self._node_ordinal: Dict[str, int] = {}
        #: row -> failover attempts so far; only rows that ever failed
        #: over appear here (empty for the whole run when no faults fire)
        self._attempts: Dict[int, int] = {}
        self._free = None if retain_records else self.log._free
        self._sim_queue = self.sim._queue
        self._sim_counter = self.sim._counter
        self._groups = 0
        self._err_no_replica = self.log.intern_error(
            "no live replica (503)"
        )
        self._err_exhausted = self.log.intern_error(
            "failover retries exhausted (503)"
        )
        self._err_crash = self.log.intern_error(
            "node crash: request lost (retried)"
        )
        self._err_partition = self.log.intern_error(
            "network partition: response lost (retried)"
        )
        #: serving policy applied to every attached station; None keeps
        #: the classic per-row dispatch path untouched
        self.serving = serving
        self.shed_requests = 0
        self.cache_hits = 0
        self._cache_gates: Dict[int, _SimCacheGate] = {}
        self._cache_stats: Dict[int, RouteStats] = {}
        if serving is not None:
            # instance attribute shadows the method: workload drivers
            # call ``runner.submit`` and land on the serving variant
            self.submit = self._submit_serving
        topology.set_listener(self)

    # -- wiring --------------------------------------------------------------

    def bind_route(self, route: str) -> int:
        """Resolve a route: intern it, bind its replica stations."""
        route_id = self.log.intern_route(route)
        if route_id in self._bound_routes:
            return route_id
        self.topology.route_spec(route)  # raises on unknown routes
        self._bound_routes[route_id] = route
        while len(self._route_services) <= route_id:
            self._route_services.append([])
        self._rebind_route(route_id)
        policy = self.serving
        if (
            policy is not None
            and policy.cache_size > 0
            and route_id not in self._cache_gates
        ):
            # the gate only needs lookup(); the submit wrapper is unused
            # here because the cluster completes hits via _cache_complete
            self._cache_gates[route_id] = _SimCacheGate(
                self, route, None, policy
            )
        return route_id

    def _rebind_route(self, route_id: int) -> None:
        route = self._bound_routes[route_id]
        services = []
        for node in self.topology.replica_nodes(route):
            service = node.services[route]
            if service.stats is None:
                self._attach(service, route_id)
            services.append(service)
        self._route_services[route_id] = services

    def _attach(self, service: NodeService, route_id: int) -> None:
        node_id = service.node.node_id
        ordinal = self._node_ordinal.setdefault(
            node_id, len(self._node_ordinal)
        )
        if self.serving is not None:
            service.configure_serving(self.serving)
        service.bind(self.log, self.sim, self._row_completed)
        service.stats = RouteStats(
            service.route,
            seed=self.seed + 7_919 * (route_id + 1) + 104_729 * (ordinal + 1),
            relative_accuracy=self.relative_accuracy,
            series_slots=self.series_slots,
            exemplar_slots=self.exemplar_slots,
        )
        self.node_route_stats[(node_id, route_id)] = service.stats

    def membership_changed(self, node: ClusterNode) -> None:
        """Topology listener: a node joined or drained; rebind placement."""
        for route_id in self._bound_routes:
            self._rebind_route(route_id)

    def lost_stats(self, route_id: int) -> RouteStats:
        """The node-less aggregate for requests no node could answer."""
        stats = self._lost_stats.get(route_id)
        if stats is None:
            stats = RouteStats(
                self.log.route_name(route_id),
                seed=self.seed + 7_919 * (route_id + 1),
                relative_accuracy=self.relative_accuracy,
                series_slots=self.series_slots,
                exemplar_slots=self.exemplar_slots,
            )
            self._lost_stats[route_id] = stats
        return stats

    # -- workloads -----------------------------------------------------------

    def _next_entry(self) -> ClusterNode:
        live = self.topology.live_nodes()
        if not live:
            raise RuntimeError("no serving nodes to attach a workload to")
        entry = live[self._groups % len(live)]
        self._groups += 1
        return entry

    def add_thread_group(self, group: ThreadGroup) -> None:
        """Schedule a closed-loop group (JMeter linear ramp-up); users
        spread round-robin over the serving nodes as entry points."""
        spacing = (
            group.rampup_seconds / group.n_threads if group.n_threads else 0.0
        )
        for thread in range(group.n_threads):
            user = _ClusterUser(self, group, self._next_entry())
            self.sim.schedule(thread * spacing + self.overhead, user.step)

    def add_open_loop(self, group: PoissonArrivalGroup) -> None:
        """Schedule an open-loop Poisson arrival group."""
        entry = self._next_entry()
        rng = np.random.default_rng(self.seed + 104_729 * self._groups)
        driver = _OpenLoopDriver(self, group, entry, rng)
        driver.load_chunk()

    def apply_fault_plan(self, plan: FaultPlan) -> None:
        """Replay a fault plan onto the shared heap."""
        for event in plan:
            self.sim.schedule_call(event.at, self._apply_fault, event)

    # -- hot path ------------------------------------------------------------

    def submit(self, row: int, route_id: int) -> None:
        """Dispatch a row to the first serving replica of its route."""
        for service in self._route_services[route_id]:
            if service.node.serving:
                service.submit_row(row)
                return
        self._final_fail(row, self._err_no_replica)

    def _submit_serving(self, row: int, route_id: int) -> None:
        """Serving-mode dispatch: cache probe, then the batched station.

        Installed over :meth:`submit` when a policy is configured.  A
        cache hit completes the row at the entry gateway without any
        service work; misses flow to the first serving replica's
        micro-batcher, which may coalesce, queue, or shed them.
        """
        gate = self._cache_gates.get(route_id)
        if gate is not None and gate.lookup(self.sim.now):
            self.cache_hits += 1
            self._cache_complete(row, route_id)
            return
        for service in self._route_services[route_id]:
            if service.node.serving:
                service.submit_row_serving(row)
                return
        self._final_fail(row, self._err_no_replica)

    def cache_stats(self, route_id: int) -> RouteStats:
        """The entry-gateway aggregate for cache-served requests."""
        stats = self._cache_stats.get(route_id)
        if stats is None:
            stats = RouteStats(
                self.log.route_name(route_id),
                seed=self.seed + 6_700_417 * (route_id + 1),
                relative_accuracy=self.relative_accuracy,
                series_slots=self.series_slots,
                exemplar_slots=self.exemplar_slots,
            )
            self._cache_stats[route_id] = stats
        return stats

    def _cache_complete(self, row: int, route_id: int) -> None:
        """Complete a cache-hit row at the entry gateway (no station work).

        The row still pays the gateway legs (arrival → response), so a
        hit's latency is the pure routing overhead — the cluster
        analogue of serving a SHAP attribution out of the explanation
        cache instead of re-running the kernel.
        """
        log = self.log
        now = self.sim.now
        log.v_start[row] = now
        end = now + self.overhead
        log.v_end[row] = end
        ms = (end - log.v_arrival[row]) * 1000.0
        stats = self.cache_stats(route_id)
        stats.observe(end, ms, True, log.v_active[row])
        owner = log.slots[row]
        context = None
        if owner is not None:
            log.slots[row] = None
            if owner.__class__ is _ClusterUser:
                _heappush(
                    self._sim_queue,
                    (
                        end + owner.delay,
                        next(self._sim_counter),
                        owner.step,
                        _NO_ARG,
                    ),
                )
            else:
                # traced cache hit: a single-span tree at the entry node
                root = self.tracer.start_span(
                    "cluster.request",
                    start_time=log.v_arrival[row],
                    attributes={
                        NODE_ID_ATTR: owner.entry.node_id,
                        "route": log.route_name(route_id),
                        "cache": "hit",
                    },
                )
                root.end(at=end)
                context = root.context
                stats.exemplars.offer(
                    ms, end, log.route_name(route_id), root.context
                )
                user = owner.user
                if user is not None:
                    _heappush(
                        self._sim_queue,
                        (
                            end + user.delay,
                            next(self._sim_counter),
                            user.step,
                            _NO_ARG,
                        ),
                    )
        if self._publish_every:
            self._completions += 1
            if self._completions % self._publish_every == 0:
                route = log.route_name(route_id)
                event = TelemetryEvent(
                    source=f"ok:{route}",
                    value=1.0,
                    timestamp=end,
                    kind=KIND_RESPONSE,
                )
                if context is not None:
                    event.with_trace(context.trace_id, context.span_id)
                self.telemetry.publish(self.topic, event)
        self.in_flight -= 1
        self.observed += 1
        if self._attempts:
            self._attempts.pop(row, None)
        free = self._free
        if free is not None:
            free.append(row)

    def _row_completed(self, service: NodeService, row: int, ok: bool) -> None:
        """Per-request completion sink (all replicas share this method).

        The streaming fold is :meth:`RouteStats.observe` inlined, exactly
        as in ``CapacityRunner`` — the sink fires once per simulated
        request and a four-argument call costs as much as the fold.  The
        failure and partition branches leave the hot path immediately.
        """
        if not ok or not service.node.reachable:
            self._completed_exceptional(service, row, ok)
            return
        log = self.log
        end = self.sim.now + self.overhead
        log.v_end[row] = end
        ms = (end - log.v_arrival[row]) * 1000.0
        stats = service.stats
        slots = log.slots
        owner = slots[row]
        context = None
        if owner is not None:
            slots[row] = None
            if owner.__class__ is _ClusterUser:
                _heappush(
                    self._sim_queue,
                    (
                        end + owner.delay,
                        next(self._sim_counter),
                        owner.step,
                        _NO_ARG,
                    ),
                )
            else:
                context = owner.complete(self, service, row, end, ms, True)
        if self._publish_every:
            self._completions += 1
            if self._completions % self._publish_every == 0:
                self._publish_response(service, row, end, ms, True, context)
        latency = stats.latency
        if ms < latency.min:
            latency.min = ms
        if ms > latency.max:
            latency.max = ms
        if ms > 0.0:
            index = _ceil(_mlog(ms) * latency._inv_log_gamma)
            bins = latency._bins
            try:  # after warmup the bin almost always exists
                bins[index] += 1
            except KeyError:
                bins[index] = 1
        else:
            latency._zeros += 1
        moments = stats.moments
        count = moments.count + 1
        moments.count = count
        delta = ms - moments.mean
        mean = moments.mean + delta / count
        moments.mean = mean
        moments._m2 += delta * (ms - mean)
        series = stats.series
        seen = series.seen + 1
        if seen > series.k and seen != series._next:
            series.seen = seen
        else:
            series.offer(end, ms, log.v_active[row])
        self.in_flight -= 1
        self.observed += 1
        if self._attempts:
            self._attempts.pop(row, None)
        free = self._free
        if free is not None:
            free.append(row)

    def _publish_response(
        self, service, row, end, ms, ok, context
    ) -> None:
        """Emit one sampled completion onto the telemetry bus.

        Successes publish a node-qualified latency event (trace-stamped
        when the request was also trace-sampled) plus the availability
        tick; final failures publish only the 0-valued availability tick
        — both land on the same ``ok:<route>`` source so a rollup window
        over it is a success ratio.
        """
        route = self.log.route_name(self.log.v_route_ids[row])
        telemetry = self.telemetry
        if ok:
            node_id = service.node.node_id
            event = TelemetryEvent(
                source=node_source(route, node_id),
                value=ms,
                timestamp=end,
                kind=KIND_RESPONSE,
            )
            event.with_node(node_id)
            if context is not None:
                event.with_trace(context.trace_id, context.span_id)
            telemetry.publish(self.topic, event)
        telemetry.publish(
            self.topic,
            TelemetryEvent(
                source=f"ok:{route}",
                value=1.0 if ok else 0.0,
                timestamp=end,
                kind=KIND_RESPONSE,
            ),
        )

    # -- failover (cold path) ------------------------------------------------

    def _completed_exceptional(
        self, service: NodeService, row: int, ok: bool
    ) -> None:
        if ok:
            # the station finished the work, but its node is partitioned:
            # the response cannot reach the gateway — typed retry
            self.lost_responses += 1
            self._failover(row, service.node, self._err_partition)
        else:
            code = int(self.log.v_error_codes[row])
            if code == service._err_shed:
                # admission control shed the request *deliberately* —
                # retrying on a replica would convert load shedding into
                # load spreading and defeat the overload protection, so
                # a shed is final and keeps its typed 503
                self._final_shed(row, code)
                return
            # typed rejection (queue full): the log row already carries
            # the interned error; try the next replica before giving up
            self._failover(row, service.node, code)

    def _failover(
        self, row: int, failed_node: ClusterNode, code: int
    ) -> None:
        log = self.log
        owner = log.slots[row]
        if owner is not None and owner.__class__ is _TracedJob:
            owner.attempts.append((failed_node.node_id, code, self.sim.now))
        attempts = self._attempts.get(row, 0) + 1
        if attempts < self.max_attempts:
            for service in self._route_services[log.v_route_ids[row]]:
                node = service.node
                if node is not failed_node and node.serving:
                    self._attempts[row] = attempts
                    self.failovers += 1
                    # clear failure residue so the retry's completion
                    # reads a clean row
                    log.v_ok[row] = True
                    log.v_error_codes[row] = 0
                    service.submit_row(row)
                    return
            final_code = self._err_no_replica
        else:
            final_code = self._err_exhausted
        self._final_fail(row, final_code)

    def _final_shed(self, row: int, code: int) -> None:
        """Finalise a deliberately-shed row; mark the stride sample.

        Same ledger as :meth:`_final_fail`, plus the ``shed:<route>``
        marker published on the *same* stride as the 0-valued
        availability tick — so after WAL replay, a window's shed count
        can be subtracted from its failure count to attribute burn to
        "deliberately shed" vs "failed" (see
        :func:`repro.slo.attribute_unavailability`).
        """
        self.shed_requests += 1
        if self._publish_every and (
            (self._completions + 1) % self._publish_every == 0
        ):
            route = self.log.route_name(self.log.v_route_ids[row])
            self.telemetry.publish(
                self.topic,
                TelemetryEvent(
                    source=f"shed:{route}",
                    value=1.0,
                    timestamp=self.sim.now,
                    kind=KIND_SERVING,
                ),
            )
        self._final_fail(row, code)

    def _final_fail(self, row: int, code: int) -> None:
        """Finalise a row nobody could serve: typed error, full ledger."""
        log = self.log
        now = self.sim.now
        log.fail(row, code, now)
        route_id = log.v_route_ids[row]
        stats = self.lost_stats(route_id)
        stats.n_errors += 1
        self.final_failures += 1
        owner = log.slots[row]
        if owner is not None:
            log.slots[row] = None
            if owner.__class__ is _ClusterUser:
                _heappush(
                    self._sim_queue,
                    (
                        now + owner.delay,
                        next(self._sim_counter),
                        owner.step,
                        _NO_ARG,
                    ),
                )
            else:
                ms = (now - log.v_arrival[row]) * 1000.0
                owner.complete(self, None, row, now, ms, False, code)
        if self._publish_every:
            self._completions += 1
            if self._completions % self._publish_every == 0:
                self._publish_response(None, row, now, 0.0, False, None)
        self.in_flight -= 1
        self.observed += 1
        if self._attempts:
            self._attempts.pop(row, None)
        free = self._free
        if free is not None:
            free.append(row)

    # -- faults --------------------------------------------------------------

    def _apply_fault(self, event: FaultEvent) -> None:
        kind = event.kind
        topology = self.topology
        self.fault_log.append((self.sim.now, kind, event.node_id))
        if kind == FAULT_CRASH:
            node = topology.nodes[event.node_id]
            lost = topology.crash_node(event.node_id)
            self.lost_in_flight += len(lost)
            for row in lost:
                self._failover(row, node, self._err_crash)
        elif kind == FAULT_RESTART:
            topology.restart_node(event.node_id)
        elif kind == FAULT_PARTITION:
            topology.partition_node(event.node_id)
        elif kind == FAULT_HEAL:
            topology.heal_node(event.node_id)
        elif kind == FAULT_SLOW:
            topology.degrade_node(event.node_id, event.factor)
        elif kind == FAULT_RESTORE:
            topology.restore_node(event.node_id)
        elif kind == FAULT_POOL_CRASH:
            # resubmission is internal to the station: no failover, no
            # ledger movement — conservation must reconcile unchanged
            self.pool_worker_crashes += 1
            self.pool_redispatched += topology.nodes[
                event.node_id
            ].crash_pool_worker()

    # -- reporting -----------------------------------------------------------

    def conservation(self) -> Dict[str, int]:
        """The zero-loss ledger: every appended row observed exactly once."""
        return {
            "appended": self.log.appended,
            "observed": self.observed,
            "in_flight": self.in_flight,
            "final_failures": self.final_failures,
            "failovers": self.failovers,
            "lost_in_flight": self.lost_in_flight,
            "lost_responses": self.lost_responses,
            "stale_completions": sum(
                service.stale_completions
                for node in self.topology.nodes.values()
                for service in node.services.values()
            ),
            "shed_requests": self.shed_requests,
            "cache_hits": self.cache_hits,
            # pool-worker crashes resubmit internally: these two count
            # the injections and the rows that went back out, while the
            # appended == observed identity must hold regardless
            "pool_worker_crashes": self.pool_worker_crashes,
            "pool_redispatched": self.pool_redispatched,
        }

    def _stats_by_route(self) -> Dict[int, List[RouteStats]]:
        grouped: Dict[int, List[RouteStats]] = {}
        for (node_id, route_id), stats in self.node_route_stats.items():
            if stats.n_requests > 0:
                grouped.setdefault(route_id, []).append(stats)
        for route_id, stats in self._lost_stats.items():
            if stats.n_requests > 0:
                grouped.setdefault(route_id, []).append(stats)
        for route_id, stats in self._cache_stats.items():
            if stats.n_requests > 0:
                grouped.setdefault(route_id, []).append(stats)
        return grouped

    def summary(self, duration: float) -> SummaryReport:
        """Cluster-wide report: sketches merged across nodes, then routes."""
        grouped = self._stats_by_route()
        if not grouped:
            return SummaryReport(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, duration)
        report = self._merged_report(
            [s for bundle in grouped.values() for s in bundle], duration
        )
        if len(grouped) > 1:
            for route_id in sorted(grouped):
                report.per_route[self.log.route_name(route_id)] = (
                    self._merged_report(grouped[route_id], duration)
                )
        return report

    def summary_by_node(self, duration: float) -> Dict[str, SummaryReport]:
        """Per-node rollup: one merged report per node that saw traffic."""
        per_node: Dict[str, List[RouteStats]] = {}
        for (node_id, _), stats in self.node_route_stats.items():
            if stats.n_requests > 0:
                per_node.setdefault(node_id, []).append(stats)
        return {
            node_id: self._merged_report(bundle, duration)
            for node_id, bundle in sorted(per_node.items())
        }

    def _merged_report(
        self, bundle: List[RouteStats], duration: float
    ) -> SummaryReport:
        merged_sketch = QuantileSketch(self.relative_accuracy)
        merged_moments = StreamingMoments()
        n_requests = 0
        n_errors = 0
        timeline = []
        for stats in bundle:
            merged_sketch.merge(stats.latency)
            merged_moments.merge(stats.moments)
            n_requests += stats.n_requests
            n_errors += stats.n_errors
            timeline.extend(stats.timeline())
        timeline.sort()
        n_ok = n_requests - n_errors
        if n_ok:
            avg = merged_moments.mean
            median = merged_sketch.quantile(0.5)
            p95 = merged_sketch.quantile(0.95)
            p99 = merged_sketch.quantile(0.99)
            peak = merged_sketch.max
        else:
            avg = median = p95 = p99 = peak = 0.0
        return SummaryReport(
            n_requests=n_requests,
            n_errors=n_errors,
            avg_response_ms=avg,
            median_response_ms=median,
            p95_response_ms=p95,
            max_response_ms=peak,
            throughput_rps=n_ok / duration if duration > 0 else 0.0,
            duration_seconds=duration,
            p99_response_ms=p99,
            timeline=timeline,
        )

    def exemplar_events(self) -> List[TelemetryEvent]:
        """Kept exemplars as node-sharded, trace-linked response events.

        Sources are node-qualified (:func:`node_source`), and every event
        additionally carries the ``node_id`` label — so a rollup over
        these events shards per node *and* each window resolves back to
        its (possibly cross-node) traces after WAL replay.
        """
        events = []
        for (node_id, route_id) in sorted(self.node_route_stats):
            stats = self.node_route_stats[(node_id, route_id)]
            route = self.log.route_name(route_id)
            for ms, end, _, trace in stats.exemplars.items():
                event = TelemetryEvent(
                    source=node_source(route, node_id),
                    value=ms,
                    timestamp=end,
                    kind=KIND_RESPONSE,
                    attrs={"exemplar": 1.0},
                )
                event.with_trace(trace.trace_id, trace.span_id)
                event.with_node(node_id)
                events.append(event)
        return events

    def serving_summary(self) -> Dict[str, dict]:
        """Per-(route, node) batching counters plus cluster cache/shed.

        Shaped for reports and the CLI: one entry per route with a
        ``nodes`` sub-map (batching counters per station), the route's
        cache counters when the gate is enabled, and the cluster-wide
        shed/hit ledger under ``"_totals"``.
        """
        if self.serving is None:
            return {}
        out: Dict[str, dict] = {}
        for route_id, route in sorted(self._bound_routes.items()):
            nodes: Dict[str, dict] = {}
            for service in self._route_services[route_id]:
                batches = service.batches_flushed
                entry_node = {
                    "batches": batches,
                    "rows_batched": service.rows_batched,
                    "mean_batch": (
                        service.rows_batched / batches if batches else 0.0
                    ),
                    "by_size": service.flushed_by_size,
                    "by_deadline": service.flushed_by_deadline,
                    "peak_batch": service.batch_size_peak,
                    "shed_rows": service.shed_rows,
                }
                if service._pool_workers:
                    entry_node["pool"] = {
                        "workers": service._pool_workers,
                        "batches": service.pool_batches,
                        "rows": service.pool_rows,
                        "crashes": service.pool_crashes,
                        "restarts": service.pool_restarts,
                        "resubmitted": service.pool_resubmitted,
                        "peak_inflight": service.pool_peak_inflight,
                    }
                nodes[service.node.node_id] = entry_node
            entry: Dict[str, object] = {"nodes": nodes}
            gate = self._cache_gates.get(route_id)
            if gate is not None:
                entry["cache"] = gate.cache.counters()
                entry["cache_hit_rate"] = gate.cache.hit_rate
            out[route] = entry
        out["_totals"] = {
            "shed_requests": self.shed_requests,
            "cache_hits": self.cache_hits,
        }
        return out

    def serving_events(self, at: float) -> List[TelemetryEvent]:
        """Batch/cache/shed counters as ``KIND_SERVING`` events.

        One node-qualified ``serving:<route>@<node>`` event per batching
        station, one ``cache:<route>`` hit-rate event per gate, and one
        cumulative ``shed_total:<route>`` counter snapshot.  The
        snapshot rides a separate source from the per-sample
        ``shed:<route>`` stride markers :meth:`_final_shed` publishes
        live, so summing the marker series (what
        :func:`repro.slo.attribute_unavailability` does per window)
        never double-counts.
        """
        events: List[TelemetryEvent] = []
        if self.serving is None:
            return events
        shed_by_route: Dict[str, int] = {}
        for route_id, route in sorted(self._bound_routes.items()):
            for service in self._route_services[route_id]:
                batches = service.batches_flushed
                node_id = service.node.node_id
                event = TelemetryEvent(
                    source="serving:" + node_source(route, node_id),
                    value=(
                        service.rows_batched / batches if batches else 0.0
                    ),
                    timestamp=at,
                    kind=KIND_SERVING,
                    attrs={
                        "batches": float(batches),
                        "rows": float(service.rows_batched),
                        "by_size": float(service.flushed_by_size),
                        "by_deadline": float(service.flushed_by_deadline),
                        "peak": float(service.batch_size_peak),
                        "shed": float(service.shed_rows),
                    },
                )
                event.with_node(node_id)
                events.append(event)
                if service._pool_workers:
                    batches = service.pool_batches
                    pool_event = TelemetryEvent(
                        source="pool:" + node_source(route, node_id),
                        value=float(service.pool_backlog),
                        timestamp=at,
                        kind=KIND_POOL,
                        attrs={
                            "workers": float(service._pool_workers),
                            "batches": float(batches),
                            "rows": float(service.pool_rows),
                            "mean_fan_out": (
                                service.pool_rows / batches
                                if batches
                                else 0.0
                            ),
                            "peak_inflight": float(
                                service.pool_peak_inflight
                            ),
                            "crashes": float(service.pool_crashes),
                            "restarts": float(service.pool_restarts),
                            "resubmitted": float(service.pool_resubmitted),
                            "busy_seconds": service.pool_busy_seconds,
                        },
                    )
                    pool_event.with_node(node_id)
                    events.append(pool_event)
                if service.shed_rows:
                    shed_by_route[route] = (
                        shed_by_route.get(route, 0) + service.shed_rows
                    )
            gate = self._cache_gates.get(route_id)
            if gate is not None:
                events.append(gate.event(at))
        for route, count in sorted(shed_by_route.items()):
            events.append(
                TelemetryEvent(
                    source=f"shed_total:{route}",
                    value=float(count),
                    timestamp=at,
                    kind=KIND_SERVING,
                )
            )
        return events

    def node_events(self, timestamp: float) -> List[TelemetryEvent]:
        """One utilization snapshot per node (queue depth + lifecycle)."""
        events = []
        for node_id in self.topology.node_ids():
            node = self.topology.nodes[node_id]
            event = TelemetryEvent(
                source=node_source("node", node_id),
                value=float(node.queue_depth),
                timestamp=timestamp,
                kind=KIND_UTILIZATION,
                attrs={
                    "busy_workers": float(node.busy_workers),
                    "inflight_rows": float(node.inflight_rows),
                    "crashes": float(node.crashes),
                    "serving": 1.0 if node.serving else 0.0,
                },
            )
            event.with_node(node_id)
            events.append(event)
        return events

    def run(self, until: Optional[float] = None) -> SummaryReport:
        """Run to completion; publish bounded summary + exemplar events."""
        end_time = self.sim.run(until=until)
        report = self.summary(end_time)
        if self.telemetry is not None:
            for event in report.to_events(timestamp=end_time):
                self.telemetry.publish(self.topic, event)
            for event in self.exemplar_events():
                self.telemetry.publish(self.topic, event)
            for event in self.node_events(end_time):
                self.telemetry.publish(self.topic, event)
            for event in self.serving_events(end_time):
                self.telemetry.publish(self.topic, event)
            self.telemetry.pump()
        return report

    def records(self):
        """The classic ``RequestRecord`` views (requires retain mode)."""
        return self.log.records()
