"""Fault injection plans: declarative crash/partition/slow schedules.

A :class:`FaultPlan` is a list of timestamped :class:`FaultEvent`\\ s the
cluster runner replays onto the shared simulator heap — the same heap
that drives requests, so faults land *between* request events exactly
where a real outage would.  Plans are data, not behaviour: the runner
owns the consequences (failing over lost rows, counting retries), the
plan only says *what* happens to *which* node *when*.

Plans can be built programmatically (:meth:`FaultPlan.add_crash` etc.)
or parsed from the compact CLI grammar (:meth:`FaultPlan.parse`)::

    crash:node-2@5            crash node-2 at t=5s, no restart
    crash:node-2@5:12         crash at 5s, restart at 12s
    partition:node-3@4:6      partition at 4s for 6s, then heal
    slow:node-1@2:8:3.0       3.0x service times from 2s for 8s
    poolcrash:node-1@3        kill one kernel-pool worker at t=3s
                              (instant restart; its batch resubmits)

Multiple events are comma-separated; times are simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

__all__ = [
    "FAULT_CRASH",
    "FAULT_HEAL",
    "FAULT_PARTITION",
    "FAULT_POOL_CRASH",
    "FAULT_RESTART",
    "FAULT_RESTORE",
    "FAULT_SLOW",
    "FaultEvent",
    "FaultPlan",
]

#: Fault event kinds.  ``restart``/``heal``/``restore`` are the closing
#: halves the convenience builders emit alongside their opening event.
FAULT_CRASH = "crash"
FAULT_RESTART = "restart"
FAULT_PARTITION = "partition"
FAULT_HEAL = "heal"
FAULT_SLOW = "slow"
FAULT_RESTORE = "restore"
#: Kill one kernel-pool worker on the node: the worker restarts
#: immediately and its in-flight batch is resubmitted — unlike a node
#: crash, nothing is failed over, so conservation must still hold.
FAULT_POOL_CRASH = "poolcrash"

_KINDS = frozenset(
    {
        FAULT_CRASH,
        FAULT_RESTART,
        FAULT_PARTITION,
        FAULT_HEAL,
        FAULT_SLOW,
        FAULT_RESTORE,
        FAULT_POOL_CRASH,
    }
)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what happens to which node at what time."""

    kind: str
    node_id: str
    at: float
    #: Service-time multiplier; only meaningful for ``slow`` events.
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(_KINDS)}"
            )
        if self.at < 0:
            raise ValueError("fault time must be >= 0")
        if self.kind == FAULT_SLOW and self.factor <= 0:
            raise ValueError("slow factor must be positive")


class FaultPlan:
    """An ordered schedule of fault events for one cluster run."""

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self._events: List[FaultEvent] = sorted(
            events, key=lambda e: (e.at, e.node_id, e.kind)
        )

    # -- builders ------------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultPlan":
        self._events.append(event)
        self._events.sort(key=lambda e: (e.at, e.node_id, e.kind))
        return self

    def add_crash(
        self, node_id: str, at: float, restart_at: float = -1.0
    ) -> "FaultPlan":
        """Crash ``node_id`` at ``at``; restart later if ``restart_at`` >= 0."""
        self.add(FaultEvent(FAULT_CRASH, node_id, at))
        if restart_at >= 0:
            if restart_at <= at:
                raise ValueError("restart must come after the crash")
            self.add(FaultEvent(FAULT_RESTART, node_id, restart_at))
        return self

    def add_partition(
        self, node_id: str, at: float, duration: float
    ) -> "FaultPlan":
        """Partition ``node_id`` for ``duration`` seconds, then heal."""
        if duration <= 0:
            raise ValueError("partition duration must be positive")
        self.add(FaultEvent(FAULT_PARTITION, node_id, at))
        self.add(FaultEvent(FAULT_HEAL, node_id, at + duration))
        return self

    def add_slow(
        self, node_id: str, at: float, duration: float, factor: float
    ) -> "FaultPlan":
        """Degrade ``node_id`` by ``factor`` for ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("slow duration must be positive")
        self.add(FaultEvent(FAULT_SLOW, node_id, at, factor=factor))
        self.add(FaultEvent(FAULT_RESTORE, node_id, at + duration))
        return self

    def add_pool_crash(self, node_id: str, at: float) -> "FaultPlan":
        """Kill one kernel-pool worker on ``node_id`` at ``at``."""
        return self.add(FaultEvent(FAULT_POOL_CRASH, node_id, at))

    # -- parsing -------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the CLI grammar (see module docstring) into a plan."""
        plan = cls()
        for chunk in filter(None, (p.strip() for p in spec.split(","))):
            try:
                kind, rest = chunk.split(":", 1)
                target, timing = rest.split("@", 1)
                parts = timing.split(":")
            except ValueError:
                raise ValueError(
                    f"malformed fault spec {chunk!r}; expected "
                    "kind:node@t[:arg[:arg]]"
                ) from None
            times = [float(p) for p in parts]
            if kind == FAULT_CRASH and len(times) == 1:
                plan.add_crash(target, times[0])
            elif kind == FAULT_CRASH and len(times) == 2:
                plan.add_crash(target, times[0], restart_at=times[1])
            elif kind == FAULT_PARTITION and len(times) == 2:
                plan.add_partition(target, times[0], times[1])
            elif kind == FAULT_SLOW and len(times) == 3:
                plan.add_slow(target, times[0], times[1], times[2])
            elif kind == FAULT_POOL_CRASH and len(times) == 1:
                plan.add_pool_crash(target, times[0])
            else:
                raise ValueError(
                    f"malformed fault spec {chunk!r}: {kind!r} takes "
                    "crash@t[:restart_t], partition@t:duration, "
                    "slow@t:duration:factor, or poolcrash@t"
                )
        return plan

    # -- access --------------------------------------------------------------

    @property
    def events(self) -> List[FaultEvent]:
        """The schedule, ordered by time (copy; plans stay immutable-ish)."""
        return list(self._events)

    def nodes(self) -> List[str]:
        """Distinct node ids the plan touches, sorted."""
        return sorted({e.node_id for e in self._events})

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)
