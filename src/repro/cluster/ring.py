"""Consistent-hash ring: route placement with minimal movement on churn.

The cluster places every route (and any other string key) on nodes via
classic consistent hashing with virtual nodes: each physical node owns
``vnodes`` points on a 64-bit ring, a key hashes to a point and walks
clockwise to the first node point.  Two properties make this the right
primitive for an elastic deployment:

* **balance** — with enough virtual nodes per physical node the key
  space splits near-uniformly (the hypothesis suite bounds the skew
  across 1k routes);
* **minimal movement** — adding or removing one node only reassigns the
  keys that land on (or leave) that node's arcs, ~K/N of K keys across N
  nodes, never a full reshuffle (also property-tested: every key that
  moves on a join moves *to* the joining node).

Hashing is FNV-1a/64 with a splitmix64 finaliser — stable across
processes and runs, unlike Python's salted ``hash()``, so placements are
reproducible and assertable in tests.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, List, Sequence

__all__ = ["ConsistentHashRing", "stable_hash64"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1


def stable_hash64(key: str) -> int:
    """Deterministic 64-bit hash of a string (FNV-1a + splitmix64 mix).

    Python's builtin ``hash`` is randomised per process (PYTHONHASHSEED),
    which would make ring placement unreproducible; FNV-1a is stable, and
    the splitmix64 finaliser disperses the low entropy of short, similar
    keys (``node-1#17`` vs ``node-1#18``) across the whole word.
    """
    h = _FNV_OFFSET
    for byte in key.encode("utf-8"):
        h = ((h ^ byte) * _FNV_PRIME) & _MASK
    # splitmix64 finaliser
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK
    return h ^ (h >> 31)


class ConsistentHashRing:
    """Virtual-node consistent-hash ring over string node ids.

    Parameters
    ----------
    vnodes:
        Virtual points per physical node.  More points → tighter balance
        at O(vnodes) membership-change cost; 128 keeps 1k-key skew well
        inside the property-test tolerance.
    """

    def __init__(self, vnodes: int = 128) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[int] = []  # sorted vnode hashes
        self._owner: Dict[int, str] = {}  # vnode hash -> node id
        self._nodes: List[str] = []

    # -- membership ---------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """Member node ids, sorted."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def add_node(self, node_id: str) -> None:
        """Insert a node's virtual points (idempotence is an error)."""
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already on the ring")
        for i in range(self.vnodes):
            point = stable_hash64(f"{node_id}#{i}")
            # 64-bit hash collisions across vnode keys are ~2^-64·points²;
            # refuse rather than silently overwrite an owner if one hits
            if point in self._owner:
                raise RuntimeError(
                    f"vnode hash collision between {node_id!r} and "
                    f"{self._owner[point]!r}"
                )
            self._owner[point] = node_id
            insort(self._points, point)
        self._nodes.append(node_id)

    def remove_node(self, node_id: str) -> None:
        """Withdraw a node's virtual points (keys flow to the successors)."""
        if node_id not in self._nodes:
            raise KeyError(f"node {node_id!r} not on the ring")
        keep = []
        for point in self._points:
            if self._owner[point] == node_id:
                del self._owner[point]
            else:
                keep.append(point)
        self._points = keep
        self._nodes.remove(node_id)

    # -- lookups ------------------------------------------------------------

    def node_for(self, key: str) -> str:
        """The owning node: first vnode point clockwise of the key's hash."""
        if not self._points:
            raise LookupError("ring has no nodes")
        points = self._points
        index = bisect_right(points, stable_hash64(key))
        if index == len(points):
            index = 0  # wrap past the top of the ring
        return self._owner[points[index]]

    def preference(self, key: str, n: int) -> List[str]:
        """The first ``n`` *distinct* nodes clockwise of the key.

        This is the key's replica set: index 0 is the primary, the rest
        are failover targets in deterministic order.  ``n`` larger than
        the membership returns every node (a small cluster replicates
        everywhere).
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        if not self._points:
            raise LookupError("ring has no nodes")
        points = self._points
        owner = self._owner
        index = bisect_right(points, stable_hash64(key))
        wanted = min(n, len(self._nodes))
        out: List[str] = []
        for step in range(len(points)):
            node = owner[points[(index + step) % len(points)]]
            if node not in out:
                out.append(node)
                if len(out) == wanted:
                    break
        return out

    def assignments(self, keys: Sequence[str]) -> Dict[str, List[str]]:
        """Keys grouped by owning node (balance/movement test helper)."""
        grouped: Dict[str, List[str]] = {node: [] for node in self._nodes}
        for key in keys:
            grouped[self.node_for(key)].append(key)
        return grouped
