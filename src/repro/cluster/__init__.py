"""Sharded multi-node deployment: ring placement, failover, fault plans.

The paper's §V scaling story ("augment dynamically the capacity of each
individual metric") needs more than one simulated gateway node; this
package is the cluster above :mod:`repro.gateway`'s single-node engine:

* :class:`ConsistentHashRing` — virtual-node consistent hashing; routes
  land on ``replication`` nodes with minimal movement on join/leave.
* :class:`ClusterTopology` — membership + placement control plane over
  :class:`ClusterNode`\\ s, whose epoch-guarded stations can crash with
  work in flight without corrupting the shared columnar log.
* :class:`FaultPlan` — declarative crash/restart, partition/heal and
  slow-node schedules replayed onto the shared event heap.
* :class:`ClusterRunner` — the data plane: columnar million-request
  workloads with replica failover, typed (never silent) failures,
  per-node stats sharding and retroactively materialised cross-node
  traces.
* :class:`ClusterAutoscaler` — rollup-pressure controller that joins or
  drains nodes through the telemetry pipeline.

Everything runs on the *single* discrete-event heap and the *single*
:class:`~repro.gateway.records.RecordLog` of DESIGN.md §11, so an
8-node, million-request run with an active fault plan keeps bounded
memory in ring mode.  DESIGN.md §12 documents the architecture;
``python -m repro cluster`` drives it from the command line.
"""

from repro.cluster.autoscale import (
    AutoscalePolicy,
    ClusterAutoscaler,
    ScalingDecision,
)
from repro.cluster.faults import (
    FAULT_CRASH,
    FAULT_HEAL,
    FAULT_PARTITION,
    FAULT_POOL_CRASH,
    FAULT_RESTART,
    FAULT_RESTORE,
    FAULT_SLOW,
    FaultEvent,
    FaultPlan,
)
from repro.cluster.node import (
    NODE_DOWN,
    NODE_DRAINING,
    NODE_UP,
    ClusterNode,
    NodeService,
)
from repro.cluster.ring import ConsistentHashRing, stable_hash64
from repro.cluster.runner import ClusterRunner, node_source
from repro.cluster.topology import (
    ClusterTopology,
    RouteSpec,
    paper_route_specs,
)

__all__ = [
    "AutoscalePolicy",
    "ClusterAutoscaler",
    "ClusterNode",
    "ClusterRunner",
    "ClusterTopology",
    "ConsistentHashRing",
    "FAULT_CRASH",
    "FAULT_HEAL",
    "FAULT_PARTITION",
    "FAULT_POOL_CRASH",
    "FAULT_RESTART",
    "FAULT_RESTORE",
    "FAULT_SLOW",
    "FaultEvent",
    "FaultPlan",
    "NODE_DOWN",
    "NODE_DRAINING",
    "NODE_UP",
    "NodeService",
    "RouteSpec",
    "ScalingDecision",
    "node_source",
    "paper_route_specs",
    "stable_hash64",
]
