"""Cluster nodes: per-node service stations with crash-safe completions.

A :class:`ClusterNode` is one simulated gateway/service host.  It owns a
:class:`NodeService` per route — the columnar M/G/c station of
:class:`~repro.gateway.services.MicroService`, re-derived here with the
one capability that class cannot absorb: **a node can die with work in
flight**.

Crash safety hinges on *epoch tokens*.  Every in-service completion is
scheduled on the shared event heap as ``(epoch << 32) | row``; a crash
bumps the service epoch, so completions scheduled before the crash
arrive with a stale epoch and are dropped and counted instead of
completing a row that was already failed over (and possibly recycled)
elsewhere.  Without the guard, a restarted ring-mode run would let a
ghost completion from the dead node corrupt whatever request now owns
that row slot.

Node states form a small machine (documented in DESIGN.md §12):

``UP ↔ DOWN`` via crash/restart (crash loses in-flight + queued rows,
which the runner fails over), ``UP ↔ UP/unreachable`` via
partition/heal (the node keeps computing but responses are lost), and
``UP → DRAINING`` when the autoscaler retires a node (no new dispatch,
in-flight work finishes normally).
"""

from __future__ import annotations

from collections import deque
from heapq import heappush as _heappush
from typing import Deque, Dict, List, Set

from repro.gateway.records import RecordLog
from repro.gateway.services import SERVICE_TIME_BATCH, ServiceTimeModel
from repro.gateway.simulation import Simulator
from repro.serving.admission import SHED_ERROR_MESSAGE

__all__ = [
    "NODE_DOWN",
    "NODE_DRAINING",
    "NODE_UP",
    "ClusterNode",
    "NodeService",
]

#: Node lifecycle states (see the module docstring's state machine).
NODE_UP = "up"
NODE_DOWN = "down"
NODE_DRAINING = "draining"

_ROW_MASK = (1 << 32) - 1


class NodeService:
    """One route's station on one node: c workers, FIFO queue, epoch guard.

    The hot path mirrors ``MicroService.use_columnar`` — pre-sampled
    service-time batches, direct heap pushes, queue-head-before-sink —
    but every scheduled completion carries the service epoch so crashes
    can invalidate outstanding work in O(1).
    """

    __slots__ = (
        "route",
        "node",
        "service_time",
        "concurrency",
        "queue_capacity",
        "stats",
        "completed_rows",
        "rejected_rows",
        "stale_completions",
        "_epoch",
        "_slow",
        "_busy",
        "_busy_seconds",
        "_inflight",
        "_waiting",
        "_log",
        "_sim",
        "_sink",
        "_sim_queue",
        "_sim_counter",
        "_finish_cb",
        "_st_buffers",
        "_st_last_id",
        "_st_last_buf",
        "_err_queue_full",
        "serving",
        "shed_rows",
        "batches_flushed",
        "rows_batched",
        "flushed_by_size",
        "flushed_by_deadline",
        "batch_size_peak",
        "_srv_pending",
        "_srv_epochs",
        "_srv_queued",
        "_srv_max_batch",
        "_srv_window",
        "_srv_marginal",
        "_srv_shed_depth",
        "_err_shed",
        "_flush_deadline_cb",
        "_finish_batch_cb",
        "_pool_workers",
        "_pool_busy",
        "_pool_waiting",
        "_pool_inflight",
        "_pool_seq",
        "_pool_busy_seconds",
        "_pool_peak_queue",
        "pool_batches",
        "pool_rows",
        "pool_crashes",
        "pool_restarts",
        "pool_resubmitted",
        "pool_peak_inflight",
        "_finish_pool_batch_cb",
    )

    def __init__(
        self,
        route: str,
        node: "ClusterNode",
        service_time: ServiceTimeModel,
        concurrency: int,
        queue_capacity: int = 1000,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0")
        self.route = route
        self.node = node
        self.service_time = service_time
        self.concurrency = concurrency
        self.queue_capacity = queue_capacity
        #: Per-(node, route) stats bundle, attached by the runner at bind
        #: time so the completion sink reaches it without a dict probe.
        self.stats = None
        self.completed_rows = 0
        self.rejected_rows = 0
        self.stale_completions = 0
        self._epoch = 0
        self._slow = 1.0
        self._busy = 0
        self._busy_seconds = 0.0
        self._inflight: Set[int] = set()
        self._waiting: Deque[int] = deque()
        self._log: RecordLog = None  # type: ignore[assignment]
        self._sim: Simulator = None  # type: ignore[assignment]
        self._sink = None
        self._sim_queue = None
        self._sim_counter = None
        self._finish_cb = self._finish
        self._st_buffers: Dict[int, list] = {}
        self._st_last_id = -1
        self._st_last_buf: list = []
        self._err_queue_full = 0
        # Serving-mode bindings (configure_serving); None keeps the
        # classic per-row path untouched.
        self.serving = None
        self.shed_rows = 0
        self.batches_flushed = 0
        self.rows_batched = 0
        self.flushed_by_size = 0
        self.flushed_by_deadline = 0
        self.batch_size_peak = 0
        self._srv_pending: Dict[int, list] = {}
        self._srv_epochs: Dict[int, int] = {}
        self._srv_queued = 0
        self._srv_max_batch = 0
        self._srv_window = 0.0
        self._srv_marginal = 0.0
        self._srv_shed_depth = 0
        self._err_shed = 0
        self._flush_deadline_cb = self._flush_deadline
        self._finish_batch_cb = self._finish_batch
        # Kernel-pool bindings (policy.pool_workers > 0): the cluster
        # mirror of MicroService's pool tier, with the extra rule that a
        # *node* crash loses pool work (failed over by the runner) while
        # a pool-*worker* crash only resubmits it.
        self._pool_workers = 0
        self._pool_busy = 0
        self._pool_waiting: Deque[list] = deque()
        self._pool_inflight: Dict[int, tuple] = {}
        self._pool_seq = 0
        self._pool_busy_seconds = 0.0
        self._pool_peak_queue = 0
        self.pool_batches = 0
        self.pool_rows = 0
        self.pool_crashes = 0
        self.pool_restarts = 0
        self.pool_resubmitted = 0
        self.pool_peak_inflight = 0
        self._finish_pool_batch_cb = self._finish_pool_batch

    # -- wiring --------------------------------------------------------------

    def bind(self, log: RecordLog, sim: Simulator, sink) -> None:
        """Attach the shared log/heap and the runner's completion sink.

        ``sink(service, row, ok)`` runs once per finished row — the extra
        ``service`` argument (vs the ``MicroService`` sink) is how the
        runner learns *which node* answered, for per-node stats and for
        partition/failover decisions.
        """
        self._log = log
        self._sim = sim
        self._sink = sink
        self._sim_queue = sim._queue
        self._sim_counter = sim._counter
        self._err_queue_full = log.intern_error(
            f"queue full at {self.node.node_id}/{self.route} (503)"
        )
        if self.serving is not None:
            self._intern_shed_error()

    def configure_serving(self, policy) -> None:
        """Enable micro-batched dispatch + admission control on this station.

        The cluster mirror of ``MicroService.configure_serving``: rows
        submitted through :meth:`submit_row_serving` coalesce per
        payload shape, flush on size or window expiry, and occupy one
        worker for ``draw * (1 + (n-1)*batch_marginal)``.  Batch
        completions ride the same epoch guard as row completions, so a
        crash mid-batch drops the stale finish and the runner fails the
        rows over.  The shed error keeps the ``503 shed`` prefix (with
        a node/route suffix) so WAL replay and SLO attribution can
        separate deliberate shedding from failure cluster-wide.
        """
        self.serving = policy
        self._srv_pending = {}
        self._srv_epochs = {}
        self._srv_queued = 0
        self._srv_max_batch = policy.max_batch
        self._srv_window = policy.batch_window
        self._srv_marginal = policy.batch_marginal
        self._srv_shed_depth = policy.shed_depth
        self._pool_workers = policy.pool_workers
        if self._log is not None:
            self._intern_shed_error()

    def _intern_shed_error(self) -> None:
        # SHED_ERROR_MESSAGE prefix + node/route suffix: is_shed_error()
        # still matches, per-node attribution stays possible
        self._err_shed = self._log.intern_error(
            f"{SHED_ERROR_MESSAGE} at {self.node.node_id}/{self.route}"
        )

    # -- hot path ------------------------------------------------------------

    def submit_row(self, row: int) -> None:
        """Accept (or typed-reject) a columnar request at the current time."""
        if self._busy < self.concurrency:
            self._busy += 1
            self._start_row(row)
        elif len(self._waiting) < self.queue_capacity:
            self._waiting.append(row)
        else:
            self.rejected_rows += 1
            self._log.fail(row, self._err_queue_full, self._sim.now)
            self._sink(self, row, False)

    def _start_row(self, row: int) -> None:
        log = self._log
        now = self._sim.now
        log.v_start[row] = now
        self._inflight.add(row)
        payload_id = log.v_payload_ids[row]
        if payload_id == self._st_last_id:
            buffer = self._st_last_buf
        else:
            buffer = self._st_buffers.get(payload_id)
            if buffer is None:
                buffer = [self.service_time.sample_batch(
                    log.payload_name(payload_id), SERVICE_TIME_BATCH
                ).tolist(), 0]
                self._st_buffers[payload_id] = buffer
            self._st_last_id = payload_id
            self._st_last_buf = buffer
        values, pos = buffer
        if pos >= len(values):
            values = self.service_time.sample_batch(
                log.payload_name(payload_id), SERVICE_TIME_BATCH
            ).tolist()
            buffer[0] = values
            pos = 0
        buffer[1] = pos + 1
        _heappush(
            self._sim_queue,
            (
                now + values[pos] * self._slow,
                next(self._sim_counter),
                self._finish_cb,
                (self._epoch << 32) | row,
            ),
        )

    def _finish(self, token: int) -> None:
        if (token >> 32) != self._epoch:
            # scheduled before a crash: the row was failed over already
            self.stale_completions += 1
            return
        row = token & _ROW_MASK
        self._inflight.discard(row)
        now = self._sim.now
        self._busy_seconds += now - self._log.v_start[row]
        self.completed_rows += 1
        # freed worker takes the queue head *before* the sink runs, so a
        # saturated station never idles across a completion
        if self._waiting:
            entry = self._waiting.popleft()
            if type(entry) is list:
                self._start_batch(entry)
            else:
                self._start_row(entry)
        else:
            self._busy -= 1
        self._sink(self, row, True)

    # -- serving mode (micro-batched) hot path -------------------------------

    def submit_row_serving(self, row: int) -> None:
        """Accept, batch, or shed a columnar request at the current time."""
        if self._srv_shed_depth and self._srv_queued >= self._srv_shed_depth:
            self.shed_rows += 1
            self._log.fail(row, self._err_shed, self._sim.now)
            self._sink(self, row, False)
            return
        payload_id = self._log.v_payload_ids[row]
        pending = self._srv_pending.get(payload_id)
        if pending is None:
            pending = []
            self._srv_pending[payload_id] = pending
            self._srv_epochs[payload_id] = 0
        pending.append(row)
        self._srv_queued += 1
        if len(pending) >= self._srv_max_batch:
            self.flushed_by_size += 1
            self._flush_payload(payload_id)
        elif len(pending) == 1:
            _heappush(
                self._sim_queue,
                (
                    self._sim.now + self._srv_window,
                    next(self._sim_counter),
                    self._flush_deadline_cb,
                    (self._srv_epochs[payload_id], payload_id),
                ),
            )

    def _flush_deadline(self, token) -> None:
        """Window-expiry flush; stale epochs are already-flushed groups."""
        epoch, payload_id = token
        if epoch != self._srv_epochs.get(payload_id, -1):
            return
        if self._srv_pending.get(payload_id):
            self.flushed_by_deadline += 1
            self._flush_payload(payload_id)

    def _flush_payload(self, payload_id: int) -> None:
        batch = self._srv_pending[payload_id]
        self._srv_pending[payload_id] = []
        self._srv_epochs[payload_id] += 1
        if self._pool_workers:
            self._dispatch_pool_batch(batch)
            return
        if self._busy < self.concurrency:
            self._busy += 1
            self._start_batch(batch)
        elif len(self._waiting) < self.queue_capacity:
            # a parked batch is one fused unit of work — one queue entry
            self._waiting.append(batch)
        else:
            log = self._log
            now = self._sim.now
            code = self._err_queue_full
            n = len(batch)
            self.rejected_rows += n
            self._srv_queued -= n
            sink = self._sink
            for row in batch:
                log.fail(row, code, now)
                sink(self, row, False)

    def _start_batch(self, batch: list) -> None:
        """Start one fused batch on a claimed worker (one draw, n rows)."""
        log = self._log
        now = self._sim.now
        n = len(batch)
        self._srv_queued -= n
        inflight = self._inflight
        for row in batch:
            log.v_start[row] = now
            inflight.add(row)
        payload_id = log.v_payload_ids[batch[0]]
        if payload_id == self._st_last_id:
            buffer = self._st_last_buf
        else:
            buffer = self._st_buffers.get(payload_id)
            if buffer is None:
                buffer = [self.service_time.sample_batch(
                    log.payload_name(payload_id), SERVICE_TIME_BATCH
                ).tolist(), 0]
                self._st_buffers[payload_id] = buffer
            self._st_last_id = payload_id
            self._st_last_buf = buffer
        values, pos = buffer
        if pos >= len(values):
            values = self.service_time.sample_batch(
                log.payload_name(payload_id), SERVICE_TIME_BATCH
            ).tolist()
            buffer[0] = values
            pos = 0
        buffer[1] = pos + 1
        duration = (
            values[pos] * self._slow * (1.0 + (n - 1) * self._srv_marginal)
        )
        self.batches_flushed += 1
        self.rows_batched += n
        if n > self.batch_size_peak:
            self.batch_size_peak = n
        _heappush(
            self._sim_queue,
            (
                now + duration,
                next(self._sim_counter),
                self._finish_batch_cb,
                (self._epoch, batch),
            ),
        )

    def _finish_batch(self, token) -> None:
        epoch, batch = token
        if epoch != self._epoch:
            # scheduled before a crash: every row was failed over already
            self.stale_completions += len(batch)
            return
        now = self._sim.now
        log = self._log
        inflight = self._inflight
        for row in batch:
            inflight.discard(row)
        # one worker held for the whole fused call
        self._busy_seconds += now - log.v_start[batch[0]]
        self.completed_rows += len(batch)
        if self._waiting:
            entry = self._waiting.popleft()
            if type(entry) is list:
                self._start_batch(entry)
            else:
                self._start_row(entry)
        else:
            self._busy -= 1
        sink = self._sink
        for row in batch:
            sink(self, row, True)

    # -- simulated kernel pool (policy.pool_workers > 0) ---------------------

    def _sample_service(self, payload_id: int) -> float:
        """One service-time draw off the pre-sampled buffers."""
        if payload_id == self._st_last_id:
            buffer = self._st_last_buf
        else:
            buffer = self._st_buffers.get(payload_id)
            if buffer is None:
                buffer = [self.service_time.sample_batch(
                    self._log.payload_name(payload_id), SERVICE_TIME_BATCH
                ).tolist(), 0]
                self._st_buffers[payload_id] = buffer
            self._st_last_id = payload_id
            self._st_last_buf = buffer
        values, pos = buffer
        if pos >= len(values):
            values = self.service_time.sample_batch(
                self._log.payload_name(payload_id), SERVICE_TIME_BATCH
            ).tolist()
            buffer[0] = values
            pos = 0
        buffer[1] = pos + 1
        return values[pos]

    def _dispatch_pool_batch(self, batch: list) -> None:
        """Route one flushed batch to the pool tier (park if saturated)."""
        if self._pool_busy < self._pool_workers:
            self._start_pool_batch(batch)
        else:
            waiting = self._pool_waiting
            waiting.append(batch)
            if len(waiting) > self._pool_peak_queue:
                self._pool_peak_queue = len(waiting)

    def _start_pool_batch(self, batch: list, resubmit: bool = False) -> None:
        """Occupy one pool worker with a fused batch (one draw, n rows).

        ``resubmit`` re-dispatches a crash-orphaned batch without
        advancing the batch/row counters, so telemetry never
        double-counts.  Dispatch ids are monotonic and never reused —
        an orphaned completion can only miss the in-flight map, never
        collide with a later batch.
        """
        log = self._log
        now = self._sim.now
        n = len(batch)
        if not resubmit:
            self._pool_busy += 1
            self._srv_queued -= n
            for row in batch:
                log.v_start[row] = now
            self.batches_flushed += 1
            self.rows_batched += n
            self.pool_batches += 1
            self.pool_rows += n
            if n > self.batch_size_peak:
                self.batch_size_peak = n
        inflight = len(self._pool_inflight) + 1
        if inflight > self.pool_peak_inflight:
            self.pool_peak_inflight = inflight
        duration = (
            self._sample_service(log.v_payload_ids[batch[0]])
            * self._slow
            * (1.0 + (n - 1) * self._srv_marginal)
        )
        self._pool_seq += 1
        dispatch_id = self._pool_seq
        self._pool_inflight[dispatch_id] = (batch, now)
        _heappush(
            self._sim_queue,
            (
                now + duration,
                next(self._sim_counter),
                self._finish_pool_batch_cb,
                dispatch_id,
            ),
        )

    def _finish_pool_batch(self, dispatch_id: int) -> None:
        entry = self._pool_inflight.pop(dispatch_id, None)
        if entry is None:
            # orphaned: either a pool-worker crash resubmitted the batch
            # under a new id, or a node crash failed its rows over —
            # both already accounted the rows, so drop silently
            return
        batch, started = entry
        now = self._sim.now
        self._pool_busy_seconds += now - started
        self.completed_rows += len(batch)
        self._pool_busy -= 1
        if self._pool_waiting and self._pool_busy < self._pool_workers:
            self._start_pool_batch(self._pool_waiting.popleft())
        sink = self._sink
        for row in batch:
            sink(self, row, True)

    def crash_pool_worker(self) -> int:
        """Kill one pool worker; returns rows re-dispatched.

        The oldest in-flight batch is resubmitted onto the
        instantly-restarted worker with a fresh draw — nothing is lost,
        nothing double-counts, conservation holds by construction.
        """
        if not self._pool_workers:
            return 0
        self.pool_crashes += 1
        self.pool_restarts += 1
        if not self._pool_inflight:
            return 0
        dispatch_id = min(self._pool_inflight)
        batch, _started = self._pool_inflight.pop(dispatch_id)
        self.pool_resubmitted += len(batch)
        self._start_pool_batch(batch, resubmit=True)
        return len(batch)

    @property
    def pool_backlog(self) -> int:
        """In-flight plus parked pool batches."""
        return len(self._pool_inflight) + len(self._pool_waiting)

    @property
    def pool_busy_seconds(self) -> float:
        return self._pool_busy_seconds

    # -- fault surface -------------------------------------------------------

    def crash(self) -> List[int]:
        """Invalidate the station: return every owned row for failover.

        Bumping the epoch orphans all scheduled completions (they arrive
        stale); in-flight, queued and batch-pending rows are handed back
        to the runner to retry on a replica or typed-fail.
        """
        self._epoch += 1
        lost = list(self._inflight)
        for entry in self._waiting:
            if type(entry) is list:
                lost.extend(entry)
            else:
                lost.append(entry)
        # serving mode: unflushed coalescing groups die with the node;
        # bumping each payload epoch orphans their pending window timers
        for payload_id, pending in self._srv_pending.items():
            if pending:
                lost.extend(pending)
                self._srv_pending[payload_id] = []
            self._srv_epochs[payload_id] += 1
        self._srv_queued = 0
        # pool tier: in-flight and parked pool batches die with the node
        # (their orphaned completions find their dispatch ids gone)
        for batch, _started in self._pool_inflight.values():
            lost.extend(batch)
        for batch in self._pool_waiting:
            lost.extend(batch)
        self._pool_inflight.clear()
        self._pool_waiting.clear()
        self._pool_busy = 0
        self._inflight.clear()
        self._waiting.clear()
        self._busy = 0
        return lost

    def set_slow(self, factor: float) -> None:
        """Degrade (or restore, with 1.0) the station's service times."""
        if factor <= 0:
            raise ValueError("slow factor must be positive")
        self._slow = factor

    # -- introspection -------------------------------------------------------

    @property
    def busy_workers(self) -> int:
        return self._busy

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    @property
    def inflight_rows(self) -> int:
        return len(self._inflight)

    @property
    def busy_seconds(self) -> float:
        return self._busy_seconds

    @property
    def epoch(self) -> int:
        return self._epoch


class ClusterNode:
    """One simulated host: a bundle of per-route stations plus lifecycle.

    ``serving`` is the single flag the dispatch hot path reads; fault and
    autoscaler transitions (rare) keep it consistent with ``state`` and
    ``reachable``.
    """

    __slots__ = (
        "node_id",
        "services",
        "state",
        "reachable",
        "serving",
        "slow_factor",
        "crashes",
        "restarts",
        "partitions",
        "heals",
    )

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.services: Dict[str, NodeService] = {}
        self.state = NODE_UP
        self.reachable = True
        self.serving = True
        self.slow_factor = 1.0
        self.crashes = 0
        self.restarts = 0
        self.partitions = 0
        self.heals = 0

    def add_service(self, service: NodeService) -> None:
        if service.route in self.services:
            raise ValueError(
                f"node {self.node_id} already hosts route {service.route!r}"
            )
        self.services[service.route] = service

    # -- state transitions ----------------------------------------------------

    def crash(self) -> List[int]:
        """UP/DRAINING → DOWN; returns every row the node was holding."""
        if self.state == NODE_DOWN:
            raise RuntimeError(f"node {self.node_id} is already down")
        self.state = NODE_DOWN
        self.serving = False
        self.crashes += 1
        lost: List[int] = []
        for service in self.services.values():
            lost.extend(service.crash())
        return lost

    def restart(self) -> None:
        """DOWN → UP: fresh epochs already in place, ready to serve."""
        if self.state != NODE_DOWN:
            raise RuntimeError(f"node {self.node_id} is not down")
        self.state = NODE_UP
        self.slow_factor = 1.0
        self.restarts += 1
        self.serving = self.reachable

    def partition(self) -> None:
        """Sever the network: node keeps computing, responses are lost."""
        if not self.reachable:
            raise RuntimeError(f"node {self.node_id} is already partitioned")
        self.reachable = False
        self.serving = False
        self.partitions += 1

    def heal(self) -> None:
        """Rejoin the network after a partition."""
        if self.reachable:
            raise RuntimeError(f"node {self.node_id} is not partitioned")
        self.reachable = True
        self.heals += 1
        self.serving = self.state == NODE_UP

    def drain(self) -> None:
        """UP → DRAINING: no new dispatch, in-flight finishes normally."""
        if self.state != NODE_UP:
            raise RuntimeError(f"node {self.node_id} cannot drain ({self.state})")
        self.state = NODE_DRAINING
        self.serving = False

    def degrade(self, factor: float) -> None:
        """Slow every station on the node by ``factor`` (1.0 restores)."""
        self.slow_factor = factor
        for service in self.services.values():
            service.set_slow(factor)

    def crash_pool_worker(self) -> int:
        """Kill one kernel-pool worker per pool-enabled station.

        Returns the total rows re-dispatched.  A DOWN node has no pool
        workers to kill (its pool state was already cleared), so this is
        a no-op there.
        """
        if self.state == NODE_DOWN:
            return 0
        redispatched = 0
        for service in self.services.values():
            redispatched += service.crash_pool_worker()
        return redispatched

    # -- introspection -------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return sum(s.queue_length for s in self.services.values())

    @property
    def busy_workers(self) -> int:
        return sum(s.busy_workers for s in self.services.values())

    @property
    def inflight_rows(self) -> int:
        return sum(s.inflight_rows for s in self.services.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        reach = "" if self.reachable else ", unreachable"
        return f"ClusterNode({self.node_id}, {self.state}{reach})"
