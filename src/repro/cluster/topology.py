"""Cluster topology: N nodes, a hash ring, per-route replica sets.

:class:`ClusterTopology` is the control plane of the simulated cluster.
It owns the membership (node objects + the consistent-hash ring), builds
one :class:`~repro.cluster.node.NodeService` per (node, route) pair, and
answers the one question the data plane asks per request: *which nodes
may serve this route, in what failover order?*

Placement is two-level:

* the **ring** maps each route to its ``replication``-sized preference
  list of node ids — stable under faults, minimally perturbed by
  membership changes (DESIGN.md §12);
* **fault state** is *not* in the ring.  A crashed or partitioned node
  stays on the ring and is skipped at dispatch time via the node's
  ``serving`` flag, so a restart needs no rebalancing at all.  Only
  autoscaler joins and drains move ring points (and therefore keys).

Every node hosts a station for every route it might be asked to serve
(anything in its preference lists — for simplicity, all routes); a
route's *traffic* only reaches the nodes on its preference list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.node import ClusterNode, NodeService
from repro.cluster.ring import ConsistentHashRing
from repro.gateway.cluster import PAPER_SERVICES
from repro.gateway.services import ServiceTimeModel
from repro.gateway.simulation import Simulator

__all__ = ["ClusterTopology", "RouteSpec", "paper_route_specs"]


@dataclass(frozen=True)
class RouteSpec:
    """Declarative shape of one route's per-node station."""

    route: str
    #: payload kind -> median service seconds (lognormal around it).
    base_seconds: Dict[str, float] = field(
        default_factory=lambda: {"tabular": 0.01}
    )
    concurrency: int = 4
    queue_capacity: int = 1000
    jitter: float = 0.12

    def __post_init__(self) -> None:
        if not self.route:
            raise ValueError("route name must be non-empty")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")


def paper_route_specs(queue_capacity: int = 1000) -> List[RouteSpec]:
    """The Fig. 8(a) metric services as cluster route specs.

    Concurrency follows the paper hosts' vCPU counts (with the GPU
    impact service's wide batching override), scaled per *node* rather
    than per dedicated host — each cluster node is a uniform box hosting
    replicas of every metric service.
    """
    specs = []
    for route, (machine, base_seconds, override) in PAPER_SERVICES.items():
        specs.append(
            RouteSpec(
                route=route,
                base_seconds=dict(base_seconds),
                concurrency=override or machine.vcpus,
                queue_capacity=queue_capacity,
            )
        )
    return specs


class ClusterTopology:
    """Membership + placement for a simulated multi-node deployment.

    Parameters
    ----------
    sim:
        The shared discrete-event simulator every station schedules on.
    routes:
        Route specs; each node gets one station per route.
    n_nodes:
        Initial membership (``node-0`` … ``node-{n-1}``).
    replication:
        Preference-list length per route: 1 primary + (replication-1)
        failover replicas.
    vnodes:
        Virtual points per node on the ring.
    seed:
        Base seed; each (node, route) station derives an independent
        service-time stream from it, so runs are reproducible and no two
        stations share an RNG.
    """

    def __init__(
        self,
        sim: Simulator,
        routes: List[RouteSpec],
        n_nodes: int = 4,
        replication: int = 2,
        vnodes: int = 128,
        seed: int = 0,
        overhead_seconds: float = 0.002,
        hop_seconds: float = 0.0005,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if not routes:
            raise ValueError("topology needs at least one route")
        names = [spec.route for spec in routes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate route names in topology")
        self.sim = sim
        self.routes = list(routes)
        self.replication = replication
        self.seed = seed
        self.overhead_seconds = overhead_seconds
        self.hop_seconds = hop_seconds
        self.ring = ConsistentHashRing(vnodes=vnodes)
        self.nodes: Dict[str, ClusterNode] = {}
        #: Bumped on every membership change; the runner compares it to
        #: rebuild its cached route→service preference lists.
        self.membership_version = 0
        #: Routes whose primary changed on the last membership change —
        #: the "key movement" the ring minimises, surfaced for reports.
        self.last_rebalanced_routes: List[str] = []
        self._spawned = 0
        self._listener = None
        for _ in range(n_nodes):
            self.add_node()

    # -- membership ----------------------------------------------------------

    def set_listener(self, listener) -> None:
        """Register the runner: ``listener.membership_changed(node)`` runs
        after every join/drain so the data plane can rebind."""
        self._listener = listener

    def node_ids(self) -> List[str]:
        """Member node ids, sorted."""
        return sorted(self.nodes)

    def live_nodes(self) -> List[ClusterNode]:
        """Nodes currently accepting dispatch, sorted by id."""
        return [self.nodes[n] for n in self.node_ids() if self.nodes[n].serving]

    def add_node(self, node_id: Optional[str] = None) -> ClusterNode:
        """Join a new node: build its stations, add it to the ring."""
        if node_id is None:
            node_id = f"node-{self._spawned}"
        if node_id in self.nodes:
            raise ValueError(f"node {node_id!r} already in the topology")
        # seed by spawn ordinal, not current membership size: after churn
        # two live nodes must never share a service-time stream
        node_seed = self.seed + 104_729 * (self._spawned + 1)
        self._spawned += 1
        node = ClusterNode(node_id)
        for route_index, spec in enumerate(self.routes):
            model = ServiceTimeModel(
                spec.base_seconds,
                jitter=spec.jitter,
                seed=node_seed + 7_919 * (route_index + 1),
            )
            node.add_service(
                NodeService(
                    spec.route,
                    node,
                    model,
                    concurrency=spec.concurrency,
                    queue_capacity=spec.queue_capacity,
                )
            )
        before = self._primaries()
        self.nodes[node_id] = node
        self.ring.add_node(node_id)
        self._membership_changed(node, before)
        return node

    def remove_node(self, node_id: str) -> ClusterNode:
        """Drain a node out of membership: ring points withdrawn, no new
        dispatch; in-flight work on the node finishes normally."""
        node = self._require(node_id)
        before = self._primaries()
        node.drain()
        self.ring.remove_node(node_id)
        del self.nodes[node_id]
        self._membership_changed(node, before)
        return node

    def _membership_changed(
        self, node: ClusterNode, before: Dict[str, str]
    ) -> None:
        self.membership_version += 1
        after = self._primaries()
        self.last_rebalanced_routes = sorted(
            route for route, primary in after.items()
            if before.get(route) != primary
        )
        if self._listener is not None:
            self._listener.membership_changed(node)

    def _primaries(self) -> Dict[str, str]:
        if len(self.ring) == 0:
            return {}
        return {
            spec.route: self.ring.node_for(spec.route) for spec in self.routes
        }

    # -- placement -----------------------------------------------------------

    def replica_nodes(self, route: str) -> List[ClusterNode]:
        """The route's preference list (primary first) as node objects."""
        return [
            self.nodes[n] for n in self.ring.preference(route, self.replication)
        ]

    def route_spec(self, route: str) -> RouteSpec:
        for spec in self.routes:
            if spec.route == route:
                return spec
        raise KeyError(f"unknown route {route!r}")

    # -- fault surface (called by the runner's fault handler) ----------------

    def crash_node(self, node_id: str) -> List[int]:
        """Crash a node; returns the rows it was holding for failover."""
        return self._require(node_id).crash()

    def restart_node(self, node_id: str) -> None:
        self._require(node_id).restart()

    def partition_node(self, node_id: str) -> None:
        self._require(node_id).partition()

    def heal_node(self, node_id: str) -> None:
        self._require(node_id).heal()

    def degrade_node(self, node_id: str, factor: float) -> None:
        self._require(node_id).degrade(factor)

    def restore_node(self, node_id: str) -> None:
        self._require(node_id).degrade(1.0)

    def _require(self, node_id: str) -> ClusterNode:
        node = self.nodes.get(node_id)
        if node is None:
            raise KeyError(f"unknown node {node_id!r}")
        return node

    def __len__(self) -> int:
        return len(self.nodes)
