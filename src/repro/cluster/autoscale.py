"""Telemetry-driven autoscaling: rollup pressure adds or drains nodes.

The autoscaler closes the paper's §V elasticity loop *through the
telemetry pipeline*, not by peeking at simulator internals: a periodic
tick publishes one utilization snapshot per node into a
:class:`~repro.telemetry.rollup.TumblingWindowAggregator`, and scaling
decisions read only the *finalized* rollup windows back — the same
watermark-delayed, bounded view a real control loop would get from its
metrics store.  Pressure above the policy's high watermark joins a fresh
node (the ring moves ~K/N keys to it); pressure below the low watermark
drains the least-loaded node (no new dispatch, in-flight work finishes,
ring points withdrawn).

Ticks ride the shared event heap and re-arm only while other work
remains scheduled, so a run still terminates when its workload drains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.runner import ClusterRunner, node_source
from repro.telemetry.rollup import TumblingWindowAggregator

__all__ = ["AutoscalePolicy", "ClusterAutoscaler", "ScalingDecision"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Watermarks and bounds for the scaling loop."""

    #: Mean queue depth per serving node above which a node is added.
    hi_queue: float = 32.0
    #: Mean queue depth below which the least-loaded node is drained.
    lo_queue: float = 2.0
    min_nodes: int = 1
    max_nodes: int = 16
    #: Minimum simulated seconds between consecutive scaling actions.
    cooldown_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.lo_queue < 0 or self.hi_queue <= self.lo_queue:
            raise ValueError("need 0 <= lo_queue < hi_queue")
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown must be non-negative")


@dataclass(frozen=True)
class ScalingDecision:
    """One recorded scale action: when, what, why."""

    at: float
    action: str  # "add" | "drain"
    node_id: str
    pressure: float


class ClusterAutoscaler:
    """Periodic rollup-pressure controller over a cluster runner.

    Parameters
    ----------
    runner:
        The data plane; supplies per-node utilization events and owns
        the topology the controller mutates.
    aggregator:
        The rollup store the controller publishes into and reads from.
        Passing it in (rather than building one) lets tests and the CLI
        share the store with other consumers.
    policy, interval:
        Watermark policy and tick period in simulated seconds.
    """

    def __init__(
        self,
        runner: ClusterRunner,
        aggregator: TumblingWindowAggregator,
        policy: Optional[AutoscalePolicy] = None,
        interval: float = 0.5,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.runner = runner
        self.aggregator = aggregator
        self.policy = policy or AutoscalePolicy()
        self.interval = interval
        self.decisions: List[ScalingDecision] = []
        self.ticks = 0
        self._last_action_at = -1e18

    def start(self) -> None:
        """Arm the first tick on the shared heap."""
        self.runner.sim.schedule(self.interval, self._tick)

    # -- control loop --------------------------------------------------------

    def _tick(self) -> None:
        sim = self.runner.sim
        now = sim.now
        self.ticks += 1
        for event in self.runner.node_events(now):
            self.aggregator.ingest(event)
        pressures = self._window_pressures()
        if pressures and now - self._last_action_at >= (
            self.policy.cooldown_seconds
        ):
            self._decide(now, pressures)
        # re-arm only while the workload still has events scheduled —
        # when this tick is the last thing on the heap, the run is over
        if sim._queue:
            sim.schedule(self.interval, self._tick)

    def _window_pressures(self) -> Dict[str, float]:
        """Latest finalized queue-depth window mean per *serving* node."""
        pressures: Dict[str, float] = {}
        topology = self.runner.topology
        for node_id in topology.node_ids():
            if not topology.nodes[node_id].serving:
                continue
            windows = self.aggregator.windows(
                source=node_source("node", node_id), level=0
            )
            if windows:
                pressures[node_id] = windows[-1].mean
        return pressures

    def _decide(self, now: float, pressures: Dict[str, float]) -> None:
        topology = self.runner.topology
        mean_pressure = sum(pressures.values()) / len(pressures)
        policy = self.policy
        if (
            mean_pressure > policy.hi_queue
            and len(topology) < policy.max_nodes
        ):
            node = topology.add_node()
            self._record(now, "add", node.node_id, mean_pressure)
        elif (
            mean_pressure < policy.lo_queue
            and len(topology) > policy.min_nodes
        ):
            # drain the least-loaded serving node (ties: lowest id)
            victim = min(sorted(pressures), key=lambda n: pressures[n])
            topology.remove_node(victim)
            self._record(now, "drain", victim, mean_pressure)

    def _record(
        self, now: float, action: str, node_id: str, pressure: float
    ) -> None:
        self._last_action_at = now
        self.decisions.append(
            ScalingDecision(
                at=now, action=action, node_id=node_id, pressure=pressure
            )
        )
