"""Serving-layer configuration shared by the real and simulated paths.

A single :class:`ServingPolicy` value travels from the CLI flags through
:class:`~repro.gateway.capacity.CapacityRunner` /
:class:`~repro.cluster.runner.ClusterRunner` down to each station's
batched submit path, and equally configures the in-process
:class:`~repro.serving.engine.ServingEngine`.  Keeping it one frozen
dataclass means a capacity experiment and the kernel-level bench are
guaranteed to describe the same serving discipline.
"""

from dataclasses import dataclass
from typing import Optional

__all__ = ["ServingPolicy"]


@dataclass(frozen=True)
class ServingPolicy:
    """Knobs for micro-batching, explanation caching and admission.

    ``max_batch`` and ``batch_window`` are the two flush triggers —
    whichever fires first.  ``shed_depth`` is the admission-control
    queue depth (0 disables shedding), ``cache_size`` the explanation
    cache capacity in entries (0 disables the cache) with
    ``cache_ttl`` seconds of freshness (None = never expires).

    ``batch_marginal`` models the incremental cost of each extra row in
    a fused kernel call for the discrete-event simulation: a batch of n
    rows occupies one worker for ``draw * (1 + (n-1)*batch_marginal)``
    service time, matching the measured sublinear scaling of the
    vectorized kernels (BENCH_inference.json).  ``cache_items`` /
    ``cache_skew`` shape the simulated Zipf content-id stream that
    drives cache hits in capacity runs.

    ``pool_workers`` routes flushed batches through the shared-memory
    kernel pool (:mod:`repro.pool`) instead of the in-process kernels:
    0 keeps execution inline, n > 0 fans batches out across n forked
    workers while the event loop keeps admitting.  ``pool_arena_mb``
    sizes the pinned shared-memory arena those batches travel through.
    """

    max_batch: int = 8
    batch_window: float = 0.002
    shed_depth: int = 0
    cache_size: int = 0
    cache_ttl: Optional[float] = None
    batch_marginal: float = 0.25
    cache_items: int = 512
    cache_skew: float = 1.1
    pool_workers: int = 0
    pool_arena_mb: float = 8.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if self.shed_depth < 0:
            raise ValueError("shed_depth must be >= 0")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.cache_ttl is not None and self.cache_ttl <= 0:
            raise ValueError("cache_ttl must be positive when set")
        if self.batch_marginal < 0:
            raise ValueError("batch_marginal must be >= 0")
        if self.cache_items < 1:
            raise ValueError("cache_items must be >= 1")
        if self.cache_skew <= 0:
            raise ValueError("cache_skew must be positive")
        if self.pool_workers < 0:
            raise ValueError("pool_workers must be >= 0")
        if self.pool_arena_mb <= 0:
            raise ValueError("pool_arena_mb must be positive")
