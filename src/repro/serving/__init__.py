"""Serving layer: adaptive micro-batching, explanation caching, admission.

PR 4 made the kernels fast and PR 5 made the event loop fast, but the
capacity engine still dispatched requests one at a time — none of the
batch throughput reached the serving path.  This package is the layer
between request sources and the kernels that closes the gap, following
the serving-desiderata trio (adaptive batching, caching, overload
protection):

- :class:`MicroBatcher` coalesces queued predict/SHAP requests per
  (kind, payload shape) and flushes at ``max_batch`` rows or after
  ``batch_window`` seconds, whichever first;
- :class:`ExplanationCache` memoises SHAP attributions by feature-vector
  content hash (bounded LRU + TTL) with hit/miss/eviction counters;
- :class:`AdmissionController` sheds work with typed ``503 shed``
  errors once the backlog exceeds ``shed_depth``, interactive traffic
  outranking batch;
- :class:`ServingEngine` composes the three over the vectorized kernels
  with per-batch spans, bitwise-faithful to per-request calls
  (``benchmarks/bench_serving.py`` gates >=3x throughput at
  equal-or-better p95).

Everything here is clock-agnostic (callers pass ``now``), so the same
policy object — :class:`ServingPolicy` — drives both the real path and
the discrete-event capacity/cluster simulations (DESIGN.md §15).
"""

from repro.serving.admission import (
    AdmissionController,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    SHED_DEADLINE_MESSAGE,
    SHED_ERROR_MESSAGE,
    SHED_ERROR_PREFIX,
    is_shed_error,
)
from repro.serving.batcher import (
    Batch,
    KIND_EXPLAIN,
    KIND_PREDICT,
    MicroBatcher,
    ServingRequest,
    TRIGGER_DEADLINE,
    TRIGGER_DRAIN,
    TRIGGER_SIZE,
)
from repro.serving.cache import ExplanationCache, digest_features
from repro.serving.engine import ServingEngine
from repro.serving.policy import ServingPolicy

__all__ = [
    "AdmissionController",
    "Batch",
    "ExplanationCache",
    "KIND_EXPLAIN",
    "KIND_PREDICT",
    "MicroBatcher",
    "PRIORITY_BATCH",
    "PRIORITY_INTERACTIVE",
    "SHED_DEADLINE_MESSAGE",
    "SHED_ERROR_MESSAGE",
    "SHED_ERROR_PREFIX",
    "ServingEngine",
    "ServingPolicy",
    "ServingRequest",
    "TRIGGER_DEADLINE",
    "TRIGGER_DRAIN",
    "TRIGGER_SIZE",
    "digest_features",
    "is_shed_error",
]
