"""Adaptive micro-batcher: coalesce per-request work into kernel calls.

Requests accumulate per (kind, payload-shape) group so every flushed
batch is one fused kernel call (``FlatForest.predict`` over stacked
rows, or one shared-design Kernel SHAP solve).  A group flushes when it
reaches ``max_batch`` rows (size trigger) or when its oldest request
has waited ``window`` seconds (deadline trigger) — whichever first, the
classic latency/throughput trade of adaptive batching.

The batcher never reads a clock: callers pass ``now`` to :meth:`add` /
:meth:`due`, so the same code runs under ``time.perf_counter`` on the
real path and under simulated seconds in capacity experiments.
"""

from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "Batch",
    "KIND_EXPLAIN",
    "KIND_PREDICT",
    "MicroBatcher",
    "ServingRequest",
    "TRIGGER_DEADLINE",
    "TRIGGER_DRAIN",
    "TRIGGER_SIZE",
]

KIND_PREDICT = "predict"
KIND_EXPLAIN = "explain"

TRIGGER_SIZE = "size"
TRIGGER_DEADLINE = "deadline"
TRIGGER_DRAIN = "drain"


class ServingRequest:
    """One queued unit of serving work and, later, its result.

    Acts as the engine's future: ``done`` flips when the request is
    served (``value`` set), shed (``error`` set), or satisfied from the
    explanation cache (``cache_hit``).
    """

    __slots__ = (
        "kind",
        "x",
        "priority",
        "deadline",
        "enqueued_at",
        "digest",
        "value",
        "error",
        "done",
        "cache_hit",
        "batch_size",
        "completed_at",
    )

    def __init__(
        self,
        kind: str,
        x: np.ndarray,
        priority: int,
        enqueued_at: float,
        deadline: Optional[float] = None,
    ) -> None:
        self.kind = kind
        self.x = x
        self.priority = priority
        self.deadline = deadline
        self.enqueued_at = enqueued_at
        #: Canonical content digest, computed once at submission and
        #: reused for the cache lookup, in-batch dedup keying and cache
        #: population (it used to be recomputed at each stage).
        self.digest: Optional[bytes] = None
        self.value: Optional[np.ndarray] = None
        self.error: Optional[str] = None
        self.done = False
        self.cache_hit = False
        self.batch_size = 0
        self.completed_at: Optional[float] = None

    def complete(self, value: np.ndarray, now: float) -> None:
        """Resolve the request with its kernel (or cached) result."""
        self.value = value
        self.done = True
        self.completed_at = now

    def fail(self, error: str, now: float) -> None:
        """Resolve the request with a typed error (e.g. a shed 503)."""
        self.error = error
        self.done = True
        self.completed_at = now

    def result(self) -> np.ndarray:
        """The resolved value; raises if pending or failed."""
        if not self.done:
            raise RuntimeError("serving request still pending")
        if self.error is not None:
            raise RuntimeError(self.error)
        return self.value

    @property
    def latency(self) -> Optional[float]:
        """Enqueue-to-completion seconds once resolved."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.enqueued_at


class Batch:
    """One flushed group: the unit handed to a fused kernel call."""

    __slots__ = ("kind", "shape_key", "requests", "trigger")

    def __init__(
        self,
        kind: str,
        shape_key: Tuple[str, int],
        requests: List[ServingRequest],
        trigger: str,
    ) -> None:
        self.kind = kind
        self.shape_key = shape_key
        self.requests = requests
        self.trigger = trigger

    def __len__(self) -> int:
        return len(self.requests)


class MicroBatcher:
    """Size-or-deadline batching of serving requests per payload shape."""

    __slots__ = ("max_batch", "window", "_groups", "_deadlines", "pending")

    def __init__(self, max_batch: int = 8, window: float = 0.002) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if window < 0:
            raise ValueError("window must be >= 0")
        self.max_batch = max_batch
        self.window = window
        self._groups: Dict[Tuple[str, int], List[ServingRequest]] = {}
        self._deadlines: Dict[Tuple[str, int], float] = {}
        self.pending = 0

    @staticmethod
    def shape_key(request: ServingRequest) -> Tuple[str, int]:
        """Grouping key: requests coalesce per (kind, feature width)."""
        return (request.kind, int(request.x.shape[-1]))

    def add(self, request: ServingRequest, now: float) -> Optional[Batch]:
        """Queue one request; returns a Batch when the size trigger fires."""
        key = self.shape_key(request)
        group = self._groups.get(key)
        if group is None:
            group = []
            self._groups[key] = group
        if not group:
            self._deadlines[key] = now + self.window
        group.append(request)
        self.pending += 1
        if len(group) >= self.max_batch:
            return self._flush(key, TRIGGER_SIZE)
        return None

    def _flush(self, key: Tuple[str, int], trigger: str) -> Batch:
        requests = self._groups[key]
        self._groups[key] = []
        self._deadlines.pop(key, None)
        self.pending -= len(requests)
        return Batch(key[0], key, requests, trigger)

    def due(self, now: float) -> List[Batch]:
        """Flush every group whose oldest request hit its window."""
        expired = [
            key
            for key, deadline in self._deadlines.items()
            if deadline <= now and self._groups.get(key)
        ]
        return [self._flush(key, TRIGGER_DEADLINE) for key in expired]

    def drain(self) -> List[Batch]:
        """Flush everything still queued (shutdown / end of burst)."""
        keys = [key for key, group in self._groups.items() if group]
        return [self._flush(key, TRIGGER_DRAIN) for key in keys]

    def next_deadline(self) -> Optional[float]:
        """Earliest pending flush deadline, for event-loop scheduling."""
        live = [
            deadline
            for key, deadline in self._deadlines.items()
            if self._groups.get(key)
        ]
        return min(live) if live else None

    def evict_one(self, min_priority: int) -> Optional[ServingRequest]:
        """Remove and return the newest queued request with priority >=
        ``min_priority`` (numerically lower outranks higher), so an
        interactive arrival can displace queued batch work instead of
        being shed."""
        for group in self._groups.values():
            for i in range(len(group) - 1, -1, -1):
                if group[i].priority >= min_priority:
                    victim = group.pop(i)
                    self.pending -= 1
                    return victim
        return None
