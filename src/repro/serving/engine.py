"""The serving engine: admission -> cache -> micro-batcher -> kernels.

:class:`ServingEngine` is the in-process layer between request sources
(the gateway, the bench harness, a property test) and the vectorized
kernels.  Each submitted request passes through

1. the explanation cache (explain requests only) — a content-hash hit
   resolves immediately with the stored attribution;
2. admission control — once the batcher's backlog reaches
   ``shed_depth`` the request is shed with a typed 503, unless it is
   interactive and can displace queued batch-priority work;
3. the micro-batcher — grouped per (kind, payload shape) and flushed by
   size or deadline into one fused kernel call.

Fused execution is bitwise-faithful to per-request calls:
``FlatForest`` prediction is row-stable across batch widths, and SHAP
batches go through
:meth:`~repro.xai.shap.KernelShapExplainer.shap_values_batch_exact`,
which shares the coalition design and marginal evaluation but solves
each instance independently (the shared multi-column solve is *not*
bitwise-stable; see xai/shap.py).  ``benchmarks/bench_serving.py``
gates both the equality and the >=3x throughput win.

The engine never reads a clock — every entry point takes ``now`` — so
it is pure given (inputs, now) and runs identically under wall time and
simulated time.

With a :mod:`repro.pool` kernel pool attached (``ServingEngine(pool=…)``)
flushed batches are dispatched to forked worker processes through
pinned shared-memory slots instead of running inline: the event loop
keeps admitting and flushing while kernels execute on other cores, and
:meth:`ServingEngine.poll` resolves completed batches in deterministic
submission order.  The pooled path is bitwise-equal to the inline path
because workers run the very same fused entry points.
"""

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.serving.admission import (
    AdmissionController,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    SHED_DEADLINE_MESSAGE,
    SHED_ERROR_MESSAGE,
)
from repro.serving.batcher import (
    Batch,
    KIND_EXPLAIN,
    KIND_PREDICT,
    MicroBatcher,
    ServingRequest,
)
from repro.serving.cache import ExplanationCache, digest_features
from repro.serving.policy import ServingPolicy
from repro.telemetry.events import KIND_SERVING, TelemetryEvent

__all__ = ["ServingEngine"]


class ServingEngine:
    """Batching/caching/shedding facade over predict + SHAP kernels.

    ``predict_fn`` maps an (n, d) float64 array to per-row outputs;
    ``explainer`` (optional) must expose ``shap_values`` and
    ``shap_values_batch_exact``.  ``tracer`` (optional) gets one
    ``serving.batch`` span per fused call with per-request child spans,
    so traces show the fan-in/fan-out explicitly.  ``pool`` (optional)
    is a :class:`repro.pool.KernelPool` / ``NullPool``: flushed batches
    are then dispatched asynchronously and resolved by :meth:`poll` /
    :meth:`drain` instead of executing inline.
    """

    def __init__(
        self,
        predict_fn: Callable[[np.ndarray], np.ndarray],
        explainer=None,
        policy: Optional[ServingPolicy] = None,
        tracer=None,
        pool=None,
    ) -> None:
        self.policy = policy if policy is not None else ServingPolicy()
        self.predict_fn = predict_fn
        self.explainer = explainer
        self.tracer = tracer
        self.pool = pool
        #: In-flight pooled batches keyed by pool submission seq.
        self._pool_pending: Dict[int, tuple] = {}
        self._closed = False
        #: Telemetry snapshot frozen by :meth:`shutdown`.
        self.final_snapshot: List[TelemetryEvent] = []
        self.batcher = MicroBatcher(
            max_batch=self.policy.max_batch, window=self.policy.batch_window
        )
        self.admission = AdmissionController(self.policy.shed_depth)
        self.cache: Optional[ExplanationCache] = (
            ExplanationCache(self.policy.cache_size, ttl=self.policy.cache_ttl)
            if self.policy.cache_size > 0
            else None
        )
        self.batches = 0
        self.rows_batched = 0
        self.flushed_by_size = 0
        self.flushed_by_deadline = 0
        self.flushed_by_drain = 0
        self.batch_size_peak = 0

    # -- submission ---------------------------------------------------------

    def submit_predict(
        self,
        x: np.ndarray,
        now: float,
        priority: int = PRIORITY_INTERACTIVE,
        deadline: Optional[float] = None,
    ) -> ServingRequest:
        """Queue one prediction; resolves when its batch flushes."""
        return self._submit(KIND_PREDICT, x, now, priority, deadline)

    def submit_explain(
        self,
        x: np.ndarray,
        now: float,
        priority: int = PRIORITY_INTERACTIVE,
        deadline: Optional[float] = None,
    ) -> ServingRequest:
        """Queue one SHAP explanation; cache hits resolve immediately."""
        if self.explainer is None:
            raise RuntimeError("engine built without an explainer")
        return self._submit(KIND_EXPLAIN, x, now, priority, deadline)

    def _submit(
        self,
        kind: str,
        x: np.ndarray,
        now: float,
        priority: int,
        deadline: Optional[float],
    ) -> ServingRequest:
        if self._closed:
            raise RuntimeError("engine is shut down")
        x = np.ascontiguousarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError("submit one feature vector at a time")
        request = ServingRequest(kind, x, priority, now, deadline)
        if kind == KIND_EXPLAIN:
            # Hash the payload exactly once; the same digest then keys
            # the cache lookup here, the in-batch dedup and the cache
            # population after the kernel call.
            request.digest = digest_features(x)
            if self.cache is not None:
                cached = self.cache.get(request.digest, now)
                if cached is not None:
                    request.cache_hit = True
                    request.complete(cached, now)
                    self.admission.note_admitted()
                    return request
        if self.admission.over_depth(self.batcher.pending):
            if priority == PRIORITY_INTERACTIVE:
                victim = self.batcher.evict_one(PRIORITY_BATCH)
                if victim is not None:
                    self._shed(victim, now)
                else:
                    self._shed(request, now)
                    return request
            else:
                self._shed(request, now)
                return request
        self.admission.note_admitted()
        ready = self.batcher.add(request, now)
        if ready is not None:
            self.flushed_by_size += 1
            self._run_batch(ready, now)
        return request

    def _shed(self, request: ServingRequest, now: float) -> None:
        request.fail(SHED_ERROR_MESSAGE, now)
        self.admission.note_shed()

    # -- flushing -----------------------------------------------------------

    def flush_due(self, now: float) -> int:
        """Flush every group whose batch window has lapsed; returns rows.

        With a pool attached this also resolves any pooled batches that
        completed since the last call, so a plain flush-driven event
        loop gets the overlap for free.
        """
        if self.pool is not None:
            self.poll(now)
        rows = 0
        for batch in self.batcher.due(now):
            self.flushed_by_deadline += 1
            rows += len(batch)
            self._run_batch(batch, now)
        return rows

    def poll(self, now: float) -> int:
        """Resolve completed pooled batches; returns rows resolved.

        Futures come back from the pool in strict submission order, so
        request resolution order is deterministic regardless of which
        worker finished first.  No-op without a pool.
        """
        if self.pool is None:
            return 0
        rows = 0
        for future in self.pool.poll(now):
            entry = self._pool_pending.pop(future.seq)
            rows += len(entry[2])
            self._resolve_pool_batch(future, entry, now)
        return rows

    def drain(self, now: float) -> int:
        """Flush all queued work regardless of triggers; returns rows.

        With a pool attached this blocks until every in-flight pooled
        batch has resolved as well, so after ``drain`` no request is
        pending anywhere.
        """
        rows = 0
        for batch in self.batcher.drain():
            self.flushed_by_drain += 1
            rows += len(batch)
            self._run_batch(batch, now)
        if self.pool is not None:
            for future in self.pool.drain(now):
                entry = self._pool_pending.pop(future.seq)
                self._resolve_pool_batch(future, entry, now)
        return rows

    def shutdown(self, now: float, route: str = "serving") -> List[TelemetryEvent]:
        """Drain, close the pool and freeze the final telemetry snapshot.

        Cache and batcher counters keep advancing after the last
        periodic publication, so short runs used to end with unreported
        hits/sheds; the snapshot returned here carries the final values
        of every counter.  Idempotent — repeat calls return the frozen
        snapshot without re-draining.
        """
        if self._closed:
            return list(self.final_snapshot)
        self.drain(now)
        events = self.telemetry_events(now, route)
        if self.pool is not None:
            self.pool.close()
        self.final_snapshot = events
        self._closed = True
        return events

    def next_deadline(self) -> Optional[float]:
        """Earliest pending flush deadline, for the caller's event loop."""
        return self.batcher.next_deadline()

    def _run_batch(self, batch: Batch, now: float) -> None:
        requests = []
        for request in batch.requests:
            if self.admission.expired(request.deadline, now):
                request.fail(SHED_DEADLINE_MESSAGE, now)
                self.admission.note_shed(deadline=True)
            else:
                requests.append(request)
        if not requests:
            return
        if self.pool is not None:
            self._dispatch_pool(batch, requests, now)
            return
        span = None
        if self.tracer is not None:
            span = self.tracer.start_span(
                "serving.batch",
                start_time=now,
                attributes={
                    "kind": batch.kind,
                    "rows": len(requests),
                    "trigger": batch.trigger,
                },
            )
        X = np.stack([request.x for request in requests])
        if batch.kind == KIND_PREDICT:
            values = self.predict_fn(X)
            for i, request in enumerate(requests):
                request.batch_size = len(requests)
                request.complete(values[i], now)
        else:
            self._run_explain_batch(requests, X, now)
        if span is not None:
            for request in requests:
                child = self.tracer.start_span(
                    "serving.request",
                    parent=span,
                    start_time=request.enqueued_at,
                    attributes={"kind": request.kind},
                )
                child.end(at=now)
            span.end(at=now)
        self.batches += 1
        self.rows_batched += len(requests)
        if len(requests) > self.batch_size_peak:
            self.batch_size_peak = len(requests)

    def _run_explain_batch(
        self, requests: List[ServingRequest], X: np.ndarray, now: float
    ) -> None:
        # Duplicate feature vectors within one batch are explained once;
        # attribution is a pure function of the vector, so sharing the
        # result is exact.  Requests carry the digest computed at
        # submission, so no payload is ever hashed twice.
        unique_index, rows = self._dedup_rows(requests)
        unique = X[rows]
        phi = self.explainer.shap_values_batch_exact(unique)
        for request in requests:
            value = phi[unique_index[request.digest]]
            request.batch_size = len(requests)
            request.complete(value, now)
        if self.cache is not None:
            for digest, position in unique_index.items():
                self.cache.put(digest, phi[position], now)

    @staticmethod
    def _dedup_rows(requests: List[ServingRequest]):
        """(digest -> unique position, first-occurrence row indices)."""
        unique_index: Dict[bytes, int] = {}
        rows: List[int] = []
        for i, request in enumerate(requests):
            if request.digest not in unique_index:
                unique_index[request.digest] = len(unique_index)
                rows.append(i)
        return unique_index, rows

    # -- pooled execution -----------------------------------------------------

    def _dispatch_pool(
        self, batch: Batch, requests: List[ServingRequest], now: float
    ) -> None:
        """Hand one flushed batch to the kernel pool (non-blocking).

        Only the unique rows of an explain batch travel through the
        arena; duplicates fan back out at resolution using the digests
        computed at submission.
        """
        X = np.stack([request.x for request in requests])
        if batch.kind == KIND_PREDICT:
            unique_index = None
            future = self.pool.submit_predict(X, now)
        else:
            unique_index, rows = self._dedup_rows(requests)
            future = self.pool.submit_explain(X[rows], now)
        entry = (batch.kind, batch.trigger, requests, unique_index, now)
        if future.done:  # NullPool executes inline; resolve right away
            self._resolve_pool_batch(future, entry, now)
        else:
            self._pool_pending[future.seq] = entry

    def _resolve_pool_batch(self, future, entry, now: float) -> None:
        """Fan a pool result back out to its batch's requests.

        Counters advance here, at resolution, exactly once per batch —
        a worker crash and resubmission inside the pool is invisible at
        this layer and can never double-count.
        """
        kind, trigger, requests, unique_index, dispatched_at = entry
        if future.error is not None:
            for request in requests:
                request.fail(future.error, now)
            return
        values = future.value
        size = len(requests)
        if kind == KIND_PREDICT:
            for i, request in enumerate(requests):
                request.batch_size = size
                request.complete(values[i], now)
        else:
            for request in requests:
                request.batch_size = size
                request.complete(values[unique_index[request.digest]], now)
            if self.cache is not None:
                for digest, position in unique_index.items():
                    self.cache.put(digest, values[position], now)
        if self.tracer is not None:
            span = self.tracer.start_span(
                "serving.batch",
                start_time=dispatched_at,
                attributes={
                    "kind": kind,
                    "rows": len(requests),
                    "trigger": trigger,
                    "pooled": 1,
                },
            )
            for request in requests:
                child = self.tracer.start_span(
                    "serving.request",
                    parent=span,
                    start_time=request.enqueued_at,
                    attributes={"kind": request.kind},
                )
                child.end(at=now)
            span.end(at=now)
        self.batches += 1
        self.rows_batched += len(requests)
        if len(requests) > self.batch_size_peak:
            self.batch_size_peak = len(requests)

    # -- accounting ---------------------------------------------------------

    @property
    def mean_batch_size(self) -> float:
        """Average rows per fused kernel call so far."""
        return self.rows_batched / self.batches if self.batches else 0.0

    def counters(self) -> Dict[str, float]:
        """Combined batcher/cache/admission counters for publication."""
        counters = {
            "batches": float(self.batches),
            "rows_batched": float(self.rows_batched),
            "flushed_by_size": float(self.flushed_by_size),
            "flushed_by_deadline": float(self.flushed_by_deadline),
            "flushed_by_drain": float(self.flushed_by_drain),
            "batch_size_peak": float(self.batch_size_peak),
            "mean_batch_size": self.mean_batch_size,
            "pending": float(self.batcher.pending),
        }
        counters.update(self.admission.counters())
        if self.cache is not None:
            for key, value in self.cache.counters().items():
                counters[f"cache_{key}"] = value
        if self.pool is not None:
            counters["pool_inflight"] = float(len(self._pool_pending))
            for key, value in self.pool.counters().items():
                counters[f"pool_{key}"] = value
        return counters

    def telemetry_events(
        self, now: float, route: str = "serving"
    ) -> List[TelemetryEvent]:
        """Serving/cache/shed events for a telemetry pipeline or bus.

        ``cache:<route>`` carries the hit rate (with hit/miss/eviction
        attrs), ``serving:<route>`` the mean batch size, and
        ``shed:<route>`` the deliberate-shed count the SLO attribution
        helper keys on.
        """
        events = [
            TelemetryEvent(
                source=f"serving:{route}",
                value=self.mean_batch_size,
                timestamp=now,
                kind=KIND_SERVING,
                attrs={
                    "batches": float(self.batches),
                    "rows": float(self.rows_batched),
                    "by_size": float(self.flushed_by_size),
                    "by_deadline": float(self.flushed_by_deadline),
                    "by_drain": float(self.flushed_by_drain),
                    "peak": float(self.batch_size_peak),
                    "pending": float(self.batcher.pending),
                },
            ),
            TelemetryEvent(
                source=f"shed:{route}",
                value=float(self.admission.shed),
                timestamp=now,
                kind=KIND_SERVING,
                attrs={
                    "overload": float(self.admission.shed_overload),
                    "deadline": float(self.admission.shed_deadline),
                },
            ),
        ]
        if self.cache is not None:
            events.append(
                TelemetryEvent(
                    source=f"cache:{route}",
                    value=self.cache.hit_rate,
                    timestamp=now,
                    kind=KIND_SERVING,
                    attrs={
                        "hits": float(self.cache.hits),
                        "misses": float(self.cache.misses),
                        "evictions": float(self.cache.evictions),
                        "expirations": float(self.cache.expirations),
                        "size": float(len(self.cache)),
                    },
                )
            )
        if self.pool is not None:
            events.extend(self.pool.telemetry_events(now, route))
        return events
