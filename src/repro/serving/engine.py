"""The serving engine: admission -> cache -> micro-batcher -> kernels.

:class:`ServingEngine` is the in-process layer between request sources
(the gateway, the bench harness, a property test) and the vectorized
kernels.  Each submitted request passes through

1. the explanation cache (explain requests only) — a content-hash hit
   resolves immediately with the stored attribution;
2. admission control — once the batcher's backlog reaches
   ``shed_depth`` the request is shed with a typed 503, unless it is
   interactive and can displace queued batch-priority work;
3. the micro-batcher — grouped per (kind, payload shape) and flushed by
   size or deadline into one fused kernel call.

Fused execution is bitwise-faithful to per-request calls:
``FlatForest`` prediction is row-stable across batch widths, and SHAP
batches go through
:meth:`~repro.xai.shap.KernelShapExplainer.shap_values_batch_exact`,
which shares the coalition design and marginal evaluation but solves
each instance independently (the shared multi-column solve is *not*
bitwise-stable; see xai/shap.py).  ``benchmarks/bench_serving.py``
gates both the equality and the >=3x throughput win.

The engine never reads a clock — every entry point takes ``now`` — so
it is pure given (inputs, now) and runs identically under wall time and
simulated time.
"""

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.serving.admission import (
    AdmissionController,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    SHED_DEADLINE_MESSAGE,
    SHED_ERROR_MESSAGE,
)
from repro.serving.batcher import (
    Batch,
    KIND_EXPLAIN,
    KIND_PREDICT,
    MicroBatcher,
    ServingRequest,
)
from repro.serving.cache import ExplanationCache, digest_features
from repro.serving.policy import ServingPolicy
from repro.telemetry.events import KIND_SERVING, TelemetryEvent

__all__ = ["ServingEngine"]


class ServingEngine:
    """Batching/caching/shedding facade over predict + SHAP kernels.

    ``predict_fn`` maps an (n, d) float64 array to per-row outputs;
    ``explainer`` (optional) must expose ``shap_values`` and
    ``shap_values_batch_exact``.  ``tracer`` (optional) gets one
    ``serving.batch`` span per fused call with per-request child spans,
    so traces show the fan-in/fan-out explicitly.
    """

    def __init__(
        self,
        predict_fn: Callable[[np.ndarray], np.ndarray],
        explainer=None,
        policy: Optional[ServingPolicy] = None,
        tracer=None,
    ) -> None:
        self.policy = policy if policy is not None else ServingPolicy()
        self.predict_fn = predict_fn
        self.explainer = explainer
        self.tracer = tracer
        self.batcher = MicroBatcher(
            max_batch=self.policy.max_batch, window=self.policy.batch_window
        )
        self.admission = AdmissionController(self.policy.shed_depth)
        self.cache: Optional[ExplanationCache] = (
            ExplanationCache(self.policy.cache_size, ttl=self.policy.cache_ttl)
            if self.policy.cache_size > 0
            else None
        )
        self.batches = 0
        self.rows_batched = 0
        self.flushed_by_size = 0
        self.flushed_by_deadline = 0
        self.flushed_by_drain = 0
        self.batch_size_peak = 0

    # -- submission ---------------------------------------------------------

    def submit_predict(
        self,
        x: np.ndarray,
        now: float,
        priority: int = PRIORITY_INTERACTIVE,
        deadline: Optional[float] = None,
    ) -> ServingRequest:
        """Queue one prediction; resolves when its batch flushes."""
        return self._submit(KIND_PREDICT, x, now, priority, deadline)

    def submit_explain(
        self,
        x: np.ndarray,
        now: float,
        priority: int = PRIORITY_INTERACTIVE,
        deadline: Optional[float] = None,
    ) -> ServingRequest:
        """Queue one SHAP explanation; cache hits resolve immediately."""
        if self.explainer is None:
            raise RuntimeError("engine built without an explainer")
        return self._submit(KIND_EXPLAIN, x, now, priority, deadline)

    def _submit(
        self,
        kind: str,
        x: np.ndarray,
        now: float,
        priority: int,
        deadline: Optional[float],
    ) -> ServingRequest:
        x = np.ascontiguousarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError("submit one feature vector at a time")
        request = ServingRequest(kind, x, priority, now, deadline)
        if kind == KIND_EXPLAIN and self.cache is not None:
            cached = self.cache.get(digest_features(x), now)
            if cached is not None:
                request.cache_hit = True
                request.complete(cached, now)
                self.admission.note_admitted()
                return request
        if self.admission.over_depth(self.batcher.pending):
            if priority == PRIORITY_INTERACTIVE:
                victim = self.batcher.evict_one(PRIORITY_BATCH)
                if victim is not None:
                    self._shed(victim, now)
                else:
                    self._shed(request, now)
                    return request
            else:
                self._shed(request, now)
                return request
        self.admission.note_admitted()
        ready = self.batcher.add(request, now)
        if ready is not None:
            self.flushed_by_size += 1
            self._run_batch(ready, now)
        return request

    def _shed(self, request: ServingRequest, now: float) -> None:
        request.fail(SHED_ERROR_MESSAGE, now)
        self.admission.note_shed()

    # -- flushing -----------------------------------------------------------

    def flush_due(self, now: float) -> int:
        """Flush every group whose batch window has lapsed; returns rows."""
        rows = 0
        for batch in self.batcher.due(now):
            self.flushed_by_deadline += 1
            rows += len(batch)
            self._run_batch(batch, now)
        return rows

    def drain(self, now: float) -> int:
        """Flush all queued work regardless of triggers; returns rows."""
        rows = 0
        for batch in self.batcher.drain():
            self.flushed_by_drain += 1
            rows += len(batch)
            self._run_batch(batch, now)
        return rows

    def next_deadline(self) -> Optional[float]:
        """Earliest pending flush deadline, for the caller's event loop."""
        return self.batcher.next_deadline()

    def _run_batch(self, batch: Batch, now: float) -> None:
        requests = []
        for request in batch.requests:
            if self.admission.expired(request.deadline, now):
                request.fail(SHED_DEADLINE_MESSAGE, now)
                self.admission.note_shed(deadline=True)
            else:
                requests.append(request)
        if not requests:
            return
        span = None
        if self.tracer is not None:
            span = self.tracer.start_span(
                "serving.batch",
                start_time=now,
                attributes={
                    "kind": batch.kind,
                    "rows": len(requests),
                    "trigger": batch.trigger,
                },
            )
        X = np.stack([request.x for request in requests])
        if batch.kind == KIND_PREDICT:
            values = self.predict_fn(X)
            for i, request in enumerate(requests):
                request.batch_size = len(requests)
                request.complete(values[i], now)
        else:
            self._run_explain_batch(requests, X, now)
        if span is not None:
            for request in requests:
                child = self.tracer.start_span(
                    "serving.request",
                    parent=span,
                    start_time=request.enqueued_at,
                    attributes={"kind": request.kind},
                )
                child.end(at=now)
            span.end(at=now)
        self.batches += 1
        self.rows_batched += len(requests)
        if len(requests) > self.batch_size_peak:
            self.batch_size_peak = len(requests)

    def _run_explain_batch(
        self, requests: List[ServingRequest], X: np.ndarray, now: float
    ) -> None:
        # Duplicate feature vectors within one batch are explained once;
        # attribution is a pure function of the vector, so sharing the
        # result is exact.
        unique_index: Dict[bytes, int] = {}
        digests = []
        for request in requests:
            digest = digest_features(request.x)
            digests.append(digest)
            if digest not in unique_index:
                unique_index[digest] = len(unique_index)
        rows = []
        seen: Dict[bytes, int] = {}
        for i, digest in enumerate(digests):
            if digest not in seen:
                seen[digest] = i
                rows.append(i)
        unique = X[rows]
        phi = self.explainer.shap_values_batch_exact(unique)
        for request, digest in zip(requests, digests):
            value = phi[unique_index[digest]]
            request.batch_size = len(requests)
            request.complete(value, now)
        if self.cache is not None:
            for digest, position in unique_index.items():
                self.cache.put(digest, phi[position], now)

    # -- accounting ---------------------------------------------------------

    @property
    def mean_batch_size(self) -> float:
        """Average rows per fused kernel call so far."""
        return self.rows_batched / self.batches if self.batches else 0.0

    def counters(self) -> Dict[str, float]:
        """Combined batcher/cache/admission counters for publication."""
        counters = {
            "batches": float(self.batches),
            "rows_batched": float(self.rows_batched),
            "flushed_by_size": float(self.flushed_by_size),
            "flushed_by_deadline": float(self.flushed_by_deadline),
            "flushed_by_drain": float(self.flushed_by_drain),
            "batch_size_peak": float(self.batch_size_peak),
            "mean_batch_size": self.mean_batch_size,
            "pending": float(self.batcher.pending),
        }
        counters.update(self.admission.counters())
        if self.cache is not None:
            for key, value in self.cache.counters().items():
                counters[f"cache_{key}"] = value
        return counters

    def telemetry_events(
        self, now: float, route: str = "serving"
    ) -> List[TelemetryEvent]:
        """Serving/cache/shed events for a telemetry pipeline or bus.

        ``cache:<route>`` carries the hit rate (with hit/miss/eviction
        attrs), ``serving:<route>`` the mean batch size, and
        ``shed:<route>`` the deliberate-shed count the SLO attribution
        helper keys on.
        """
        events = [
            TelemetryEvent(
                source=f"serving:{route}",
                value=self.mean_batch_size,
                timestamp=now,
                kind=KIND_SERVING,
                attrs={
                    "batches": float(self.batches),
                    "rows": float(self.rows_batched),
                    "by_size": float(self.flushed_by_size),
                    "by_deadline": float(self.flushed_by_deadline),
                    "peak": float(self.batch_size_peak),
                },
            ),
            TelemetryEvent(
                source=f"shed:{route}",
                value=float(self.admission.shed),
                timestamp=now,
                kind=KIND_SERVING,
                attrs={
                    "overload": float(self.admission.shed_overload),
                    "deadline": float(self.admission.shed_deadline),
                },
            ),
        ]
        if self.cache is not None:
            events.append(
                TelemetryEvent(
                    source=f"cache:{route}",
                    value=self.cache.hit_rate,
                    timestamp=now,
                    kind=KIND_SERVING,
                    attrs={
                        "hits": float(self.cache.hits),
                        "misses": float(self.cache.misses),
                        "evictions": float(self.cache.evictions),
                        "size": float(len(self.cache)),
                    },
                )
            )
        return events
