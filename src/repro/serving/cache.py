"""Content-hash explanation cache: feature digest -> SHAP attribution.

Explanations are deterministic functions of (model, background, seed,
feature vector), so identical inputs always produce identical
attributions — the one precondition a content-addressed cache needs.
Real traffic is heavily skewed (the same hot readings get explained
again and again), which is why the serving-desiderata paper lists
caching as a first-class serving requirement: a hit turns a ~ms kernel
solve into a dict lookup.

The cache is clock-agnostic: callers pass ``now`` (wall seconds on the
real path, simulated seconds in capacity runs), so TTL expiry works
identically in both worlds and results stay reproducible.
"""

import hashlib
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

import numpy as np

__all__ = ["ExplanationCache", "digest_features"]


def digest_features(x: np.ndarray) -> bytes:
    """Content hash of one feature vector (float64 canonical form).

    Vectors are canonicalised to contiguous float64 before hashing so
    the digest depends only on the numeric content, not on dtype or
    striding of the caller's array.
    """
    canonical = np.ascontiguousarray(x, dtype=np.float64)
    return hashlib.blake2b(canonical.tobytes(), digest_size=16).digest()


class ExplanationCache:
    """Bounded LRU of explanation results with optional TTL.

    ``get``/``put`` take the caller's ``now``; an entry older than
    ``ttl`` seconds is dropped on access (counted as both an expiration
    and a miss).  Capacity overflow evicts the least-recently-used
    entry.  Hit/miss/eviction counters feed ``cache:<route>`` telemetry
    events and the dashboard serving panel.
    """

    __slots__ = (
        "capacity",
        "ttl",
        "hits",
        "misses",
        "evictions",
        "expirations",
        "_entries",
    )

    def __init__(self, capacity: int, ttl: Optional[float] = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("cache ttl must be positive when set")
        self.capacity = capacity
        self.ttl = ttl
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self._entries: "OrderedDict[Hashable, Tuple[Any, float]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, now: float) -> Optional[Any]:
        """Stored value for ``key``, or None on miss/expiry."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        value, stored_at = entry
        if self.ttl is not None and now - stored_at > self.ttl:
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any, now: float) -> None:
        """Insert/refresh ``key``; evicts LRU entries beyond capacity."""
        entries = self._entries
        if key in entries:
            entries[key] = (value, now)
            entries.move_to_end(key)
            return
        entries[key] = (value, now)
        while len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        """Hits over lookups so far (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def counters(self) -> Dict[str, float]:
        """Counter snapshot for telemetry/dashboard publication."""
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "expirations": float(self.expirations),
            "size": float(len(self._entries)),
            "hit_rate": self.hit_rate,
        }
