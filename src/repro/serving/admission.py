"""Admission control ahead of the rate limiter: shed early, shed typed.

Overload protection ("graceful degradation under overload" in the
serving-desiderata paper) belongs *before* work is queued: once the
batcher's backlog exceeds ``shed_depth`` rows, new work is refused with
a typed 503 instead of growing an unbounded queue.  Interactive
requests outrank batch requests — an interactive arrival may evict a
queued batch-priority request rather than be shed itself.

The shed error string is the contract the rest of the stack keys on:
:mod:`repro.gateway` and :mod:`repro.cluster` intern errors with the
same ``503 shed`` prefix, and the SLO attribution helper
(:func:`repro.slo.attribute_unavailability`) uses the matching
``shed:<route>`` telemetry series to separate "deliberately shed" from
"failed" when a burn-rate alert fires.
"""

from typing import Dict, Optional

__all__ = [
    "AdmissionController",
    "PRIORITY_BATCH",
    "PRIORITY_INTERACTIVE",
    "SHED_DEADLINE_MESSAGE",
    "SHED_ERROR_MESSAGE",
    "SHED_ERROR_PREFIX",
    "is_shed_error",
]

#: Interactive traffic outranks offline/batch traffic (lower = higher).
PRIORITY_INTERACTIVE = 0
PRIORITY_BATCH = 1

#: Every deliberately-shed request carries this prefix end to end, so
#: WAL replay and SLO attribution can tell shedding from failure.
SHED_ERROR_PREFIX = "503 shed"
SHED_ERROR_MESSAGE = "503 shed (admission overload)"
SHED_DEADLINE_MESSAGE = "503 shed (deadline expired)"


def is_shed_error(error: Optional[str]) -> bool:
    """True when an error string marks a deliberately-shed request."""
    return bool(error) and error.startswith(SHED_ERROR_PREFIX)


class AdmissionController:
    """Queue-depth and deadline shedding decisions for the serving path.

    The controller is pure policy: the engine (or a simulated station)
    asks :meth:`over_depth` with its current backlog and records the
    outcome via :meth:`note_admitted` / :meth:`note_shed`, so the same
    counters describe both the real and the discrete-event path.
    """

    __slots__ = ("shed_depth", "admitted", "shed_overload", "shed_deadline")

    def __init__(self, shed_depth: int = 0) -> None:
        if shed_depth < 0:
            raise ValueError("shed_depth must be >= 0")
        self.shed_depth = shed_depth
        self.admitted = 0
        self.shed_overload = 0
        self.shed_deadline = 0

    def over_depth(self, queued_rows: int) -> bool:
        """True when the backlog has reached the shedding threshold."""
        return self.shed_depth > 0 and queued_rows >= self.shed_depth

    @staticmethod
    def expired(deadline: Optional[float], now: float) -> bool:
        """True when a request's latency budget has already lapsed."""
        return deadline is not None and now > deadline

    def note_admitted(self) -> None:
        """Record one admitted request."""
        self.admitted += 1

    def note_shed(self, deadline: bool = False) -> None:
        """Record one shed request (overload unless ``deadline``)."""
        if deadline:
            self.shed_deadline += 1
        else:
            self.shed_overload += 1

    @property
    def shed(self) -> int:
        """Total requests shed for any reason."""
        return self.shed_overload + self.shed_deadline

    def counters(self) -> Dict[str, float]:
        """Counter snapshot for telemetry/dashboard publication."""
        return {
            "admitted": float(self.admitted),
            "shed_overload": float(self.shed_overload),
            "shed_deadline": float(self.shed_deadline),
            "shed": float(self.shed),
        }
