"""The telemetry event model: one flat, serialisable record per measurement.

Everything the monitoring layer observes — sensor readings, gateway
response times, micro-service utilisation, load-test summaries — is
normalised into a :class:`TelemetryEvent` before it enters the bus.  Events
are deliberately flat (floats + string attrs) so they serialise to one JSON
line in the WAL and aggregate uniformly in the rollup layer, regardless of
which subsystem produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: Well-known event kinds; producers may invent new ones freely.
KIND_SENSOR_READING = "sensor_reading"
KIND_RESPONSE = "response"
KIND_UTILIZATION = "utilization"
KIND_LOAD_SUMMARY = "load_summary"
KIND_SERVING = "serving"
KIND_POOL = "pool"

#: Well-known label keys linking an event to the span it was published
#: under (the exemplar join used by ``repro.tracing.exemplars``).  They
#: are ordinary string labels, so they ride the WAL serialise/replay
#: round trip unchanged — a slow rollup bucket found days later can still
#: name the exact traces that produced it.
TRACE_ID_LABEL = "trace_id"
SPAN_ID_LABEL = "span_id"

#: Well-known label naming the cluster node an event was observed on.
#: Like the trace labels it is an ordinary string label — per-node rollup
#: sharding and node attribution survive WAL replay for free.
NODE_ID_LABEL = "node_id"


@dataclass(slots=True)
class TelemetryEvent:
    """One timestamped scalar measurement from a named source.

    Parameters
    ----------
    source:
        The producing entity (sensor name, micro-service route, …); the
        rollup layer keys its per-source windows on this.
    value:
        The headline scalar.  For sensor readings this is the normalised
        [0, 1] trust value; for gateway events it is e.g. milliseconds.
    timestamp:
        Seconds (wall clock or virtual simulator time — producers choose,
        consumers only need monotonicity per source for windowing).
    kind:
        Event family (``sensor_reading``, ``response``, ``utilization``…).
    attrs:
        Numeric side channel (a sensor's ``details``, a report's
        percentiles).  Values must be floats so rollups/queries can filter.
    labels:
        String side channel (trust property, model version tag, error
        class); kept separate from ``attrs`` so both stay homogeneous.
    """

    source: str
    value: float
    timestamp: float
    kind: str = KIND_SENSOR_READING
    attrs: Dict[str, float] = field(default_factory=dict)
    labels: Dict[str, str] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, object]:
        """Flat dict for WAL serialisation (stable key order not required
        here; the WAL canonicalises before checksumming)."""
        return {
            "source": self.source,
            "value": self.value,
            "timestamp": self.timestamp,
            "kind": self.kind,
            "attrs": self.attrs,
            "labels": self.labels,
        }

    @staticmethod
    def from_json_dict(payload: Dict[str, object]) -> "TelemetryEvent":
        return TelemetryEvent(
            source=str(payload["source"]),
            value=float(payload["value"]),  # type: ignore[arg-type]
            timestamp=float(payload["timestamp"]),  # type: ignore[arg-type]
            kind=str(payload.get("kind", KIND_SENSOR_READING)),
            attrs={
                str(k): float(v)  # type: ignore[arg-type]
                for k, v in dict(payload.get("attrs", {})).items()  # type: ignore[arg-type]
            },
            labels={
                str(k): str(v)
                for k, v in dict(payload.get("labels", {})).items()  # type: ignore[arg-type]
            },
        )

    # -- trace exemplar linking ----------------------------------------------

    def with_trace(self, trace_id: str, span_id: str) -> "TelemetryEvent":
        """Stamp the span this event was published under (in place).

        Producers call this when (and only when) a span is recording, so
        the untraced hot path allocates nothing.  The ids are plain
        labels: the WAL, rollup and query layers treat them like any
        other label, which is exactly what makes the exemplar join
        survive serialise → crash → replay.
        """
        self.labels[TRACE_ID_LABEL] = trace_id
        self.labels[SPAN_ID_LABEL] = span_id
        return self

    @property
    def trace_id(self) -> Optional[str]:
        """The trace this event belongs to, if it was published in a span."""
        return self.labels.get(TRACE_ID_LABEL)

    @property
    def span_id(self) -> Optional[str]:
        return self.labels.get(SPAN_ID_LABEL)

    # -- cluster node attribution ---------------------------------------------

    def with_node(self, node_id: str) -> "TelemetryEvent":
        """Stamp the cluster node this event was observed on (in place)."""
        self.labels[NODE_ID_LABEL] = node_id
        return self

    @property
    def node_id(self) -> Optional[str]:
        """The observing cluster node, if the producer stamped one."""
        return self.labels.get(NODE_ID_LABEL)

    # -- SensorReading bridge -------------------------------------------------

    @staticmethod
    def from_reading(reading) -> "TelemetryEvent":
        """Wrap a :class:`repro.core.sensors.SensorReading`.

        The reading's ``details`` become ``attrs``; property, model version
        and any error class land in ``labels`` so
        :meth:`repro.core.sensors.SensorReading.from_event` can reconstruct
        the original losslessly.  (The inverse lives in core, not here:
        telemetry is a bottom-layer substrate and must not import the
        types built on top of it.)
        """
        labels = {
            "property": reading.property.value,
            "model_version": str(reading.model_version),
        }
        if getattr(reading, "error", None):
            labels["error"] = reading.error
        return TelemetryEvent(
            source=reading.sensor,
            value=reading.value,
            timestamp=reading.timestamp,
            kind=KIND_SENSOR_READING,
            attrs=dict(reading.details),
            labels=labels,
        )
