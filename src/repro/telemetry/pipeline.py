"""TelemetryPipeline: bus → WAL writer → rollup aggregator, pre-wired.

The standard collection → transport → aggregation → query stack from the
AI-observability literature, assembled as one object with a lifecycle:

* producers call :meth:`publish` (or hand the pipeline's bus to the
  continuous monitor / gateway listeners);
* a ``wal`` subscription persists every event (``policy="error"`` — the
  durable tier must be lossless, so overflow fails loudly rather than
  silently dropping audit records);
* a ``rollup`` subscription feeds the tumbling-window aggregator
  (``drop_oldest`` — the hot tier prefers freshness under pressure);
* :meth:`query` serves both tiers; :meth:`stats` snapshots every counter.

Delivery is explicit: :meth:`pump` drains subscriber queues.  Producers
on a hot path publish and move on; whoever owns the loop decides when
consumption happens (every round, every N events, or on :meth:`flush`).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Union

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import TelemetryEvent
from repro.telemetry.query import TelemetryQuery
from repro.telemetry.rollup import TumblingWindowAggregator
from repro.telemetry.wal import WriteAheadLog

#: Default topic the continuous monitor publishes sensor readings on.
SENSOR_TOPIC = "sensors"


class TelemetryPipeline:
    """Owns the bus, the durable WAL and the hot rollup store.

    Parameters
    ----------
    wal_dir:
        Segment directory for the durable tier; ``None`` runs the
        pipeline memory-only (no persistence, e.g. in simulations).
    window_seconds / cascades / retention:
        Rollup configuration (see :class:`TumblingWindowAggregator`).
    wal_capacity:
        Bus-queue bound for the WAL subscription.  Its policy is
        ``error``: a full durable queue is an operational fault, not
        something to shed silently.
    auto_pump_every:
        When set, :meth:`publish` drains subscriber queues every N
        published events, so callers that never call :meth:`pump` still
        bound queue occupancy.
    """

    def __init__(
        self,
        wal_dir: Optional[Union[str, os.PathLike]] = None,
        window_seconds: float = 1.0,
        cascades: Sequence[float] = (10.0, 60.0),
        retention: int = 4096,
        wal_capacity: int = 65536,
        max_segment_bytes: int = 1 << 20,
        auto_pump_every: Optional[int] = None,
    ) -> None:
        if auto_pump_every is not None and auto_pump_every < 1:
            raise ValueError("auto_pump_every must be >= 1")
        self.bus = TelemetryBus()
        self.rollups = TumblingWindowAggregator(
            window_seconds=window_seconds,
            cascades=cascades,
            retention=retention,
        )
        self.wal: Optional[WriteAheadLog] = None
        self._wal_dir = None if wal_dir is None else os.fspath(wal_dir)
        self._wal_capacity = wal_capacity
        self._max_segment_bytes = max_segment_bytes
        self._auto_pump_every = auto_pump_every
        self._published_since_pump = 0
        self._started = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started

    @property
    def closed(self) -> bool:
        return self._closed

    def start(self) -> "TelemetryPipeline":
        """Open the WAL and attach the standard subscriptions."""
        if self._started:
            raise RuntimeError("pipeline already started")
        if self._closed:
            raise RuntimeError("pipeline is closed")
        if self._wal_dir is not None:
            self.wal = WriteAheadLog(
                self._wal_dir, max_segment_bytes=self._max_segment_bytes
            )
            self.bus.subscribe(
                "wal",
                capacity=self._wal_capacity,
                policy="error",
                callback=self.wal.append,
            )
        self.bus.subscribe(
            "rollup",
            capacity=self._wal_capacity,
            policy="drop_oldest",
            callback=self.rollups.ingest,
        )
        self._started = True
        return self

    def publish(self, topic: str, event: TelemetryEvent) -> int:
        """Producer entry point; see :meth:`TelemetryBus.publish`."""
        if not self._started:
            raise RuntimeError("pipeline not started (call start())")
        landed = self.bus.publish(topic, event)
        self._published_since_pump += 1
        if (
            self._auto_pump_every is not None
            and self._published_since_pump >= self._auto_pump_every
        ):
            self.pump()
        return landed

    def pump(self) -> int:
        """Drain subscriber queues into the WAL / rollups / any sinks."""
        self._published_since_pump = 0
        return self.bus.pump()

    def flush(self) -> None:
        """Pump, persist, and finalise still-open rollup windows."""
        self.pump()
        if self.wal is not None:
            self.wal.flush()
        self.rollups.flush()

    def close(self) -> None:
        """Flush and release the WAL; the pipeline stops accepting events."""
        if self._closed:
            return
        if self._started:
            self.pump()
            self.rollups.flush()
        if self.wal is not None:
            self.wal.close()
        self._closed = True
        self._started = False

    def __enter__(self) -> "TelemetryPipeline":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- read side ---------------------------------------------------------------

    def query(self) -> TelemetryQuery:
        """Query façade over this pipeline's hot and cold tiers."""
        return TelemetryQuery(rollups=self.rollups, wal_dir=self._wal_dir)

    def stats(self) -> Dict[str, object]:
        """One snapshot across every layer (the pipeline's health panel)."""
        return {
            "bus": self.bus.stats(),
            "wal": None if self.wal is None else self.wal.stats(),
            "rollup": self.rollups.stats(),
        }
