"""Tumbling-window rollups with cascading downsampling.

The hot query path never touches raw events: the aggregator buckets each
source's events into tumbling windows (default 1 s), finalises a window
once the stream's watermark passes its end, and cascades finalised windows
into coarser levels (e.g. 1 s → 10 s → 60 s).  Each level keeps only a
bounded number of finalised windows, so hot memory stays O(sources ×
levels × retention) no matter how long the stream runs.

count/mean/min/max combine exactly across the cascade.  Percentiles do
not: level 0 computes p50/p95 from raw values (``numpy.percentile``);
higher levels estimate them as the count-weighted mean of their children's
percentiles — a standard downsampling compromise, flagged via
``WindowStat.exact_percentiles``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from math import floor, inf
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.telemetry.events import TelemetryEvent


@dataclass(slots=True)
class WindowStat:
    """Finalised aggregate of one source over one tumbling window."""

    source: str
    window_start: float
    window_seconds: float
    count: int
    mean: float
    min: float
    max: float
    p50: float
    p95: float
    exact_percentiles: bool = True

    @property
    def window_end(self) -> float:
        return self.window_start + self.window_seconds

    def merge_key(self) -> Tuple[str, float]:
        return (self.source, self.window_start)


def merge_window_stats(
    stats: Sequence[WindowStat],
    window_start: float,
    window_seconds: float,
) -> WindowStat:
    """Combine child windows of one source into a coarser parent window.

    Exact for count/mean/min/max; percentile fields are count-weighted
    means of the children's percentiles (marked inexact).
    """
    if not stats:
        raise ValueError("cannot merge zero windows")
    total = sum(s.count for s in stats)
    return WindowStat(
        source=stats[0].source,
        window_start=window_start,
        window_seconds=window_seconds,
        count=total,
        mean=sum(s.mean * s.count for s in stats) / total,
        min=min(s.min for s in stats),
        max=max(s.max for s in stats),
        p50=sum(s.p50 * s.count for s in stats) / total,
        p95=sum(s.p95 * s.count for s in stats) / total,
        exact_percentiles=False,
    )


class _OpenWindow:
    """Accumulating state for one (source, window) bucket."""

    __slots__ = ("values", "children")

    def __init__(self) -> None:
        self.values: List[float] = []  # level 0: raw event values
        self.children: List[WindowStat] = []  # level > 0: finalised children


class TumblingWindowAggregator:
    """Multi-level tumbling-window rollup store.

    Parameters
    ----------
    window_seconds:
        Level-0 window size.
    cascades:
        Additional window sizes, each an integer multiple of the previous
        level (``(10.0, 60.0)`` with a 1 s base gives 1 s/10 s/60 s levels).
    retention:
        Finalised windows kept per (level, source); older ones are evicted
        so memory stays bounded.  The WAL remains the source of truth for
        anything older.
    allowed_lateness:
        Slack (seconds) behind the watermark before a window finalises;
        events later than this land in an already-finalised window and are
        counted in ``late_events`` instead of mutating history.
    """

    def __init__(
        self,
        window_seconds: float = 1.0,
        cascades: Sequence[float] = (10.0, 60.0),
        retention: int = 4096,
        allowed_lateness: float = 0.0,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if retention < 1:
            raise ValueError("retention must be >= 1")
        if allowed_lateness < 0:
            raise ValueError("allowed_lateness must be non-negative")
        sizes = [float(window_seconds)] + [float(c) for c in cascades]
        for prev, size in zip(sizes, sizes[1:]):
            ratio = size / prev
            if size <= prev or abs(ratio - round(ratio)) > 1e-9:
                raise ValueError(
                    "each cascade level must be an integer multiple of the "
                    f"previous ({prev} -> {size} is not)"
                )
        self.window_sizes = sizes
        self.retention = retention
        self.allowed_lateness = allowed_lateness
        self.watermark = -inf
        self.ingested = 0
        self.late_events = 0
        self._horizon_bucket = -inf  # last level-0 bucket finalisation ran at
        # per level: open buckets keyed (source, window_start) and
        # finalised deques keyed source
        self._open: List[Dict[Tuple[str, float], _OpenWindow]] = [
            {} for __ in sizes
        ]
        self._closed: List[Dict[str, Deque[WindowStat]]] = [{} for __ in sizes]
        #: level -> callbacks fired once per finalised window.  Empty for
        #: an unsubscribed aggregator, so the hot ingest path never pays
        #: for the feature (the check in ``_finalize`` is one truthiness
        #: test per *window*, not per event).
        self._finalize_hooks: Dict[int, List[Callable[[WindowStat], None]]] = {}

    # -- subscriptions -----------------------------------------------------------

    def on_finalize(
        self, callback: Callable[[WindowStat], None], level: int = 0
    ) -> None:
        """Call ``callback(stat)`` for every window finalised at ``level``.

        This is the incremental-consumption hook the SLO burn-rate
        evaluator attaches to: subscribers see each window exactly once,
        in finalisation order, the moment the watermark closes it — no
        polling, no re-reading of the retention deques.  Callbacks run
        synchronously inside :meth:`ingest`/:meth:`flush`; they must not
        mutate the aggregator.
        """
        if not 0 <= level < len(self.window_sizes):
            raise ValueError(
                f"level must be in [0, {len(self.window_sizes)}), got {level}"
            )
        self._finalize_hooks.setdefault(level, []).append(callback)

    # -- ingest -----------------------------------------------------------------

    def _window_start(self, timestamp: float, level: int) -> float:
        size = self.window_sizes[level]
        return floor(timestamp / size) * size

    def ingest(self, event: TelemetryEvent) -> None:
        """Bucket one event; advances the watermark and finalises windows."""
        start = self._window_start(event.timestamp, 0)
        if start + self.window_sizes[0] + self.allowed_lateness <= self.watermark:
            self.late_events += 1
            return
        bucket = self._open[0].setdefault((event.source, start), _OpenWindow())
        bucket.values.append(event.value)
        self.ingested += 1
        if event.timestamp > self.watermark:
            self.watermark = event.timestamp
            # window ends all fall on level-0 boundaries, so ripeness can
            # only change when the horizon crosses one — skip the open-
            # window scan otherwise (hot-path win at high event rates)
            horizon = self.watermark - self.allowed_lateness
            bucket = floor(horizon / self.window_sizes[0])
            if bucket != self._horizon_bucket:
                self._horizon_bucket = bucket
                self._finalize_ripe(horizon)

    def ingest_many(self, events: Sequence[TelemetryEvent]) -> None:
        for event in events:
            self.ingest(event)

    # -- window finalisation -----------------------------------------------------

    def _finalize_ripe(self, horizon: float) -> None:
        """Close every open window that ends at or before ``horizon``."""
        for level in range(len(self.window_sizes)):
            size = self.window_sizes[level]
            ripe = [
                key for key in self._open[level] if key[1] + size <= horizon
            ]
            for key in sorted(ripe, key=lambda k: k[1]):
                self._finalize(level, key)

    def _finalize(self, level: int, key: Tuple[str, float]) -> None:
        source, start = key
        bucket = self._open[level].pop(key)
        size = self.window_sizes[level]
        if level == 0:
            values = np.asarray(bucket.values, dtype=np.float64)
            stat = WindowStat(
                source=source,
                window_start=start,
                window_seconds=size,
                count=values.size,
                mean=float(values.mean()),
                min=float(values.min()),
                max=float(values.max()),
                p50=float(np.percentile(values, 50)),
                p95=float(np.percentile(values, 95)),
            )
        else:
            stat = merge_window_stats(bucket.children, start, size)
        series = self._closed[level].setdefault(
            source, deque(maxlen=self.retention)
        )
        series.append(stat)
        if self._finalize_hooks:
            for hook in self._finalize_hooks.get(level, ()):
                hook(stat)
        if level + 1 < len(self.window_sizes):
            parent_start = self._window_start(start, level + 1)
            parent = self._open[level + 1].setdefault(
                (source, parent_start), _OpenWindow()
            )
            parent.children.append(stat)

    def flush(self) -> None:
        """Finalise everything still open (end of stream / clean shutdown)."""
        self._finalize_ripe(inf)

    # -- queries ----------------------------------------------------------------

    @property
    def levels(self) -> int:
        return len(self.window_sizes)

    @property
    def sources(self) -> List[str]:
        names = set()
        for per_source in self._closed:
            names.update(per_source)
        return sorted(names)

    def windows(
        self,
        source: Optional[str] = None,
        level: int = 0,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[WindowStat]:
        """Finalised windows at one level, oldest first, optionally bounded
        to ``[start, end)`` by window start time."""
        if not 0 <= level < len(self.window_sizes):
            raise ValueError(
                f"level must be in [0, {len(self.window_sizes)}), got {level}"
            )
        per_source = self._closed[level]
        sources = [source] if source is not None else sorted(per_source)
        out: List[WindowStat] = []
        for name in sources:
            for stat in per_source.get(name, ()):
                if start is not None and stat.window_start < start:
                    continue
                if end is not None and stat.window_start >= end:
                    continue
                out.append(stat)
        out.sort(key=lambda s: (s.window_start, s.source))
        return out

    def totals(self, source: str, level: int = 0) -> Dict[str, float]:
        """Whole-retention aggregate for one source (exact fields only)."""
        stats = self.windows(source=source, level=level)
        if not stats:
            raise KeyError(f"no finalised windows for source {source!r}")
        merged = merge_window_stats(
            stats, stats[0].window_start, self.window_sizes[level]
        )
        return {
            "count": float(merged.count),
            "mean": merged.mean,
            "min": merged.min,
            "max": merged.max,
        }

    def stats(self) -> Dict[str, float]:
        """Snapshot counters for the pipeline's ``stats()`` panel."""
        return {
            "ingested": self.ingested,
            "late_events": self.late_events,
            "watermark": self.watermark,
            "open_windows": sum(len(level) for level in self._open),
            "closed_windows": sum(
                len(series)
                for level in self._closed
                for series in level.values()
            ),
        }
