"""Durable write-ahead log for telemetry events.

Format: a WAL is a directory of JSON-lines *segments*
(``wal-00000001.jsonl``, ``wal-00000002.jsonl``, …).  Each line is

    {"crc": <zlib.crc32 of the canonical event JSON>, "event": {...}}

so every record is independently verifiable.  Segments rotate at a size
threshold, which bounds the cost of tail recovery and lets retention/
archival operate on whole files.

Crash story: a process killed mid-write leaves at most a truncated (or
garbled) final line in the *last* segment.  :meth:`WriteAheadLog.open`
scans that tail and truncates it away; :func:`replay` streams every intact
record back in append order, so dashboards and audits can be rebuilt
exactly (see ``examples/telemetry_replay.py``).  Corruption anywhere other
than the final tail is *not* silently skipped — it raises
:class:`WalCorruptionError`, because a hole in the middle of an audit
stream must be investigated, not papered over.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, Iterator, List, Optional, Union

from repro.telemetry.events import TelemetryEvent

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".jsonl"


class WalCorruptionError(RuntimeError):
    """A record failed its checksum somewhere replay cannot self-heal."""


def _canonical(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _encode(event: TelemetryEvent) -> str:
    payload = _canonical(event.to_json_dict())
    crc = zlib.crc32(payload.encode("utf-8"))
    return f'{{"crc": {crc}, "event": {payload}}}\n'


def _decode(line: str) -> Optional[TelemetryEvent]:
    """Parse one WAL line; ``None`` means damaged (bad JSON or bad CRC)."""
    try:
        record = json.loads(line)
        payload = record["event"]
        expected = int(record["crc"])
    except (ValueError, KeyError, TypeError):
        return None
    actual = zlib.crc32(_canonical(payload).encode("utf-8"))
    if actual != expected:
        return None
    try:
        return TelemetryEvent.from_json_dict(payload)
    except (ValueError, KeyError, TypeError):
        return None


def _segment_name(index: int) -> str:
    return f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}"


def segment_paths(directory: str) -> List[str]:
    """All segment files in append order."""
    if not os.path.isdir(directory):
        return []
    names = sorted(
        n
        for n in os.listdir(directory)
        if n.startswith(SEGMENT_PREFIX) and n.endswith(SEGMENT_SUFFIX)
    )
    return [os.path.join(directory, n) for n in names]


class WriteAheadLog:
    """Append-only, segment-rotated event log.

    Parameters
    ----------
    directory:
        WAL home; created if missing.  One WAL per directory.
    max_segment_bytes:
        Rotation threshold; a segment is closed once its size reaches
        this, keeping tail-recovery and archival costs bounded.
    fsync:
        When ``True`` every :meth:`flush` also fsyncs — durable against
        power loss at a heavy latency cost; the default only guarantees
        process-crash durability, which is what the tests simulate.
    """

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        max_segment_bytes: int = 1 << 20,
        fsync: bool = False,
    ) -> None:
        if max_segment_bytes < 1:
            raise ValueError("max_segment_bytes must be >= 1")
        self.directory = os.fspath(directory)
        self.max_segment_bytes = max_segment_bytes
        self.fsync = fsync
        os.makedirs(self.directory, exist_ok=True)
        self._handle = None
        self._segment_index = 0
        self._segment_bytes = 0
        self.appended = 0
        self.recovered_truncated_records = 0
        self._open_tail()

    # -- segment management ---------------------------------------------------

    def _open_tail(self) -> None:
        """Resume on the last segment, healing a torn tail if present."""
        segments = segment_paths(self.directory)
        if not segments:
            self._segment_index = 1
            self._open_segment()
            return
        tail = segments[-1]
        self._segment_index = int(
            os.path.basename(tail)[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
        )
        self.recovered_truncated_records = self._truncate_damaged_tail(tail)
        self._segment_bytes = os.path.getsize(tail)
        if self._segment_bytes >= self.max_segment_bytes:
            self._segment_index += 1
            self._open_segment()
        else:
            self._handle = open(tail, "a", encoding="utf-8")

    def _truncate_damaged_tail(self, path: str) -> int:
        """Drop trailing damaged lines from a segment; return how many."""
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            lines = fh.readlines()
        intact = len(lines)
        while intact > 0 and _decode(lines[intact - 1]) is None:
            intact -= 1
        dropped = len(lines) - intact
        if dropped:
            with open(path, "w", encoding="utf-8") as fh:
                fh.writelines(lines[:intact])
        return dropped

    def _open_segment(self) -> None:
        if self._handle is not None:
            self._handle.close()
        path = os.path.join(self.directory, _segment_name(self._segment_index))
        self._handle = open(path, "a", encoding="utf-8")
        self._segment_bytes = os.path.getsize(path)

    # -- writing ----------------------------------------------------------------

    def append(self, event: TelemetryEvent) -> None:
        """Write one event record, rotating the segment when full."""
        if self._handle is None:
            raise RuntimeError("WAL is closed")
        line = _encode(event)
        self._handle.write(line)
        self._segment_bytes += len(line.encode("utf-8"))
        self.appended += 1
        if self._segment_bytes >= self.max_segment_bytes:
            self._segment_index += 1
            self._open_segment()

    def flush(self) -> None:
        if self._handle is None:
            return
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection -----------------------------------------------------------

    @property
    def segments(self) -> List[str]:
        return segment_paths(self.directory)

    def stats(self) -> Dict[str, int]:
        return {
            "appended": self.appended,
            "segments": len(self.segments),
            "segment_index": self._segment_index,
            "recovered_truncated_records": self.recovered_truncated_records,
        }


def replay(
    directory: Union[str, os.PathLike],
    start: Optional[float] = None,
    end: Optional[float] = None,
    sources: Optional[List[str]] = None,
) -> Iterator[TelemetryEvent]:
    """Stream every intact event back in append order.

    ``start``/``end`` bound event timestamps (inclusive/exclusive) and
    ``sources`` filters by producer, so cold queries pay only for what
    they read.  Damaged lines at the very tail of the *last* segment are
    tolerated (that is the crash signature the WAL is designed to heal);
    damage anywhere else raises :class:`WalCorruptionError`.
    """
    directory = os.fspath(directory)
    segments = segment_paths(directory)
    if not segments:
        raise FileNotFoundError(f"no WAL segments under {directory!r}")
    wanted = None if sources is None else set(sources)
    for seg_pos, path in enumerate(segments):
        last_segment = seg_pos == len(segments) - 1
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            lines = fh.readlines()
        for line_pos, line in enumerate(lines):
            event = _decode(line)
            if event is None:
                if last_segment and all(
                    _decode(rest) is None for rest in lines[line_pos:]
                ):
                    return  # torn tail: everything after is damage, stop
                raise WalCorruptionError(
                    f"corrupt record at {path}:{line_pos + 1}"
                )
            if start is not None and event.timestamp < start:
                continue
            if end is not None and event.timestamp >= end:
                continue
            if wanted is not None and event.source not in wanted:
                continue
            yield event
