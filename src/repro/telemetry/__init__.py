"""Streaming telemetry: bus, durable WAL, windowed rollups, queries.

The production-scale monitoring layer between sensors and the dashboard
(ROADMAP north star): readings become :class:`TelemetryEvent`\\ s on a
pub/sub :class:`TelemetryBus` with bounded queues and explicit
backpressure; a :class:`WriteAheadLog` makes the stream durable and
replayable after crashes; a :class:`TumblingWindowAggregator` keeps
bounded-memory rollups; :class:`TelemetryQuery` answers time-range /
filter / top-k questions over both tiers; :class:`TelemetryPipeline`
wires the standard stack.
"""

from repro.telemetry.bus import (
    BackpressureError,
    Subscription,
    TelemetryBus,
)
from repro.telemetry.events import (
    KIND_LOAD_SUMMARY,
    KIND_POOL,
    KIND_RESPONSE,
    KIND_SENSOR_READING,
    KIND_SERVING,
    KIND_UTILIZATION,
    NODE_ID_LABEL,
    SPAN_ID_LABEL,
    TRACE_ID_LABEL,
    TelemetryEvent,
)
from repro.telemetry.pipeline import SENSOR_TOPIC, TelemetryPipeline
from repro.telemetry.query import (
    TelemetryQuery,
    resample,
    trailing_windows,
    window_range,
)
from repro.telemetry.rollup import (
    TumblingWindowAggregator,
    WindowStat,
    merge_window_stats,
)
from repro.telemetry.wal import WalCorruptionError, WriteAheadLog, replay

__all__ = [
    "BackpressureError",
    "KIND_LOAD_SUMMARY",
    "KIND_POOL",
    "KIND_RESPONSE",
    "KIND_SENSOR_READING",
    "KIND_SERVING",
    "KIND_UTILIZATION",
    "NODE_ID_LABEL",
    "SENSOR_TOPIC",
    "SPAN_ID_LABEL",
    "Subscription",
    "TRACE_ID_LABEL",
    "TelemetryBus",
    "TelemetryEvent",
    "TelemetryPipeline",
    "TelemetryQuery",
    "TumblingWindowAggregator",
    "WalCorruptionError",
    "WindowStat",
    "WriteAheadLog",
    "merge_window_stats",
    "replay",
    "resample",
    "trailing_windows",
    "window_range",
]
