"""Query engine over hot rollups and the cold WAL.

Two storage tiers, one façade: recent, pre-aggregated windows live in the
:class:`~repro.telemetry.rollup.TumblingWindowAggregator` (cheap, bounded
memory); the full event history lives in the WAL on disk (complete, but a
sequential scan).  :class:`TelemetryQuery` routes window queries to the
hot tier and raw-event queries to the cold tier, and layers resampling and
worst-sensor ranking on top — the primitives the dashboard's long-horizon
panels need.
"""

from __future__ import annotations

import os
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.telemetry.events import TelemetryEvent
from repro.telemetry.rollup import (
    TumblingWindowAggregator,
    WindowStat,
    merge_window_stats,
)
from repro.telemetry.wal import replay


def window_range(
    stats: Sequence[WindowStat],
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> List[WindowStat]:
    """Windows overlapping ``[start, end)``, input order preserved.

    Overlap semantics (not containment): a window is kept when any part
    of its interval intersects the range, which is what both dashboards
    ("show me 10:00–10:05") and the burn-rate evaluator (trailing
    lookback windows rarely align with rollup boundaries) need.
    """
    if start is not None and end is not None and end <= start:
        raise ValueError(f"empty range [{start}, {end})")
    out = []
    for stat in stats:
        if start is not None and stat.window_end <= start:
            continue
        if end is not None and stat.window_start >= end:
            continue
        out.append(stat)
    return out


def trailing_windows(
    stats: Sequence[WindowStat],
    seconds: float,
    at: Optional[float] = None,
) -> List[WindowStat]:
    """The windows covering the trailing ``seconds`` before ``at``.

    ``at`` defaults to the newest window end in ``stats`` ("now" for a
    finalised stream).  This is the lookback primitive under the
    multi-window burn-rate evaluator: a 5 m/1 h window pair is two
    ``trailing_windows`` calls over the same finalised series.
    """
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    if not stats:
        return []
    if at is None:
        at = max(stat.window_end for stat in stats)
    return window_range(stats, start=at - seconds, end=at)


def resample(
    stats: Sequence[WindowStat], window_seconds: float
) -> List[WindowStat]:
    """Re-bucket finalised windows into coarser windows.

    ``window_seconds`` must be an integer multiple of the input windows'
    size.  Exact for count/mean/min/max (percentiles become weighted
    estimates, as in the rollup cascade).
    """
    if not stats:
        return []
    base = stats[0].window_seconds
    if any(s.window_seconds != base for s in stats):
        raise ValueError("resample needs windows of a single size")
    ratio = window_seconds / base
    if window_seconds < base or abs(ratio - round(ratio)) > 1e-9:
        raise ValueError(
            f"target window ({window_seconds}s) must be an integer "
            f"multiple of the input window ({base}s)"
        )
    grouped: Dict[Tuple[str, float], List[WindowStat]] = defaultdict(list)
    for stat in stats:
        start = (stat.window_start // window_seconds) * window_seconds
        grouped[(stat.source, start)].append(stat)
    out = [
        merge_window_stats(children, start, window_seconds)
        for (__, start), children in grouped.items()
    ]
    out.sort(key=lambda s: (s.window_start, s.source))
    return out


class TelemetryQuery:
    """Unified query surface over a rollup store and/or a WAL directory.

    Either tier is optional: a live pipeline queries both, a post-mortem
    audit may have only the WAL.
    """

    def __init__(
        self,
        rollups: Optional[TumblingWindowAggregator] = None,
        wal_dir: Optional[Union[str, os.PathLike]] = None,
    ) -> None:
        if rollups is None and wal_dir is None:
            raise ValueError("need at least one of rollups / wal_dir")
        self.rollups = rollups
        self.wal_dir = None if wal_dir is None else os.fspath(wal_dir)

    # -- hot tier ---------------------------------------------------------------

    def windows(
        self,
        sources: Optional[Sequence[str]] = None,
        level: int = 0,
        start: Optional[float] = None,
        end: Optional[float] = None,
        window_seconds: Optional[float] = None,
    ) -> List[WindowStat]:
        """Finalised windows, optionally time-bounded and resampled."""
        if self.rollups is None:
            raise RuntimeError("no hot rollup tier attached")
        stats: List[WindowStat] = []
        names = (
            list(sources) if sources is not None else self.rollups.sources
        )
        for name in names:
            stats.extend(
                self.rollups.windows(
                    source=name, level=level, start=start, end=end
                )
            )
        stats.sort(key=lambda s: (s.window_start, s.source))
        if window_seconds is not None:
            stats = resample(stats, window_seconds)
        return stats

    def top_k(
        self,
        k: int,
        level: int = 0,
        start: Optional[float] = None,
        end: Optional[float] = None,
        metric: str = "mean",
        worst: str = "lowest",
    ) -> List[Tuple[str, float]]:
        """The k worst sources over a time range.

        ``metric`` picks the window field to rank on; ``worst="lowest"``
        treats small values as bad (trust values, where 1.0 is healthy),
        ``"highest"`` treats large values as bad (latencies).  Windows are
        count-weighted so a source's score is its true per-event mean over
        the range.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if metric not in {"mean", "min", "max", "p50", "p95"}:
            raise ValueError(f"unknown metric {metric!r}")
        if worst not in {"lowest", "highest"}:
            raise ValueError("worst must be 'lowest' or 'highest'")
        weight: Dict[str, float] = defaultdict(float)
        score: Dict[str, float] = defaultdict(float)
        for stat in self.windows(level=level, start=start, end=end):
            score[stat.source] += getattr(stat, metric) * stat.count
            weight[stat.source] += stat.count
        ranked = sorted(
            ((name, score[name] / weight[name]) for name in score),
            key=lambda pair: pair[1],
            reverse=(worst == "highest"),
        )
        return ranked[:k]

    # -- cold tier ---------------------------------------------------------------

    def events(
        self,
        sources: Optional[Sequence[str]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[TelemetryEvent]:
        """Raw events from the WAL, append order, filtered server-side."""
        if self.wal_dir is None:
            raise RuntimeError("no cold WAL tier attached")
        out: List[TelemetryEvent] = []
        for event in replay(
            self.wal_dir,
            start=start,
            end=end,
            sources=None if sources is None else list(sources),
        ):
            out.append(event)
            if limit is not None and len(out) >= limit:
                break
        return out

    def rebuild_rollups(
        self,
        window_seconds: float = 1.0,
        cascades: Sequence[float] = (10.0, 60.0),
        retention: int = 4096,
    ) -> TumblingWindowAggregator:
        """Replay the cold tier into a fresh hot tier (crash recovery).

        This is the restart path: a process that lost its in-memory
        rollups streams the WAL back through a new aggregator and serves
        hot queries again, with identical exact statistics.
        """
        if self.wal_dir is None:
            raise RuntimeError("no cold WAL tier attached")
        aggregator = TumblingWindowAggregator(
            window_seconds=window_seconds,
            cascades=cascades,
            retention=retention,
        )
        for event in replay(self.wal_dir):
            aggregator.ingest(event)
        aggregator.flush()
        return aggregator
