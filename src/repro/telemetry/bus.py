"""In-process pub/sub telemetry bus with explicit backpressure.

The ROADMAP's production framing demands that monitoring never stalls the
inference path: producers (sensor polls, gateway listeners) publish into
*bounded* per-subscriber queues and return immediately; consumers (WAL
writer, rollup aggregator, dashboard) drain their queues when pumped.  A
slow consumer therefore costs dropped telemetry — an explicit, counted
policy decision — never a blocked producer.

Backpressure policies per subscription:

``drop_oldest``
    Evict the oldest queued event to admit the new one (keep freshest).
``drop_newest``
    Discard the incoming event (keep history, lose freshness).
``error``
    Raise :class:`BackpressureError` at the publisher — for consumers that
    must be lossless (e.g. an audit WAL) where dropping is worse than
    failing loudly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, List, Optional, Union

from repro.telemetry.events import TelemetryEvent

#: Subscribe to every topic.
WILDCARD = "*"

POLICIES = ("drop_oldest", "drop_newest", "error")


class BackpressureError(RuntimeError):
    """A lossless (`policy="error"`) subscription's queue overflowed."""


@dataclass
class TopicCounters:
    """Per-topic publication accounting."""

    published: int = 0
    delivered: int = 0
    dropped: int = 0


class Subscription:
    """One consumer's bounded queue on the bus.

    Created via :meth:`TelemetryBus.subscribe`; not instantiated directly.
    Events accumulate in the queue at publish time and are handed to the
    consumer by :meth:`poll` (pull style) or by the optional ``callback``
    when the bus is pumped (push style).
    """

    def __init__(
        self,
        name: str,
        topics: Iterable[str],
        capacity: int,
        policy: str,
        callback: Optional[Callable[[TelemetryEvent], None]],
    ) -> None:
        if capacity < 1:
            raise ValueError("subscription capacity must be >= 1")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown backpressure policy {policy!r}; choose from {POLICIES}"
            )
        self.name = name
        self.topics = frozenset(topics)
        self.capacity = capacity
        self.policy = policy
        self.callback = callback
        self._queue: Deque[TelemetryEvent] = deque()
        self.enqueued = 0
        self.delivered = 0
        self.dropped = 0

    def matches(self, topic: str) -> bool:
        return WILDCARD in self.topics or topic in self.topics

    def _offer(self, event: TelemetryEvent) -> bool:
        """Admit one event under the backpressure policy.

        Returns ``True`` if the event was enqueued, ``False`` if dropped.
        """
        if len(self._queue) >= self.capacity:
            if self.policy == "drop_oldest":
                self._queue.popleft()
                self.dropped += 1
            elif self.policy == "drop_newest":
                self.dropped += 1
                return False
            else:
                raise BackpressureError(
                    f"subscription {self.name!r} queue full "
                    f"({self.capacity} events) and policy is 'error'"
                )
        self._queue.append(event)
        self.enqueued += 1
        return True

    def poll(self, max_events: Optional[int] = None) -> List[TelemetryEvent]:
        """Drain up to ``max_events`` (all, when ``None``) from the queue.

        Invokes the subscription callback per event when one is set; the
        returned list is the same batch either way.
        """
        budget = len(self._queue) if max_events is None else max_events
        batch: List[TelemetryEvent] = []
        while self._queue and len(batch) < budget:
            batch.append(self._queue.popleft())
        self.delivered += len(batch)
        if self.callback is not None:
            for event in batch:
                self.callback(event)
        return batch

    @property
    def backlog(self) -> int:
        """Events queued but not yet delivered."""
        return len(self._queue)

    def counters(self) -> Dict[str, int]:
        return {
            "enqueued": self.enqueued,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "backlog": self.backlog,
        }


class TelemetryBus:
    """Named-topic pub/sub with per-subscriber bounded queues.

    >>> bus = TelemetryBus()
    >>> sub = bus.subscribe("sink", topics=["sensors"], capacity=2)
    >>> e = TelemetryEvent(source="s", value=1.0, timestamp=0.0)
    >>> bus.publish("sensors", e)
    1
    >>> [ev.source for ev in sub.poll()]
    ['s']
    """

    def __init__(self) -> None:
        self._subscriptions: Dict[str, Subscription] = {}
        self._topic_counters: Dict[str, TopicCounters] = {}

    # -- subscription management ----------------------------------------------

    def subscribe(
        self,
        name: str,
        topics: Union[str, Iterable[str]] = WILDCARD,
        capacity: int = 4096,
        policy: str = "drop_oldest",
        callback: Optional[Callable[[TelemetryEvent], None]] = None,
    ) -> Subscription:
        """Register a consumer; names must be unique on the bus."""
        if name in self._subscriptions:
            raise ValueError(f"subscription {name!r} already exists")
        if isinstance(topics, str):
            topics = (topics,)
        subscription = Subscription(name, topics, capacity, policy, callback)
        self._subscriptions[name] = subscription
        return subscription

    def unsubscribe(self, name: str) -> None:
        if name not in self._subscriptions:
            raise KeyError(f"unknown subscription {name!r}")
        del self._subscriptions[name]

    @property
    def subscriptions(self) -> List[Subscription]:
        return list(self._subscriptions.values())

    # -- publish / deliver ------------------------------------------------------

    def publish(self, topic: str, event: TelemetryEvent) -> int:
        """Fan one event out to every matching subscription queue.

        Never blocks: each subscription admits or drops per its policy.
        Returns the number of queues the event landed in.
        """
        counters = self._topic_counters.setdefault(topic, TopicCounters())
        counters.published += 1
        landed = 0
        for subscription in self._subscriptions.values():
            if not subscription.matches(topic):
                continue
            if subscription._offer(event):
                counters.delivered += 1
                landed += 1
            else:
                counters.dropped += 1
        return landed

    def publish_many(self, topic: str, events: Iterable[TelemetryEvent]) -> int:
        """Publish a batch; returns total queue placements."""
        return sum(self.publish(topic, event) for event in events)

    def pump(self, max_events: Optional[int] = None) -> int:
        """Drain every subscription that has a callback (push delivery).

        Pull-style subscriptions (no callback) are left untouched — their
        owners call :meth:`Subscription.poll` themselves.  Returns the
        number of events delivered.
        """
        delivered = 0
        for subscription in self._subscriptions.values():
            if subscription.callback is None:
                continue
            delivered += len(subscription.poll(max_events))
        return delivered

    # -- introspection ----------------------------------------------------------

    @property
    def topics(self) -> List[str]:
        return sorted(self._topic_counters)

    def stats(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Counter snapshot: per topic and per subscription."""
        return {
            "topics": {
                topic: {
                    "published": c.published,
                    "delivered": c.delivered,
                    "dropped": c.dropped,
                }
                for topic, c in self._topic_counters.items()
            },
            "subscriptions": {
                name: sub.counters()
                for name, sub in self._subscriptions.items()
            },
        }
