"""Synthetic network-activity dataset (use case 2 substrate).

The paper's dataset is proprietary: 2.15 GB of operator pcap captures reduced
to **382 labelled traces** over three activity classes — Web (304),
Interactive (34) and Video (44) — with **21 features in five categories**:
duration, protocol, uplink, downlink and speed.

This module synthesises per-activity packet behaviour on top of
:mod:`repro.datasets.pcap` and extracts exactly that feature set:

* **Web browsing** — request/response bursts, TCP-dominant, medium downlink;
* **Interactive** — long chatty sessions of small packets both ways, a large
  UDP share (real-time protocols);
* **Video streaming** — long sessions, bulk downlink segments, high
  throughput, mixed TCP/UDP (HTTPS + QUIC-style delivery).

Protocol-mix features dominate class separability by construction, which is
what lets the SHAP experiments reproduce the paper's finding that the
tcp/udp protocol features top the ranking for Web activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.datasets.pcap import DOWNLINK, UPLINK, Packet, Trace

#: Class names with the paper's trace counts.
ACTIVITY_CLASSES = ("web", "interactive", "video")
PAPER_CLASS_COUNTS = {"web": 304, "interactive": 34, "video": 44}

#: The 21 features, grouped in the paper's five categories.
FEATURE_CATEGORIES: Dict[str, Tuple[str, ...]] = {
    "duration": (
        "duration_total",
        "duration_active",
        "duration_idle_ratio",
    ),
    "protocol": (
        "protocol_tcp_ratio",
        "protocol_udp_ratio",
        "protocol_n_ports",
        "protocol_wellknown_ratio",
    ),
    "uplink": (
        "uplink_packets",
        "uplink_bytes",
        "uplink_mean_size",
        "uplink_packet_rate",
        "uplink_burstiness",
    ),
    "downlink": (
        "downlink_packets",
        "downlink_bytes",
        "downlink_mean_size",
        "downlink_packet_rate",
        "downlink_burstiness",
    ),
    "speed": (
        "speed_throughput",
        "speed_peak_throughput",
        "speed_down_up_ratio",
        "speed_mean_interarrival",
    ),
}

FEATURE_NAMES: Tuple[str, ...] = tuple(
    name for names in FEATURE_CATEGORIES.values() for name in names
)

assert len(FEATURE_NAMES) == 21, "the paper's dataset has exactly 21 features"

_WELL_KNOWN_PORTS = (80, 443, 53, 22)


@dataclass
class NetTrafficDataset:
    """Feature matrix + labels + raw traces for the 382-trace dataset."""

    X: np.ndarray  # (n_traces, 21)
    y: np.ndarray  # activity name per trace
    traces: List[Trace]
    feature_names: Tuple[str, ...] = FEATURE_NAMES

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    def class_counts(self) -> Dict[str, int]:
        return {c: int(np.sum(self.y == c)) for c in ACTIVITY_CLASSES}


def _web_trace(rng: np.random.Generator, user_id: int) -> Trace:
    """Browsing: page-load bursts of TCP downlink after small uplink requests.

    Per-session habits (page count, reading pauses, embedded auto-playing
    video ads) are drawn from wide distributions so the per-class feature
    ranges overlap — the contamination that keeps the paper's classifiers in
    the 94-96 % band instead of at 100 %.
    """
    packets: List[Packet] = []
    t = 0.0
    n_pages = int(rng.integers(2, 60))
    read_scale = rng.uniform(0.5, 30.0)
    ad_prob = rng.uniform(0.0, 0.5)
    upload_prob = rng.uniform(0.0, 0.3)
    # HTTP/2 multiplexing: a small pool of reused connections
    port_pool = [int(p) for p in rng.integers(49152, 65535, size=rng.integers(1, 7))]
    for __ in range(n_pages):
        src_port = port_pool[int(rng.integers(0, len(port_pool)))]
        packets.append(
            Packet(t, int(rng.integers(200, 700)), "tcp", UPLINK, src_port, 443)
        )
        t += rng.uniform(0.02, 0.2)
        # form posts / photo uploads push sizeable uplink bursts
        if rng.random() < upload_prob:
            for __ in range(int(rng.integers(5, 80))):
                packets.append(
                    Packet(
                        t,
                        int(rng.integers(500, 1500)),
                        "tcp",
                        UPLINK,
                        src_port,
                        443,
                    )
                )
                t += rng.uniform(0.001, 0.02)
        for __ in range(int(rng.integers(5, 60))):
            packets.append(
                Packet(
                    t,
                    int(rng.integers(600, 1500)),
                    "tcp",
                    DOWNLINK,
                    443,
                    src_port,
                )
            )
            t += rng.uniform(0.001, 0.03)
        # occasional DNS lookup (small udp share)
        if rng.random() < 0.4:
            packets.append(
                Packet(t, int(rng.integers(60, 120)), "udp", UPLINK, src_port, 53)
            )
            packets.append(
                Packet(
                    t + 0.01, int(rng.integers(80, 300)), "udp", DOWNLINK, 53, src_port
                )
            )
        # embedded auto-playing video ad: a streaming-like burst
        if rng.random() < ad_prob:
            ad_t = t + rng.uniform(0.1, 0.5)
            ad_proto = "udp" if rng.random() < 0.5 else "tcp"
            for __ in range(int(rng.integers(40, 250))):
                packets.append(
                    Packet(
                        ad_t,
                        int(rng.integers(1000, 1500)),
                        ad_proto,
                        DOWNLINK,
                        443,
                        src_port,
                    )
                )
                ad_t += rng.uniform(0.0005, 0.004)
            t = max(t, ad_t)
        t += rng.exponential(read_scale)  # reading time
    return Trace(packets=packets, user_id=user_id, activity="web")


def _interactive_trace(rng: np.random.Generator, user_id: int) -> Trace:
    """Interactive (chat/gaming/VoIP-like): steady small packets, UDP heavy."""
    packets: List[Packet] = []
    t = 0.0
    duration = rng.uniform(10.0, 300.0)
    # reconnects and parallel channels leave a handful of ports in use
    port_pool = [int(p) for p in rng.integers(49152, 65535, size=rng.integers(1, 5))]
    # session-dependent realtime mix; TURN-over-TLS sessions ride port 443
    udp_share = rng.uniform(0.5, 0.9)
    server_port = 443 if rng.random() < 0.45 else 3478
    gap_scale = rng.uniform(0.03, 2.0)
    uplink_bias = rng.uniform(0.2, 0.75)  # listen-mostly vs talk-mostly
    # video calls push near-MTU camera frames; text chat stays small
    size_hi = int(rng.integers(700, 1300)) if rng.random() < 0.4 else int(
        rng.integers(250, 700)
    )
    while t < duration:
        src_port = port_pool[int(rng.integers(0, len(port_pool)))]
        proto = "udp" if rng.random() < udp_share else "tcp"
        direction = UPLINK if rng.random() < uplink_bias else DOWNLINK
        size = int(rng.integers(60, size_hi))
        if direction == UPLINK:
            packets.append(Packet(t, size, proto, direction, src_port, server_port))
        else:
            packets.append(Packet(t, size, proto, direction, server_port, src_port))
        t += rng.exponential(gap_scale)
        # the user walks away: idle gaps inside the session
        if rng.random() < 0.004:
            t += rng.uniform(5.0, 30.0)
        # shared links / screen shares inject occasional web-like bursts
        if rng.random() < 0.003:
            burst_t = t
            for __ in range(int(rng.integers(10, 60))):
                packets.append(
                    Packet(
                        burst_t,
                        int(rng.integers(800, 1500)),
                        "tcp",
                        DOWNLINK,
                        443,
                        src_port,
                    )
                )
                burst_t += rng.uniform(0.001, 0.02)
            t = burst_t
    return Trace(packets=packets, user_id=user_id, activity="interactive")


def _video_trace(rng: np.random.Generator, user_id: int) -> Trace:
    """Streaming: periodic bulk downlink segments, high throughput.

    Quality and transport vary per session — short low-res clips over TCP
    look a lot like heavy browsing, long QUIC streams do not.
    """
    packets: List[Packet] = []
    t = 0.0
    duration = rng.uniform(20.0, 400.0)
    # players rotate CDN connections: several source ports per session
    port_pool = [int(p) for p in rng.integers(49152, 65535, size=rng.integers(1, 7))]
    quic = rng.random() < 0.75  # QUIC-style delivery over UDP
    proto = "udp" if quic else "tcp"
    seg_packets_hi = int(rng.integers(30, 220))  # stream quality
    size_lo = int(rng.integers(500, 1200))
    cadence = rng.uniform(1.5, 12.0)
    while t < duration:
        src_port = port_pool[int(rng.integers(0, len(port_pool)))]
        # manifest/request uplink
        packets.append(
            Packet(t, int(rng.integers(60, 700)), proto, UPLINK, src_port, 443)
        )
        seg_t = t + rng.uniform(0.01, 0.05)
        for __ in range(int(rng.integers(15, max(16, seg_packets_hi)))):
            packets.append(
                Packet(
                    seg_t,
                    int(rng.integers(size_lo, 1500)),
                    proto,
                    DOWNLINK,
                    443,
                    src_port,
                )
            )
            seg_t += rng.uniform(0.0005, 0.004)
        t += rng.uniform(0.5, cadence)  # segment cadence
    return Trace(packets=packets, user_id=user_id, activity="video")


_BUILDERS = {
    "web": _web_trace,
    "interactive": _interactive_trace,
    "video": _video_trace,
}


def generate_trace(activity: str, user_id: int = 0, seed: int = 0) -> Trace:
    """Generate one synthetic capture for the given activity class."""
    if activity not in _BUILDERS:
        raise ValueError(
            f"unknown activity {activity!r}; expected one of {ACTIVITY_CLASSES}"
        )
    rng = np.random.default_rng(seed)
    return _BUILDERS[activity](rng, user_id)


def _burstiness(timestamps: np.ndarray) -> float:
    """Coefficient of variation of inter-arrival times (0 for <3 packets)."""
    if timestamps.size < 3:
        return 0.0
    gaps = np.diff(np.sort(timestamps))
    mean = gaps.mean()
    if mean <= 0:
        return 0.0
    return float(gaps.std() / mean)


def extract_flow_features(trace: Trace) -> np.ndarray:
    """Compute the 21-feature vector (order given by ``FEATURE_NAMES``).

    Mirrors the paper's feature extraction: "21 features categorized into
    five main categories: duration, protocol, uplink, downlink, and speed".
    """
    packets = trace.packets
    if not packets:
        return np.zeros(len(FEATURE_NAMES))
    times = np.array([p.timestamp for p in packets])
    sizes = np.array([p.size for p in packets], dtype=np.float64)
    protocols = np.array([p.protocol for p in packets])
    directions = np.array([p.direction for p in packets])
    n = len(packets)

    duration_total = float(times.max() - times.min()) if n > 1 else 0.0
    # active time: seconds of 1-second bins containing at least one packet
    if duration_total > 0:
        bins = np.unique(np.floor(times).astype(np.int64))
        duration_active = float(len(bins))
        idle_ratio = max(0.0, 1.0 - duration_active / max(duration_total, 1.0))
    else:
        duration_active = 0.0
        idle_ratio = 0.0

    tcp_ratio = float(np.mean(protocols == "tcp"))
    udp_ratio = float(np.mean(protocols == "udp"))
    ports = {p.src_port for p in packets} | {p.dst_port for p in packets}
    n_ports = float(len(ports))
    wellknown = float(
        np.mean(
            [
                p.src_port in _WELL_KNOWN_PORTS or p.dst_port in _WELL_KNOWN_PORTS
                for p in packets
            ]
        )
    )

    def link_stats(direction: str) -> Tuple[float, float, float, float, float]:
        mask = directions == direction
        count = float(mask.sum())
        total = float(sizes[mask].sum())
        mean_size = float(sizes[mask].mean()) if count else 0.0
        rate = count / duration_total if duration_total > 0 else 0.0
        burst = _burstiness(times[mask])
        return count, total, mean_size, rate, burst

    up = link_stats(UPLINK)
    down = link_stats(DOWNLINK)

    throughput = sizes.sum() / duration_total if duration_total > 0 else 0.0
    if duration_total > 0:
        edges = np.arange(np.floor(times.min()), np.ceil(times.max()) + 1.0)
        if len(edges) >= 2:
            per_second, __ = np.histogram(times, bins=edges, weights=sizes)
            peak = float(per_second.max())
        else:
            peak = float(sizes.sum())
    else:
        peak = float(sizes.sum())
    down_up_ratio = down[1] / up[1] if up[1] > 0 else down[1]
    gaps = np.diff(np.sort(times))
    mean_interarrival = float(gaps.mean()) if gaps.size else 0.0

    return np.array(
        [
            duration_total,
            duration_active,
            idle_ratio,
            tcp_ratio,
            udp_ratio,
            n_ports,
            wellknown,
            *up,
            *down,
            throughput,
            peak,
            down_up_ratio,
            mean_interarrival,
        ]
    )


def generate_network_dataset(
    class_counts: Dict[str, int] = None,
    seed: int = 0,
) -> NetTrafficDataset:
    """Generate the full dataset (defaults to the paper's 304/34/44 split)."""
    counts = dict(PAPER_CLASS_COUNTS if class_counts is None else class_counts)
    unknown = set(counts) - set(ACTIVITY_CLASSES)
    if unknown:
        raise ValueError(f"unknown activity classes: {sorted(unknown)}")
    rng = np.random.default_rng(seed)
    traces: List[Trace] = []
    labels: List[str] = []
    user_id = 0
    for activity in ACTIVITY_CLASSES:
        for __ in range(counts.get(activity, 0)):
            trace_seed = int(rng.integers(0, 2**31 - 1))
            traces.append(generate_trace(activity, user_id=user_id, seed=trace_seed))
            labels.append(activity)
            user_id += 1
    X = np.vstack([extract_flow_features(t) for t in traces])
    y = np.array(labels)
    order = np.random.default_rng(seed + 1).permutation(len(traces))
    return NetTrafficDataset(
        X=X[order],
        y=y[order],
        traces=[traces[i] for i in order],
    )
