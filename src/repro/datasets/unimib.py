"""Synthetic UniMiB-SHAR-like accelerometer dataset (use case 1 substrate).

The real UniMiB SHAR benchmark [Micucci et al. 2017] contains 11 771
tri-axial accelerometer windows from 30 subjects over 9 activities of daily
living (ADL) and 8 fall types.  It cannot be shipped offline, so this module
generates windows with the same structure:

* 17 classes with distinct motion signatures — periodic gait patterns for
  locomotion ADLs, postural transitions, and impact-spike-then-stillness
  patterns for falls (direction encoded in the axis mix);
* 30-subject population with per-subject amplitude/baseline idiosyncrasies;
* the binary *fall vs ADL* task the paper's medical e-calling app solves.

Class separability is tuned so the paper's model ordering reproduces:
a linear model underfits the spike-position-invariant fall signature
(LR ≈ 73 %), a single CART tree keyed on individual time points reaches
≈ 90 %, and the ensemble/neural models reach ≈ 97 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Activities of daily living (9 classes, matching UniMiB SHAR's ADL split).
ADL_CLASSES = (
    "walking",
    "running",
    "going_upstairs",
    "going_downstairs",
    "jumping",
    "sitting_down",
    "standing_up_from_sitting",
    "standing_up_from_lying",
    "lying_down",
)

#: Fall types (8 classes, matching UniMiB SHAR's fall split).
FALL_CLASSES = (
    "falling_forward",
    "falling_backward",
    "falling_left",
    "falling_right",
    "falling_with_protection",
    "falling_backward_sitting",
    "syncope",
    "falling_hitting_obstacle",
)

ALL_CLASSES = ADL_CLASSES + FALL_CLASSES

#: Default window length (samples per axis); 3 axes are concatenated.
DEFAULT_WINDOW = 34


@dataclass
class UniMiBLikeDataset:
    """Flattened accelerometer windows plus labels and subject ids."""

    X: np.ndarray  # (n, 3 * window) flattened ax|ay|az windows
    y_activity: np.ndarray  # class names (str) per sample
    y_class_index: np.ndarray  # integer class index into ALL_CLASSES
    subjects: np.ndarray  # subject id per sample
    window: int

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    @property
    def is_fall(self) -> np.ndarray:
        """Boolean mask: True for fall windows (the 8 fall classes)."""
        return self.y_class_index >= len(ADL_CLASSES)


def _periodic(
    rng: np.random.Generator, window: int, freq: float, amp: np.ndarray
) -> np.ndarray:
    """Tri-axial periodic motion with a random phase (gait-style ADLs)."""
    t = np.arange(window, dtype=np.float64)
    phase = rng.uniform(0, 2 * np.pi)
    signal = np.empty((3, window))
    for axis in range(3):
        signal[axis] = amp[axis] * np.sin(2 * np.pi * freq * t / window + phase)
        signal[axis] += 0.3 * amp[axis] * np.sin(
            4 * np.pi * freq * t / window + 2 * phase
        )
    return signal


def _transition(
    rng: np.random.Generator, window: int, start: np.ndarray, end: np.ndarray
) -> np.ndarray:
    """Smooth postural transition between two gravity orientations."""
    mid = rng.uniform(0.3, 0.7)
    t = np.arange(window, dtype=np.float64) / (window - 1)
    blend = 1.0 / (1.0 + np.exp(-12.0 * (t - mid)))
    return start[:, None] * (1 - blend) + end[:, None] * blend


def _fall(
    rng: np.random.Generator,
    window: int,
    direction: np.ndarray,
    spike_height: float,
    post_orientation: np.ndarray,
    orientation_consistency: float,
    start_orientation: np.ndarray = None,
) -> np.ndarray:
    """Impact spike at a random position, then near-stillness on the ground.

    Two randomisations defeat a linear classifier, reproducing the paper's
    LR ≈ 73 % baseline: the spike lands at a random window position (no fixed
    coordinate carries it) and its sign is random (the subject falls to
    either side, so the linear contribution of the impact cancels in
    expectation).  ``orientation_consistency`` is the probability that the
    post-fall resting orientation keeps its class-specific sign — the one
    weak linearly-usable cue left.
    """
    pos = rng.integers(int(window * 0.35), int(window * 0.8))
    spike_sign = 1.0 if rng.random() < 0.5 else -1.0
    post_sign = 1.0 if rng.random() < orientation_consistency else -1.0
    signal = np.zeros((3, window))
    t = np.arange(window, dtype=np.float64)
    # free-fall dip before impact then spike
    width = max(2.0, window * 0.04)
    envelope = np.exp(-((t - pos) ** 2) / (2 * width**2))
    pre = np.exp(-((t - (pos - 2 * width)) ** 2) / (2 * width**2))
    before = t <= pos + 2 * width
    start = _GRAVITY_STAND if start_orientation is None else start_orientation
    for axis in range(3):
        signal[axis] = spike_sign * (
            spike_height * direction[axis] * envelope
            - 0.5 * spike_height * direction[axis] * pre
        )
        # pre-fall posture gravity until impact, then lying on the ground;
        # the horizontal (x/y) resting components flip with which side the
        # subject lands on, z always stays a small positive residual.
        axis_sign = post_sign if axis < 2 else 1.0
        signal[axis] += start[axis] * before
        signal[axis] += axis_sign * post_orientation[axis] * ~before
    return signal


# Orientations as seen by a smartphone in a trouser pocket: standing leaves
# the z axis aligned with gravity; sitting rotates the thigh horizontal
# (low z), which makes the postural ADLs share the low-z profile of a
# post-fall lying position — the overlap that caps a linear model near the
# paper's 73 % baseline.
_GRAVITY_STAND = np.array([0.0, 0.0, 1.0])
_GRAVITY_SIT = np.array([0.0, 0.8, 0.45])
_GRAVITY_LIE = np.array([0.9, 0.1, 0.3])

_ADL_BUILDERS = {
    "walking": lambda rng, w: _periodic(rng, w, 3.0, np.array([0.5, 0.6, 0.8]))
    + _GRAVITY_STAND[:, None],
    "running": lambda rng, w: _periodic(rng, w, 5.0, np.array([1.0, 1.2, 1.6]))
    + _GRAVITY_STAND[:, None],
    "going_upstairs": lambda rng, w: _periodic(rng, w, 2.5, np.array([0.6, 0.9, 0.7]))
    + _GRAVITY_STAND[:, None]
    + np.array([0.0, 0.2, 0.0])[:, None],
    "going_downstairs": lambda rng, w: _periodic(
        rng, w, 2.8, np.array([0.7, 1.0, 0.9])
    )
    + _GRAVITY_STAND[:, None]
    - np.array([0.0, 0.2, 0.0])[:, None],
    "jumping": lambda rng, w: _periodic(rng, w, 2.0, np.array([0.4, 0.5, 2.2]))
    + _GRAVITY_STAND[:, None],
    "sitting_down": lambda rng, w: _transition(rng, w, _GRAVITY_STAND, _GRAVITY_SIT),
    "standing_up_from_sitting": lambda rng, w: _transition(
        rng, w, _GRAVITY_SIT, _GRAVITY_STAND
    ),
    "standing_up_from_lying": lambda rng, w: _transition(
        rng, w, _GRAVITY_LIE, _GRAVITY_STAND
    ),
    "lying_down": lambda rng, w: _transition(rng, w, _GRAVITY_STAND, _GRAVITY_LIE),
}

_FALL_PARAMS = {
    "falling_forward": (np.array([0.0, 1.0, -0.4]), 3.2, np.array([0.0, 0.9, 0.2])),
    "falling_backward": (np.array([0.0, -1.0, -0.4]), 3.4, np.array([0.0, -0.9, 0.2])),
    "falling_left": (np.array([-1.0, 0.0, -0.4]), 3.0, np.array([-0.9, 0.0, 0.2])),
    "falling_right": (np.array([1.0, 0.0, -0.4]), 3.0, np.array([0.9, 0.0, 0.2])),
    "falling_with_protection": (
        np.array([0.0, 0.8, -0.6]),
        2.4,
        np.array([0.0, 0.7, 0.4]),
    ),
    "falling_backward_sitting": (
        np.array([0.0, -0.7, -0.7]),
        2.6,
        np.array([0.0, -0.5, 0.6]),
    ),
    "syncope": (np.array([0.3, 0.3, -1.0]), 2.8, np.array([0.5, 0.5, 0.1])),
    "falling_hitting_obstacle": (
        np.array([0.5, 0.8, -0.3]),
        3.8,
        np.array([0.4, 0.7, 0.2]),
    ),
}


def generate_unimib_like(
    n_samples: int = 11771,
    n_subjects: int = 30,
    window: int = DEFAULT_WINDOW,
    noise: float = 0.25,
    orientation_consistency: float = 0.5,
    seed: int = 0,
) -> UniMiBLikeDataset:
    """Generate the synthetic dataset.

    Samples are allocated round-robin over the 17 classes and uniformly over
    subjects.  Per-subject idiosyncrasy is modelled as an amplitude gain and
    a constant baseline offset, and white sensor noise is added per sample.
    """
    if n_samples < len(ALL_CLASSES):
        raise ValueError(f"need at least {len(ALL_CLASSES)} samples")
    if window < 16:
        raise ValueError("window must be >= 16 samples")
    rng = np.random.default_rng(seed)
    subject_gain = rng.uniform(0.85, 1.15, size=n_subjects)
    subject_offset = rng.normal(0.0, 0.05, size=(n_subjects, 3))

    X = np.empty((n_samples, 3 * window))
    y_idx = np.empty(n_samples, dtype=np.int64)
    subjects = np.empty(n_samples, dtype=np.int64)
    for i in range(n_samples):
        class_index = i % len(ALL_CLASSES)
        subject = int(rng.integers(0, n_subjects))
        name = ALL_CLASSES[class_index]
        if name in _ADL_BUILDERS:
            signal = _ADL_BUILDERS[name](rng, window)
        else:
            direction, height, post = _FALL_PARAMS[name]
            height = height * rng.uniform(0.85, 1.15)
            # falls from a seated posture (fainting, sliding off a chair)
            # start with the sitting orientation; the rest start upright
            start = (
                _GRAVITY_SIT
                if name in ("syncope", "falling_backward_sitting")
                else _GRAVITY_STAND
            )
            signal = _fall(
                rng,
                window,
                direction,
                height,
                post,
                orientation_consistency,
                start_orientation=start,
            )
        # the phone sits at an arbitrary yaw in the pocket: rotate the
        # horizontal plane per recording (kills linear x/y cues; magnitude
        # information survives for the non-linear models)
        theta = rng.uniform(0.0, 2 * np.pi)
        cos_t, sin_t = np.cos(theta), np.sin(theta)
        rotated_x = cos_t * signal[0] - sin_t * signal[1]
        rotated_y = sin_t * signal[0] + cos_t * signal[1]
        signal[0], signal[1] = rotated_x, rotated_y
        signal = signal * subject_gain[subject] + subject_offset[subject][:, None]
        signal += rng.normal(0.0, noise, size=signal.shape)
        X[i] = signal.reshape(-1)
        y_idx[i] = class_index
        subjects[i] = subject

    order = rng.permutation(n_samples)
    y_idx = y_idx[order]
    return UniMiBLikeDataset(
        X=X[order],
        y_activity=np.array([ALL_CLASSES[c] for c in y_idx]),
        y_class_index=y_idx,
        subjects=subjects[order],
        window=window,
    )


def to_binary_fall_task(
    dataset: UniMiBLikeDataset,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(X, y)`` for the binary fall-detection task (1 = fall).

    This is the classification task of the medical e-calling application:
    "uses accelerometer data to detect the falling of an elderly person".
    """
    return dataset.X, dataset.is_fall.astype(np.int64)
