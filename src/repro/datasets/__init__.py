"""Dataset substrates for the SPATIAL reproduction.

The paper's evaluation uses the UniMiB SHAR accelerometer dataset and a
proprietary 2.15 GB pcap capture of operator network traffic, neither of
which can be redistributed offline.  This package synthesises the closest
equivalents (see DESIGN.md §2): generators that preserve the datasets' class
structure, skew and learnability so every experiment exercises the same code
paths on data of the same shape.
"""

from repro.datasets.unimib import (
    ADL_CLASSES,
    FALL_CLASSES,
    UniMiBLikeDataset,
    generate_unimib_like,
    to_binary_fall_task,
)
from repro.datasets.pcap import Packet, Trace, read_trace_csv, write_trace_csv
from repro.datasets.nettraffic import (
    ACTIVITY_CLASSES,
    FEATURE_CATEGORIES,
    FEATURE_NAMES,
    NetTrafficDataset,
    extract_flow_features,
    generate_network_dataset,
    generate_trace,
)
from repro.datasets.shapes import SHAPE_CLASSES, generate_shape_images
from repro.datasets.csvio import read_feature_csv, write_feature_csv

__all__ = [
    "ACTIVITY_CLASSES",
    "ADL_CLASSES",
    "FALL_CLASSES",
    "FEATURE_CATEGORIES",
    "FEATURE_NAMES",
    "NetTrafficDataset",
    "Packet",
    "SHAPE_CLASSES",
    "Trace",
    "UniMiBLikeDataset",
    "extract_flow_features",
    "generate_network_dataset",
    "generate_shape_images",
    "generate_trace",
    "generate_unimib_like",
    "read_feature_csv",
    "read_trace_csv",
    "to_binary_fall_task",
    "write_feature_csv",
    "write_trace_csv",
]
