"""Packet-trace data model — the Wireshark/pcap stand-in.

The paper captures user activities with Wireshark into pcap files containing
"source and destination IP addresses, protocols, port numbers, packet
timestamps, packet size".  This module provides the same record structure
(:class:`Packet`, :class:`Trace`) plus a CSV round-trip, mirroring the
paper's "processed CSV files derived from this dataset".
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Union

VALID_PROTOCOLS = ("tcp", "udp")
UPLINK = "up"
DOWNLINK = "down"


@dataclass(frozen=True)
class Packet:
    """One captured packet header."""

    timestamp: float  # seconds since trace start
    size: int  # bytes on the wire
    protocol: str  # "tcp" | "udp"
    direction: str  # "up" (client→server) | "down"
    src_port: int
    dst_port: int

    def __post_init__(self) -> None:
        if self.protocol not in VALID_PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.direction not in (UPLINK, DOWNLINK):
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.size <= 0:
            raise ValueError("packet size must be positive")
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")


@dataclass
class Trace:
    """A user-session capture: an ordered list of packets plus metadata."""

    packets: List[Packet] = field(default_factory=list)
    user_id: int = 0
    activity: str = ""

    def __post_init__(self) -> None:
        self.packets = sorted(self.packets, key=lambda p: p.timestamp)

    @property
    def duration(self) -> float:
        """Seconds between first and last packet (0 for <2 packets)."""
        if len(self.packets) < 2:
            return 0.0
        return self.packets[-1].timestamp - self.packets[0].timestamp

    @property
    def total_bytes(self) -> int:
        return sum(p.size for p in self.packets)

    def filter(self, protocol: str = None, direction: str = None) -> List[Packet]:
        """Return packets matching the given protocol and/or direction."""
        out = self.packets
        if protocol is not None:
            out = [p for p in out if p.protocol == protocol]
        if direction is not None:
            out = [p for p in out if p.direction == direction]
        return out


_CSV_FIELDS = ("timestamp", "size", "protocol", "direction", "src_port", "dst_port")


def write_trace_csv(trace: Trace, path: Union[str, Path]) -> None:
    """Serialise a trace to CSV (one packet per row, metadata in a comment)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        handle.write(f"# user_id={trace.user_id} activity={trace.activity}\n")
        writer = csv.writer(handle)
        writer.writerow(_CSV_FIELDS)
        for p in trace.packets:
            writer.writerow(
                [p.timestamp, p.size, p.protocol, p.direction, p.src_port, p.dst_port]
            )


def read_trace_csv(path: Union[str, Path]) -> Trace:
    """Load a trace written by :func:`write_trace_csv`."""
    path = Path(path)
    user_id, activity = 0, ""
    packets: List[Packet] = []
    with path.open() as handle:
        first = handle.readline().strip()
        if first.startswith("#"):
            for token in first.lstrip("# ").split():
                key, __, value = token.partition("=")
                if key == "user_id":
                    user_id = int(value)
                elif key == "activity":
                    activity = value
        else:
            handle.seek(0)
        reader = csv.DictReader(handle)
        for row in reader:
            packets.append(
                Packet(
                    timestamp=float(row["timestamp"]),
                    size=int(row["size"]),
                    protocol=row["protocol"],
                    direction=row["direction"],
                    src_port=int(row["src_port"]),
                    dst_port=int(row["dst_port"]),
                )
            )
    return Trace(packets=packets, user_id=user_id, activity=activity)
