"""Small synthetic image dataset for the image-XAI experiments.

Experiment 2 (§VI-B) stresses the LIME/SHAP/occlusion micro-services with
*image* inputs, whose explanation cost is far higher than tabular inputs.
To exercise those code paths we provide a compact shape-classification task:
grayscale images containing a cross, a box or a diagonal stripe at a random
location, learnable by the MLP on flattened pixels and explainable by
occlusion maps and image LIME.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: The three shape classes.
SHAPE_CLASSES = ("cross", "box", "diagonal")


def _draw_cross(img: np.ndarray, rng: np.random.Generator) -> None:
    size = img.shape[0]
    arm = max(2, size // 5)
    cy = int(rng.integers(arm, size - arm))
    cx = int(rng.integers(arm, size - arm))
    img[cy - arm : cy + arm + 1, cx] = 1.0
    img[cy, cx - arm : cx + arm + 1] = 1.0


def _draw_box(img: np.ndarray, rng: np.random.Generator) -> None:
    size = img.shape[0]
    side = max(3, size // 4)
    top = int(rng.integers(0, size - side))
    left = int(rng.integers(0, size - side))
    img[top : top + side, left] = 1.0
    img[top : top + side, left + side - 1] = 1.0
    img[top, left : left + side] = 1.0
    img[top + side - 1, left : left + side] = 1.0


def _draw_diagonal(img: np.ndarray, rng: np.random.Generator) -> None:
    size = img.shape[0]
    offset = int(rng.integers(-size // 3, size // 3))
    for i in range(size):
        j = i + offset
        if 0 <= j < size:
            img[i, j] = 1.0
            if j + 1 < size:
                img[i, j + 1] = 1.0


_DRAWERS = {"cross": _draw_cross, "box": _draw_box, "diagonal": _draw_diagonal}


def generate_shape_images(
    n_samples: int = 600,
    size: int = 16,
    noise: float = 0.15,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(images, labels)``: (n, size, size) floats in [0, 1] + names.

    Classes are balanced round-robin; pixel noise keeps the task non-trivial.
    """
    if size < 8:
        raise ValueError("size must be >= 8")
    if n_samples < len(SHAPE_CLASSES):
        raise ValueError("need at least one sample per class")
    rng = np.random.default_rng(seed)
    images = np.zeros((n_samples, size, size))
    labels = np.empty(n_samples, dtype=object)
    for i in range(n_samples):
        name = SHAPE_CLASSES[i % len(SHAPE_CLASSES)]
        _DRAWERS[name](images[i], rng)
        images[i] += rng.normal(0.0, noise, size=(size, size))
        labels[i] = name
    np.clip(images, 0.0, 1.0, out=images)
    order = rng.permutation(n_samples)
    return images[order], labels[order].astype(str)
