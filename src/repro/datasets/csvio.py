"""CSV import/export of the processed feature datasets.

The paper works with "processed CSV files derived from this dataset"
(§VI-A) and its front-end parses CSVs with Papaparse; these helpers are the
equivalent round-trip so a feature matrix plus labels can leave and
re-enter the pipeline as one portable artifact.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

import numpy as np


def write_feature_csv(
    path: Union[str, Path],
    X: np.ndarray,
    y: np.ndarray,
    feature_names: Optional[Sequence[str]] = None,
    label_column: str = "label",
) -> None:
    """Write features + labels to a headered CSV (one row per sample)."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y disagree on sample count")
    if feature_names is None:
        feature_names = [f"f{i}" for i in range(X.shape[1])]
    if len(feature_names) != X.shape[1]:
        raise ValueError("one feature name per column required")
    if label_column in feature_names:
        raise ValueError(f"label column {label_column!r} clashes with a feature")
    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([*feature_names, label_column])
        for row, label in zip(X, y):
            writer.writerow([*(repr(float(v)) for v in row), label])


def read_feature_csv(
    path: Union[str, Path],
    label_column: str = "label",
) -> Tuple[np.ndarray, np.ndarray, Tuple[str, ...]]:
    """Load a CSV written by :func:`write_feature_csv`.

    Returns ``(X, y, feature_names)``; labels stay strings (callers encode
    as needed — numeric labels survive ``astype`` on their side).
    """
    rows = []
    labels = []
    with Path(path).open() as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if not header or label_column not in header:
            raise ValueError(f"CSV lacks the {label_column!r} column")
        label_index = header.index(label_column)
        feature_names = tuple(
            name for i, name in enumerate(header) if i != label_index
        )
        for line in reader:
            if not line:
                continue
            labels.append(line[label_index])
            rows.append(
                [float(v) for i, v in enumerate(line) if i != label_index]
            )
    if not rows:
        raise ValueError("CSV contains no data rows")
    return np.array(rows), np.array(labels), feature_names
