"""The deterministic incident drill behind ``python -m repro slo``.

One function, :func:`run_incident_drill`, closes the monitoring loop the
SLO engine exists for, end to end on a seeded cluster:

* a sharded cluster run (:class:`~repro.cluster.ClusterRunner`) with
  per-request response/availability telemetry (``response_every=1``) and
  full tracing, so every published latency event carries exemplar labels;
* an injected slow-node fault (:class:`~repro.cluster.FaultPlan`) on the
  loaded route's ring *primary* — the node every healthy dispatch lands
  on, so the regression is attributable to exactly one node;
* a synthetic sensor feed whose value degrades while the fault is active,
  giving the incident engine correlated cross-source evidence;
* the SLO stack from :mod:`repro.slo`: drill-scaled multi-window
  burn-rate rules over the per-node rollup sources, and an incident
  engine diffing breach-window critical paths against the pre-fault
  baseline.

Everything is a function of the seed and the drill parameters: the
simulator clock drives all timestamps, trace/span ids are seeded
splitmix64, and evidence lists are sorted — so the generated incident
reports are byte-stable and golden-file testable.

This module lives at the repo root — the unrestricted application layer —
because it composes ``cluster``, ``slo``, ``core`` and ``telemetry``,
which no single package below the root may do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster import ClusterRunner, ClusterTopology, FaultPlan, RouteSpec
from repro.core.dashboard import AIDashboard
from repro.core.narrator import Audience, narrate_incident
from repro.gateway.loadgen import SummaryReport, ThreadGroup
from repro.gateway.simulation import Simulator
from repro.slo import (
    SLO_TOPIC,
    BurnRateAlert,
    Incident,
    IncidentEngine,
    SLODefinition,
    SLOEvaluator,
    drill_definitions,
)
from repro.telemetry.events import KIND_SENSOR_READING, TelemetryEvent
from repro.telemetry.pipeline import SENSOR_TOPIC, TelemetryPipeline

__all__ = ["CLUSTER_TOPIC", "IncidentDrillResult", "run_incident_drill"]

CLUSTER_TOPIC = "cluster"

#: Synthetic sensor levels for the correlated-evidence feed: ``healthy``
#: clears the drill's sensor floor, ``degraded`` sits below it while the
#: fault is active.  Drill colour, not SLO policy (the thresholds that
#: define breach live in ``repro.slo.definitions``).
_SENSOR_HEALTHY = 0.92
_SENSOR_DEGRADED = 0.55
_SENSOR_PERIOD = 0.5


@dataclass
class IncidentDrillResult:
    """Everything a view (CLI, test, notebook) needs from one drill."""

    report: SummaryReport
    runner: ClusterRunner
    pipeline: TelemetryPipeline
    evaluator: SLOEvaluator
    engine: IncidentEngine
    route: str
    faulted_node: str
    fault_at: float
    #: Every bus event in publish order (the tap feeding exemplar
    #: resolution and evidence correlation).
    events: List[TelemetryEvent] = field(default_factory=list)

    @property
    def alerts(self) -> List[BurnRateAlert]:
        return self.evaluator.alerts

    @property
    def incidents(self) -> List[Incident]:
        return self.engine.incidents

    @property
    def primary_incident(self) -> Optional[Incident]:
        """The headline incident: the first node-attributed *page* (the
        fast burn-rate pair firing on the faulted node), falling back to
        any node-attributed breach."""
        attributed = [
            incident
            for incident in self.engine.incidents
            if incident.suspect_node is not None
        ]
        for incident in attributed:
            if incident.severity == "page":
                return incident
        return attributed[0] if attributed else None

    def incident_report(self, audience: Audience) -> str:
        incident = self.primary_incident
        if incident is None:
            raise RuntimeError("the drill produced no node-attributed incident")
        return narrate_incident(incident, audience)

    def dashboard(self) -> AIDashboard:
        """A dashboard wired to the drill's SLO feed (for the CLI view)."""
        board = AIDashboard()
        board.set_slo_provider(
            self.evaluator.status,
            lambda: (
                None
                if self.engine.last_incident is None
                else self.engine.last_incident.incident_id
            ),
        )
        return board


def run_incident_drill(
    route: str = "shap",
    seed: int = 21,
    n_nodes: int = 6,
    replication: int = 2,
    n_threads: int = 8,
    think_time: float = 0.2,
    duration: float = 120.0,
    fault_at: float = 40.0,
    fault_duration: float = 45.0,
    slow_factor: float = 6.0,
    window_seconds: float = 1.0,
    wal_dir=None,
    definitions: Optional[List[SLODefinition]] = None,
) -> IncidentDrillResult:
    """Run one seeded slow-node incident drill and return the full stack.

    The fault lands on the route's ring primary (where every healthy
    dispatch goes), so the per-node latency objective breaches on exactly
    that node; the burn-rate evaluator pages within its fast window pair
    and the incident engine assembles the evidence bundle live, inside
    the same simulated run.
    """
    pipeline = TelemetryPipeline(
        wal_dir=wal_dir,
        window_seconds=window_seconds,
        cascades=(),
        auto_pump_every=256,
    )
    # The tap must be registered before start(): bus subscriptions drain
    # in insertion order, so when the rollup drain finalises a window and
    # the evaluator fires, this list already holds every event up to the
    # current batch — exemplar resolution inside the alert callback sees
    # a complete stream.
    events: List[TelemetryEvent] = []
    pipeline.bus.subscribe(
        "slo-drill-tap", capacity=1 << 17, callback=events.append
    )
    pipeline.start()

    sim = Simulator()
    topology = ClusterTopology(
        sim,
        [RouteSpec(route=route, concurrency=4)],
        n_nodes=n_nodes,
        replication=replication,
        seed=seed,
    )
    runner = ClusterRunner(
        topology,
        seed=seed,
        trace_every=1,
        response_every=1,
        telemetry=pipeline,
        topic=CLUSTER_TOPIC,
        max_traces=1 << 14,
    )

    slo_definitions = (
        drill_definitions(route) if definitions is None else definitions
    )
    evaluator = SLOEvaluator(
        slo_definitions,
        emit=lambda event: pipeline.publish(SLO_TOPIC, event),
    )
    evaluator.attach(pipeline.rollups)
    engine = IncidentEngine(
        runner.collector,
        events,
        baseline_until=fault_at,
        evaluator=evaluator,
    )
    engine.attach(evaluator)

    # the fault hits the dispatch primary: the node every request lands
    # on while the cluster is healthy, hence the one the per-node SLO
    # series degrades for
    faulted_node = topology.ring.preference(route, replication)[0]
    plan = FaultPlan().add_slow(
        faulted_node, fault_at, fault_duration, slow_factor
    )
    runner.apply_fault_plan(plan)

    fault_end = fault_at + fault_duration

    def emit_sensor() -> None:
        now = sim.now
        degraded = fault_at <= now < fault_end
        pipeline.publish(
            SENSOR_TOPIC,
            TelemetryEvent(
                source="performance",
                value=_SENSOR_DEGRADED if degraded else _SENSOR_HEALTHY,
                timestamp=now,
                kind=KIND_SENSOR_READING,
                labels={"property": "accuracy", "model_version": "1"},
            ),
        )
        if now + _SENSOR_PERIOD <= duration:
            sim.schedule(_SENSOR_PERIOD, emit_sensor)

    sim.schedule(0.0, emit_sensor)

    # closed-loop load sized well past the horizon; run(until=...) cuts it
    iterations = max(1, int(duration / max(think_time, 0.02)) * 2)
    runner.add_thread_group(
        ThreadGroup(
            route=route,
            n_threads=n_threads,
            rampup_seconds=2.0,
            iterations=iterations,
            think_time=think_time,
        )
    )
    report = runner.run(until=duration)
    # Two flushes, deliberately: the first finalises the remaining rollup
    # windows, which can fire alerts *after* its own pump; the second
    # drains those alert events into the tap and the WAL.
    pipeline.flush()
    pipeline.flush()
    return IncidentDrillResult(
        report=report,
        runner=runner,
        pipeline=pipeline,
        evaluator=evaluator,
        engine=engine,
        route=route,
        faulted_node=faulted_node,
        fault_at=fault_at,
        events=events,
    )
