"""AI sensors: software probes that quantify one trustworthy property each.

"AI sensors are software-based (aka virtual sensors) and are instrumented
within the source code of an application to monitor specific parts of its
code execution … Thus, AI sensors can be considered APIs" (§IV).  Every
sensor here follows that contract: it is a callable probe over a
:class:`ModelContext` that returns a typed :class:`SensorReading`, suitable
for periodic polling by the continuous monitor and for remote execution as
a micro-service request.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.ml.metrics import (
    accuracy_score,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.model import Classifier
from repro.trust.fairness import demographic_parity_difference
from repro.trust.properties import TrustProperty
from repro.trust.resilience import ResilienceReport
from repro.xai.shap import KernelShapExplainer
from repro.xai.similarity import knn_explanation_dissimilarity


@dataclass
class ModelContext:
    """Everything a sensor may probe: the model plus its data environment.

    Mirrors the paper's observation that "the trustworthy analysis is
    applied over the model and data" — a sensor never needs more than this.
    """

    model: Optional[Classifier] = None
    X_train: Optional[np.ndarray] = None
    y_train: Optional[np.ndarray] = None
    X_test: Optional[np.ndarray] = None
    y_test: Optional[np.ndarray] = None
    sensitive: Optional[np.ndarray] = None  # per-test-row group attribute
    model_version: int = 0
    extras: Dict[str, object] = field(default_factory=dict)


@dataclass
class SensorReading:
    """One timestamped measurement of one trustworthy property.

    ``value`` is normalised to [0, 1] with 1 = fully trustworthy, so the
    dashboard can aggregate readings across heterogeneous sensors; the raw
    metric lands in ``details``.
    """

    sensor: str
    property: TrustProperty
    value: float
    timestamp: float
    model_version: int = 0
    details: Dict[str, float] = field(default_factory=dict)
    #: Exception class name when the measurement failed and the registry
    #: substituted a fault-isolation reading; ``None`` for real readings.
    error: Optional[str] = None

    @classmethod
    def from_event(cls, event) -> "SensorReading":
        """Rebuild the reading a telemetry event was derived from.

        Inverse of :meth:`repro.telemetry.events.TelemetryEvent.from_reading`
        — this is what lets a crashed dashboard be rebuilt from a WAL
        replay.  It lives here rather than on the event because telemetry
        is a bottom-layer substrate: it must not know the core types built
        on top of it (see the layering contract in
        :mod:`repro.analysis.contracts`).
        """
        if event.kind != "sensor_reading":
            raise ValueError(
                f"cannot build a SensorReading from a {event.kind!r} event"
            )
        return cls(
            sensor=event.source,
            property=TrustProperty(event.labels["property"]),
            value=event.value,
            timestamp=event.timestamp,
            model_version=int(event.labels.get("model_version", "0")),
            details=dict(event.attrs),
            error=event.labels.get("error"),
        )


Clock = Callable[[], float]


class AISensor(ABC):
    """Base sensor: a named probe for one trustworthy property.

    Parameters
    ----------
    name:
        Unique sensor identifier (used as the dashboard series key).
    clock:
        Injectable time source (defaults to ``time.time``); experiments and
        tests inject logical clocks for determinism.
    """

    property: TrustProperty

    def __init__(self, name: str, clock: Optional[Clock] = None) -> None:
        if not name:
            raise ValueError("sensor name must be non-empty")
        self.name = name
        self._clock = clock or time.time

    def _reading(
        self,
        value: float,
        context: ModelContext,
        details: Optional[Dict[str, float]] = None,
    ) -> SensorReading:
        return SensorReading(
            sensor=self.name,
            property=self.property,
            value=float(np.clip(value, 0.0, 1.0)),
            timestamp=self._clock(),
            model_version=context.model_version,
            details=details or {},
        )

    def error_reading(
        self, context: ModelContext, exc: BaseException
    ) -> SensorReading:
        """A failed measurement as data: value 0.0 + the exception class.

        The registry substitutes this when :meth:`measure` raises, so one
        broken sensor degrades to a flagged zero-trust reading instead of
        aborting the whole monitoring round.
        """
        return SensorReading(
            sensor=self.name,
            property=self.property,
            value=0.0,
            timestamp=self._clock(),
            model_version=context.model_version,
            details={"error": 1.0},
            error=type(exc).__name__,
        )

    @abstractmethod
    def measure(self, context: ModelContext) -> SensorReading:
        """Take one measurement against the current model/data state."""


class PerformanceSensor(AISensor):
    """Accuracy/precision/recall/F1 on the held-out test split.

    The paper's "AI pipeline micro-service that provides performance
    indicators".  ``value`` is the chosen headline metric.
    """

    property = TrustProperty.ACCURACY

    def __init__(
        self,
        name: str = "performance",
        headline: str = "accuracy",
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(name, clock)
        if headline not in {"accuracy", "precision", "recall", "f1"}:
            raise ValueError(f"unknown headline metric {headline!r}")
        self.headline = headline

    def measure(self, context: ModelContext) -> SensorReading:
        if context.model is None or context.X_test is None or context.y_test is None:
            raise ValueError("performance sensor needs a model and a test split")
        y_pred = context.model.predict(context.X_test)
        metrics = {
            "accuracy": accuracy_score(context.y_test, y_pred),
            "precision": precision_score(context.y_test, y_pred),
            "recall": recall_score(context.y_test, y_pred),
            "f1": f1_score(context.y_test, y_pred),
        }
        return self._reading(metrics[self.headline], context, details=metrics)


class ExplanationSensor(AISensor):
    """Global SHAP feature importances (the accountability sensor).

    ``value`` is the share of total importance captured by the single top
    feature — a concentration measure; the full per-feature mean |SHAP|
    vector is shipped in ``details`` for the dashboard's ranking panel.
    """

    property = TrustProperty.ACCOUNTABILITY

    def __init__(
        self,
        name: str = "shap_explanation",
        class_index: int = 0,
        n_instances: int = 10,
        n_background: int = 30,
        n_coalitions: int = 64,
        feature_names: Optional[tuple] = None,
        seed: int = 0,
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(name, clock)
        self.class_index = class_index
        self.n_instances = n_instances
        self.n_background = n_background
        self.n_coalitions = n_coalitions
        self.feature_names = feature_names
        self.seed = seed

    def measure(self, context: ModelContext) -> SensorReading:
        if context.model is None or context.X_test is None:
            raise ValueError("explanation sensor needs a model and test data")
        if context.X_train is None:
            raise ValueError("explanation sensor needs training data as background")
        rng = np.random.default_rng(self.seed)
        bg_count = min(self.n_background, context.X_train.shape[0])
        background = context.X_train[
            rng.choice(context.X_train.shape[0], size=bg_count, replace=False)
        ]
        n_expl = min(self.n_instances, context.X_test.shape[0])
        rows = context.X_test[
            rng.choice(context.X_test.shape[0], size=n_expl, replace=False)
        ]
        explainer = KernelShapExplainer(
            context.model.predict_proba,
            background,
            n_coalitions=self.n_coalitions,
            seed=self.seed,
        )
        importances = explainer.mean_abs_importance(rows, self.class_index)
        total = importances.sum()
        concentration = float(importances.max() / total) if total > 0 else 0.0
        names = self.feature_names or tuple(
            f"f{i}" for i in range(len(importances))
        )
        details = {str(n): float(v) for n, v in zip(names, importances)}
        return self._reading(concentration, context, details=details)


class LimeExplanationSensor(AISensor):
    """LIME-backed accountability probe (the paper's LIME micro-service).

    Same role as :class:`ExplanationSensor` with the LIME surrogate instead
    of Kernel SHAP: per-feature mean |coefficient| over a sample of test
    rows; ``value`` is the top-feature share of total importance.
    """

    property = TrustProperty.ACCOUNTABILITY

    def __init__(
        self,
        name: str = "lime_explanation",
        class_index: int = 0,
        n_instances: int = 10,
        n_samples: int = 300,
        feature_names: Optional[tuple] = None,
        seed: int = 0,
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(name, clock)
        self.class_index = class_index
        self.n_instances = n_instances
        self.n_samples = n_samples
        self.feature_names = feature_names
        self.seed = seed

    def measure(self, context: ModelContext) -> SensorReading:
        from repro.xai.lime import LimeTabularExplainer

        if context.model is None or context.X_test is None:
            raise ValueError("LIME sensor needs a model and test data")
        if context.X_train is None:
            raise ValueError("LIME sensor needs training data for scaling")
        rng = np.random.default_rng(self.seed)
        explainer = LimeTabularExplainer(
            context.model.predict_proba,
            context.X_train,
            n_samples=self.n_samples,
            seed=self.seed,
        )
        take = min(self.n_instances, context.X_test.shape[0])
        rows = context.X_test[
            rng.choice(context.X_test.shape[0], size=take, replace=False)
        ]
        coefs = np.abs(
            np.array([explainer.explain(x, self.class_index) for x in rows])
        ).mean(axis=0)
        total = coefs.sum()
        concentration = float(coefs.max() / total) if total > 0 else 0.0
        names = self.feature_names or tuple(f"f{i}" for i in range(len(coefs)))
        details = {str(n): float(v) for n, v in zip(names, coefs)}
        return self._reading(concentration, context, details=details)


class ExplanationDriftSensor(AISensor):
    """SHAP-dissimilarity of near-neighbour explanations (Fig. 6a-iv).

    Rising dissimilarity flags poisoning: a corrupted model explains similar
    inputs inconsistently.  ``value`` is ``1/(1 + dissimilarity)`` so 1
    still means trustworthy; the raw metric is in ``details``.
    """

    property = TrustProperty.EXPLAINABILITY

    def __init__(
        self,
        name: str = "explanation_drift",
        class_index: int = 1,
        focus_label=None,
        k: int = 5,
        n_instances: int = 20,
        n_background: int = 30,
        n_coalitions: int = 64,
        seed: int = 0,
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(name, clock)
        self.class_index = class_index
        self.focus_label = focus_label
        self.k = k
        self.n_instances = n_instances
        self.n_background = n_background
        self.n_coalitions = n_coalitions
        self.seed = seed

    def measure(self, context: ModelContext) -> SensorReading:
        if (
            context.model is None
            or context.X_test is None
            or context.X_train is None
        ):
            raise ValueError("explanation-drift sensor needs model, train and test")
        X = context.X_test
        if self.focus_label is not None:
            if context.y_test is None:
                raise ValueError("focus_label requires y_test")
            X = X[context.y_test == self.focus_label]
        needed = self.k + 1
        if X.shape[0] < needed:
            raise ValueError(
                f"need at least {needed} focus instances, have {X.shape[0]}"
            )
        rng = np.random.default_rng(self.seed)
        take = min(self.n_instances, X.shape[0])
        rows = X[rng.choice(X.shape[0], size=take, replace=False)]
        bg_count = min(self.n_background, context.X_train.shape[0])
        background = context.X_train[
            rng.choice(context.X_train.shape[0], size=bg_count, replace=False)
        ]
        explainer = KernelShapExplainer(
            context.model.predict_proba,
            background,
            n_coalitions=self.n_coalitions,
            seed=self.seed,
        )
        explanations = explainer.shap_values_batch(rows, self.class_index)
        dissimilarity = knn_explanation_dissimilarity(
            rows, explanations, k=min(self.k, take - 1)
        )
        return self._reading(
            1.0 / (1.0 + dissimilarity),
            context,
            details={"dissimilarity": dissimilarity, "k": float(self.k)},
        )


class ImageExplanationSensor(AISensor):
    """Occlusion-sensitivity probe for image models (the occlusion
    micro-service of Fig. 8(a)).

    Expects ``context.extras["images"]`` — an (n, H, W) batch — and
    ``context.extras["image_predict_fn"]`` mapping such batches to class
    probabilities.  ``value`` is saliency *localisation*: the share of
    total positive occlusion mass inside the top decile of pixels.  A model
    attending to a compact region scores high; diffuse, unfocused saliency
    scores low.
    """

    property = TrustProperty.INTERPRETABILITY

    def __init__(
        self,
        name: str = "occlusion_explanation",
        class_index: int = 0,
        window: int = 4,
        n_images: int = 3,
        seed: int = 0,
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(name, clock)
        self.class_index = class_index
        self.window = window
        self.n_images = n_images
        self.seed = seed

    def measure(self, context: ModelContext) -> SensorReading:
        from repro.xai.occlusion import occlusion_sensitivity

        images = context.extras.get("images")
        predict_fn = context.extras.get("image_predict_fn")
        if images is None or predict_fn is None:
            raise ValueError(
                "image sensor needs extras['images'] and "
                "extras['image_predict_fn']"
            )
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 3 or images.shape[0] == 0:
            raise ValueError("extras['images'] must be a non-empty (n, H, W) batch")
        rng = np.random.default_rng(self.seed)
        take = min(self.n_images, images.shape[0])
        chosen = images[rng.choice(images.shape[0], size=take, replace=False)]
        localisations = []
        mean_drop = 0.0
        for image in chosen:
            heat = occlusion_sensitivity(
                predict_fn, image, self.class_index, window=self.window
            )
            positive = np.clip(heat, 0.0, None).ravel()
            total = positive.sum()
            if total <= 0:
                localisations.append(0.0)
                continue
            k = max(1, int(0.1 * positive.size))
            top = np.sort(positive)[-k:]
            localisations.append(float(top.sum() / total))
            mean_drop += float(heat.max())
        value = float(np.mean(localisations))
        return self._reading(
            value,
            context,
            details={
                "n_images": float(take),
                "mean_peak_drop": mean_drop / max(1, take),
            },
        )


class ResilienceSensor(AISensor):
    """Wraps an impact/complexity assessment into a sensor.

    The assessment callable (e.g. an FGSM-plus-``evasion_resilience`` run,
    or a poisoning drift evaluation) is supplied by the application, because
    resilience probes are attack-specific; the sensor normalises the report
    into the dashboard schema.  ``value`` is ``1 − impact``.
    """

    property = TrustProperty.RESILIENCE

    def __init__(
        self,
        name: str,
        assess: Callable[[ModelContext], ResilienceReport],
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(name, clock)
        self.assess = assess

    def measure(self, context: ModelContext) -> SensorReading:
        report = self.assess(context)
        details = {
            "impact": report.impact,
            "complexity": report.complexity,
            "kind_is_" + report.kind: 1.0,
        }
        details.update(report.details)
        return self._reading(1.0 - report.impact, context, details=details)


class FairnessSensor(AISensor):
    """Demographic-parity fairness over a sensitive attribute.

    ``value`` is ``1 − demographic_parity_difference``.
    """

    property = TrustProperty.FAIRNESS

    def __init__(
        self,
        name: str = "fairness",
        positive_label=1,
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(name, clock)
        self.positive_label = positive_label

    def measure(self, context: ModelContext) -> SensorReading:
        if (
            context.model is None
            or context.X_test is None
            or context.sensitive is None
        ):
            raise ValueError("fairness sensor needs model, test data and groups")
        y_pred = context.model.predict(context.X_test)
        dpd = demographic_parity_difference(
            y_pred, context.sensitive, positive_label=self.positive_label
        )
        return self._reading(1.0 - dpd, context, details={"dpd": dpd})


class PrivacySensor(AISensor):
    """Membership-inference leakage probe (confidentiality, §IV).

    Measures the best-threshold membership advantage between training rows
    (members) and test rows (non-members); ``value`` is ``1 − advantage``,
    so an overfit, leaky model scores low.
    """

    property = TrustProperty.PRIVACY

    def __init__(
        self,
        name: str = "privacy",
        n_samples: int = 100,
        seed: int = 0,
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(name, clock)
        if n_samples < 2:
            raise ValueError("n_samples must be >= 2")
        self.n_samples = n_samples
        self.seed = seed

    def measure(self, context: ModelContext) -> SensorReading:
        from repro.privacy.membership import membership_inference_risk

        if (
            context.model is None
            or context.X_train is None
            or context.X_test is None
        ):
            raise ValueError("privacy sensor needs model, train and test data")
        rng = np.random.default_rng(self.seed)
        n_members = min(self.n_samples, context.X_train.shape[0])
        n_outsiders = min(self.n_samples, context.X_test.shape[0])
        members = context.X_train[
            rng.choice(context.X_train.shape[0], size=n_members, replace=False)
        ]
        outsiders = context.X_test[
            rng.choice(context.X_test.shape[0], size=n_outsiders, replace=False)
        ]
        advantage = membership_inference_risk(context.model, members, outsiders)
        return self._reading(
            1.0 - advantage, context, details={"membership_advantage": advantage}
        )


class DataQualitySensor(AISensor):
    """Raw-data probe: missing values and duplicate rows in the train set.

    §IV: a sensor "can be instrumented to analyze raw input data" — this is
    the collection/cleaning-stage probe.  ``value`` is
    ``1 − (missing_fraction + duplicate_fraction)/2``.
    """

    property = TrustProperty.VALIDITY

    def __init__(
        self, name: str = "data_quality", clock: Optional[Clock] = None
    ) -> None:
        super().__init__(name, clock)

    def measure(self, context: ModelContext) -> SensorReading:
        if context.X_train is None:
            raise ValueError("data-quality sensor needs training data")
        X = np.asarray(context.X_train, dtype=np.float64)
        missing = float(np.mean(np.isnan(X)))
        seen = set()
        duplicates = 0
        for row in X:
            key = row.tobytes()
            if key in seen:
                duplicates += 1
            else:
                seen.add(key)
        duplicate_fraction = duplicates / X.shape[0] if X.shape[0] else 0.0
        penalty = (missing + duplicate_fraction) / 2.0
        return self._reading(
            1.0 - penalty,
            context,
            details={
                "missing_fraction": missing,
                "duplicate_fraction": duplicate_fraction,
                "n_rows": float(X.shape[0]),
            },
        )
