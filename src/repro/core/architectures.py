"""The Fig. 2 architecture-evolution registry.

Fig. 2 traces "evolving system architectures, highlighting the concerns
that arise in each architecture as functionality is augmented": (a) the
basic client-server architecture, (b) the centralised machine-learning
architecture, and (c) the distributed (federated) ML architecture.  This
registry encodes each generation, the design concerns it introduces, and
which repo subsystem implements it — the map SPATIAL uses to decide what
must be instrumented for a given application shape.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, List, Tuple


class Concern(enum.Enum):
    """Design/development concerns Fig. 2 attaches to the generations."""

    SCALABILITY = "scalability"
    DATA_COLLECTION = "data_collection"
    MODEL_QUALITY = "model_quality"
    RETRAINING = "retraining"
    PRIVACY = "privacy"
    AGGREGATION_INTEGRITY = "aggregation_integrity"
    CLIENT_HETEROGENEITY = "client_heterogeneity"
    TRUSTWORTHY_MONITORING = "trustworthy_monitoring"


@dataclass(frozen=True)
class ArchitectureGeneration:
    """One panel of Fig. 2."""

    name: str
    figure_panel: str
    description: str
    concerns: FrozenSet[Concern]
    implemented_by: Tuple[str, ...]


#: The three generations, oldest first.
ARCHITECTURE_EVOLUTION: Tuple[ArchitectureGeneration, ...] = (
    ArchitectureGeneration(
        name="client_server",
        figure_panel="2(a)",
        description=(
            "end devices send requests to a server, which processes them "
            "and responds"
        ),
        concerns=frozenset({Concern.SCALABILITY}),
        implemented_by=("repro.gateway",),
    ),
    ArchitectureGeneration(
        name="centralised_ml",
        figure_panel="2(b)",
        description=(
            "user data is collected centrally and used to train ML models "
            "that improve functionality over time"
        ),
        concerns=frozenset(
            {
                Concern.SCALABILITY,
                Concern.DATA_COLLECTION,
                Concern.MODEL_QUALITY,
                Concern.RETRAINING,
                Concern.TRUSTWORTHY_MONITORING,
            }
        ),
        implemented_by=("repro.ml", "repro.core", "repro.gateway"),
    ),
    ArchitectureGeneration(
        name="distributed_ml",
        figure_panel="2(c)",
        description=(
            "a global model is trained from client contributions collected "
            "in a privacy-preserving manner (federated learning) and "
            "propagated back to all devices"
        ),
        concerns=frozenset(
            {
                Concern.SCALABILITY,
                Concern.DATA_COLLECTION,
                Concern.MODEL_QUALITY,
                Concern.RETRAINING,
                Concern.TRUSTWORTHY_MONITORING,
                Concern.PRIVACY,
                Concern.AGGREGATION_INTEGRITY,
                Concern.CLIENT_HETEROGENEITY,
            }
        ),
        implemented_by=(
            "repro.federated",
            "repro.privacy",
            "repro.ml",
            "repro.core",
            "repro.gateway",
        ),
    ),
)


def concerns_introduced_by(name: str) -> FrozenSet[Concern]:
    """Concerns this generation adds over its predecessor (Fig. 2's delta)."""
    previous: FrozenSet[Concern] = frozenset()
    for generation in ARCHITECTURE_EVOLUTION:
        if generation.name == name:
            return generation.concerns - previous
        previous = generation.concerns
    raise KeyError(f"unknown architecture generation {name!r}")


def generations() -> List[str]:
    """Generation names, oldest first."""
    return [g.name for g in ARCHITECTURE_EVOLUTION]
