"""Model-card generation: the transparency artifact.

The related work (§II) cites Google's model-card toolkit as the standard
transparency instrument; SPATIAL has everything needed to generate one
automatically — the pipeline knows the data and evaluation, the dashboard
knows the live trustworthy readings, the registry knows the
instrumentation gaps.  :func:`generate_model_card` assembles them into a
markdown document fit for an audit binder.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.dashboard import AIDashboard
from repro.core.registry import SensorRegistry
from repro.ml.pipeline import AIPipeline


def generate_model_card(
    pipeline: AIPipeline,
    dashboard: Optional[AIDashboard] = None,
    registry: Optional[SensorRegistry] = None,
    model_name: str = "model",
    intended_use: str = "",
) -> str:
    """Render a markdown model card from the live system state.

    Sections follow the model-card convention: details, intended use,
    training data, evaluation, trustworthy-monitoring status, caveats.
    Requires the pipeline to have completed at least one run.
    """
    ctx = pipeline.context
    if ctx.model is None or not ctx.evaluation:
        raise ValueError("run the pipeline before generating a model card")

    lines = [f"# Model card — {model_name}", ""]

    lines += [
        "## Model details",
        f"- type: `{type(ctx.model).__name__}`",
        f"- version: {ctx.model_version}",
        f"- deployed: {'yes' if ctx.deployed else 'no'}",
        "",
    ]

    if intended_use:
        lines += ["## Intended use", intended_use, ""]

    if ctx.X_train is not None and ctx.y_train is not None:
        classes, counts = np.unique(ctx.y_train, return_counts=True)
        class_summary = ", ".join(
            f"{cls}: {count}" for cls, count in zip(classes, counts)
        )
        lines += [
            "## Training data",
            f"- samples: {ctx.X_train.shape[0]}",
            f"- features: {ctx.X_train.shape[1]}",
            f"- class balance: {class_summary}",
            "",
        ]

    lines += ["## Evaluation (held-out test split)"]
    for metric, value in sorted(ctx.evaluation.items()):
        lines.append(f"- {metric}: {value:.4f}")
    lines.append("")

    if dashboard is not None and dashboard.sensors:
        lines += ["## Trustworthy monitoring (latest sensor readings)"]
        for sensor in dashboard.sensors:
            latest = dashboard.latest(sensor)
            lines.append(
                f"- {sensor} ({latest.property.value}): {latest.value:.3f}"
            )
        pending = dashboard.alerts()
        lines.append(f"- pending alerts: {len(pending)}")
        lines.append("")

    caveats = []
    if registry is not None:
        gaps = registry.unmonitored_vulnerabilities()
        if gaps:
            names = ", ".join(v.name for v in gaps[:6])
            suffix = " …" if len(gaps) > 6 else ""
            caveats.append(
                f"unmonitored pipeline vulnerabilities: {names}{suffix}"
            )
    if dashboard is not None and dashboard.alerts():
        caveats.append("unacknowledged dashboard alerts exist")
    if not caveats:
        caveats.append("none recorded")
    lines += ["## Caveats"]
    lines += [f"- {c}" for c in caveats]
    lines.append("")
    return "\n".join(lines)
