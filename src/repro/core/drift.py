"""Data-drift detection: the *non-induced* changes sensor.

§II: "Non-induced changes occur due to situational events, e.g.,
environment, data quality and failures of devices."  Those changes show up
as distribution shift in the incoming data before they show up as accuracy
loss, so SPATIAL instruments a drift probe at the data-collection side.

Two standard detectors are provided: the Population Stability Index (PSI)
per feature, and the two-sample Kolmogorov-Smirnov statistic; the
:class:`DataDriftSensor` wraps them into the dashboard schema.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.sensors import AISensor, Clock, ModelContext, SensorReading
from repro.trust.properties import TrustProperty


def population_stability_index(
    reference: np.ndarray, live: np.ndarray, n_bins: int = 10
) -> float:
    """PSI between two 1-D samples (bins from the reference quantiles).

    Rule of thumb: < 0.1 stable, 0.1-0.25 moderate shift, > 0.25 major
    shift.  Empty bins are floored to avoid infinities.
    """
    reference = np.asarray(reference, dtype=np.float64).reshape(-1)
    live = np.asarray(live, dtype=np.float64).reshape(-1)
    if reference.size < n_bins or live.size == 0:
        raise ValueError("need at least n_bins reference points and live data")
    edges = np.unique(np.quantile(reference, np.linspace(0, 1, n_bins + 1)))
    if len(edges) < 3:
        return 0.0  # (near-)constant feature: no measurable drift
    edges[0], edges[-1] = -np.inf, np.inf
    ref_counts, __ = np.histogram(reference, bins=edges)
    live_counts, __ = np.histogram(live, bins=edges)
    ref_frac = np.maximum(ref_counts / reference.size, 1e-6)
    live_frac = np.maximum(live_counts / live.size, 1e-6)
    return float(np.sum((live_frac - ref_frac) * np.log(live_frac / ref_frac)))


def ks_statistic(reference: np.ndarray, live: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (max CDF gap, in [0, 1])."""
    reference = np.sort(np.asarray(reference, dtype=np.float64).reshape(-1))
    live = np.sort(np.asarray(live, dtype=np.float64).reshape(-1))
    if reference.size == 0 or live.size == 0:
        raise ValueError("need non-empty samples")
    grid = np.concatenate([reference, live])
    cdf_ref = np.searchsorted(reference, grid, side="right") / reference.size
    cdf_live = np.searchsorted(live, grid, side="right") / live.size
    return float(np.abs(cdf_ref - cdf_live).max())


def dataset_drift_score(
    X_reference: np.ndarray,
    X_live: np.ndarray,
    method: str = "psi",
) -> np.ndarray:
    """Per-feature drift scores between a reference and a live matrix."""
    X_reference = np.asarray(X_reference, dtype=np.float64)
    X_live = np.asarray(X_live, dtype=np.float64)
    if X_reference.ndim != 2 or X_live.ndim != 2:
        raise ValueError("matrices must be 2-D")
    if X_reference.shape[1] != X_live.shape[1]:
        raise ValueError("feature counts differ between reference and live")
    if method == "psi":
        detect = population_stability_index
    elif method == "ks":
        detect = ks_statistic
    else:
        raise ValueError(f"unknown method {method!r}; use 'psi' or 'ks'")
    return np.array(
        [
            detect(X_reference[:, j], X_live[:, j])
            for j in range(X_reference.shape[1])
        ]
    )


class DataDriftSensor(AISensor):
    """Distribution-shift probe over incoming data.

    Compares the live window (``context.extras['X_live']``, falling back to
    ``X_test``) against the training reference.  ``value`` is
    ``1/(1 + mean_drift/threshold)``-style normalisation: 1 when stable,
    dropping past 0.5 once the mean PSI crosses the alert threshold.
    """

    property = TrustProperty.RELIABILITY

    def __init__(
        self,
        name: str = "data_drift",
        method: str = "psi",
        threshold: float = 0.25,
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(name, clock)
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.method = method
        self.threshold = threshold

    def measure(self, context: ModelContext) -> SensorReading:
        if context.X_train is None:
            raise ValueError("drift sensor needs training data as reference")
        live = context.extras.get("X_live", context.X_test)
        if live is None:
            raise ValueError("drift sensor needs live data (extras['X_live'])")
        scores = dataset_drift_score(context.X_train, live, method=self.method)
        mean_drift = float(scores.mean())
        worst = int(np.argmax(scores))
        value = 1.0 / (1.0 + mean_drift / self.threshold)
        return self._reading(
            value,
            context,
            details={
                "mean_drift": mean_drift,
                "max_drift": float(scores.max()),
                "worst_feature": float(worst),
            },
        )
