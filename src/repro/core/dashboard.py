"""The AI dashboard: SPATIAL's human-in-the-loop surface.

"An AI dashboard serves as a tool to provide insights to human operators,
enabling them to monitor and adjust AI trustworthiness according to their
preferences.  Additionally, it facilitates the verification of AI systems
for potential audits" (§I).  The paper's front-end is a React app; all of
its quantitative behaviour lives here, headless: per-sensor time series,
threshold alert rules, trust-score panels, audit export, and text rendering
for terminal inspection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.sensors import SensorReading
from repro.trust.properties import TrustProperty
from repro.trust.score import TrustScore, aggregate_trust_score


@dataclass
class AlertRule:
    """Raise an alert when a sensor's value crosses a threshold.

    ``direction="below"`` alerts when value < threshold (the common case:
    trust dropped); ``"above"`` alerts on value > threshold.
    """

    sensor: str
    threshold: float
    direction: str = "below"
    message: str = ""

    def __post_init__(self) -> None:
        if self.direction not in {"below", "above"}:
            raise ValueError(
                f"direction must be 'below' or 'above', got {self.direction!r}"
            )

    def triggered_by(self, reading: SensorReading) -> bool:
        if reading.sensor != self.sensor:
            return False
        if self.direction == "below":
            return reading.value < self.threshold
        return reading.value > self.threshold


@dataclass
class Alert:
    """A triggered rule bound to the reading that tripped it."""

    rule: AlertRule
    reading: SensorReading
    acknowledged: bool = False

    @property
    def summary(self) -> str:
        verb = "fell below" if self.rule.direction == "below" else "rose above"
        text = (
            f"[{self.reading.sensor}] value {self.reading.value:.3f} {verb} "
            f"{self.rule.threshold:.3f} (model v{self.reading.model_version})"
        )
        if self.rule.message:
            text += f" — {self.rule.message}"
        return text


class AIDashboard:
    """Reading store + alerting + panels for human operators.

    Parameters
    ----------
    history_limit:
        Readings kept per sensor (oldest evicted first); bounds memory for
        long-running monitors.
    """

    def __init__(self, history_limit: int = 10_000) -> None:
        if history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        self.history_limit = history_limit
        self._series: Dict[str, List[SensorReading]] = {}
        self._rules: List[AlertRule] = []
        self._alerts: List[Alert] = []
        self._subscribers: List[Callable[[Alert], None]] = []
        self._slo_status: Optional[Callable[[], list]] = None
        self._slo_last_incident: Optional[Callable[[], Optional[str]]] = None
        self._serving_summary: Optional[Callable[[], Dict[str, dict]]] = None

    # -- ingestion ----------------------------------------------------------

    def add_reading(self, reading: SensorReading) -> None:
        """Ingest one sensor reading; evaluates alert rules synchronously."""
        series = self._series.setdefault(reading.sensor, [])
        series.append(reading)
        if len(series) > self.history_limit:
            del series[: len(series) - self.history_limit]
        for rule in self._rules:
            if rule.triggered_by(reading):
                alert = Alert(rule=rule, reading=reading)
                self._alerts.append(alert)
                for notify in self._subscribers:
                    notify(alert)

    def add_rule(self, rule: AlertRule) -> None:
        """Install an operator-chosen alert threshold."""
        self._rules.append(rule)

    def subscribe(self, callback: Callable[[Alert], None]) -> None:
        """Register an operator notification channel (pager, log, test spy)."""
        self._subscribers.append(callback)

    def set_slo_provider(
        self,
        status: Callable[[], list],
        last_incident: Optional[Callable[[], Optional[str]]] = None,
    ) -> None:
        """Attach the SLO engine's health feed.

        ``status`` returns the evaluator's current
        :class:`repro.slo.SLOStatusSummary` list (called lazily at render
        time, so the strip is always current); ``last_incident`` returns
        the most recent incident id, if any.  The provider is duck-typed
        — the dashboard reads ``slo``/``source``/``budget_remaining``/
        ``short_burn``/``long_burn``/``firing_rules`` — so tests can feed
        it plain stand-ins.
        """
        self._slo_status = status
        self._slo_last_incident = last_incident

    def set_serving_provider(
        self, summary: Callable[[], Dict[str, dict]]
    ) -> None:
        """Attach the serving layer's batching/cache feed.

        ``summary`` returns a per-route stats mapping shaped like
        :meth:`repro.gateway.CapacityRunner.serving_summary` or
        :meth:`repro.cluster.ClusterRunner.serving_summary` (called
        lazily at render time).  Duck-typed like the SLO provider — the
        panel reads ``batches``/``rows_batched``/``mean_batch``/
        ``shed_rows`` and the cache counters when present, tolerating
        either the flat capacity shape or the cluster shape with a
        per-node sub-map, so tests can feed plain dicts.
        """
        self._serving_summary = summary

    # -- queries --------------------------------------------------------------

    @property
    def sensors(self) -> List[str]:
        return sorted(self._series)

    def series(self, sensor: str) -> List[SensorReading]:
        """Full retained history for one sensor (oldest first)."""
        if sensor not in self._series:
            raise KeyError(f"no readings for sensor {sensor!r}")
        return list(self._series[sensor])

    def latest(self, sensor: str) -> SensorReading:
        """Most recent reading for one sensor."""
        return self.series(sensor)[-1]

    def values(self, sensor: str) -> List[float]:
        """Just the value series, for plotting/thresholding."""
        return [r.value for r in self.series(sensor)]

    def alerts(self, include_acknowledged: bool = False) -> List[Alert]:
        if include_acknowledged:
            return list(self._alerts)
        return [a for a in self._alerts if not a.acknowledged]

    def acknowledge_all(self) -> int:
        """Operator marks current alerts as seen; returns how many."""
        count = 0
        for alert in self._alerts:
            if not alert.acknowledged:
                alert.acknowledged = True
                count += 1
        return count

    # -- panels ---------------------------------------------------------------

    def trust_panel(
        self, weights: Optional[Dict[TrustProperty, float]] = None
    ) -> TrustScore:
        """Aggregate the latest reading of each property into a trust score.

        When several sensors share a property the latest readings are
        averaged first — the heterogeneity warning of §VIII applies, so the
        returned :class:`TrustScore` always carries the decomposition.
        """
        by_property: Dict[TrustProperty, List[float]] = {}
        for sensor in self._series.values():
            if not sensor:
                continue
            reading = sensor[-1]
            by_property.setdefault(reading.property, []).append(reading.value)
        readings = {
            prop: sum(vals) / len(vals) for prop, vals in by_property.items()
        }
        return aggregate_trust_score(readings, weights)

    def drift(self, sensor: str, window: int = 5) -> float:
        """Change of the mean value between the first and last ``window``
        readings; negative means the property degraded over time."""
        values = self.values(sensor)
        if len(values) < 2:
            return 0.0
        window = max(1, min(window, len(values) // 2 or 1))
        head = sum(values[:window]) / window
        tail = sum(values[-window:]) / window
        return tail - head

    @staticmethod
    def _serving_rows(summary: Dict[str, dict]) -> List[dict]:
        """Flatten either serving-summary shape into per-route rows."""
        rows: List[dict] = []
        for route, entry in sorted(summary.items()):
            if route == "_totals":
                continue
            nodes = entry.get("nodes")
            if nodes:
                batches = sum(n.get("batches", 0) for n in nodes.values())
                rows_batched = sum(
                    n.get("rows_batched", 0) for n in nodes.values()
                )
                shed = sum(n.get("shed_rows", 0) for n in nodes.values())
            else:
                batches = entry.get("batches", 0)
                rows_batched = entry.get("rows_batched", 0)
                shed = entry.get("shed_rows", 0)
            cache = entry.get("cache") or {}
            rows.append(
                {
                    "route": route,
                    "batches": batches,
                    "rows_batched": rows_batched,
                    "mean_batch": (
                        rows_batched / batches if batches else 0.0
                    ),
                    "shed_rows": shed,
                    "cache_hits": int(cache.get("hits", 0)),
                    "cache_misses": int(cache.get("misses", 0)),
                    "cache_hit_rate": float(
                        entry.get("cache_hit_rate", cache.get("hit_rate", 0.0))
                    ),
                }
            )
        return rows

    @staticmethod
    def _pool_rows(summary: Dict[str, dict]) -> List[dict]:
        """Flatten kernel-pool sub-counters into per-route POOL rows.

        Tolerates both serving-summary shapes: the capacity runner puts
        ``pool`` directly on the route entry, the cluster runner nests
        one per node.  Routes without a pool tier produce no row.
        """
        rows: List[dict] = []
        for route, entry in sorted(summary.items()):
            if route == "_totals":
                continue
            nodes = entry.get("nodes")
            if nodes:
                pools = [n["pool"] for n in nodes.values() if n.get("pool")]
            else:
                pools = [entry["pool"]] if entry.get("pool") else []
            if not pools:
                continue
            batches = sum(p.get("batches", 0) for p in pools)
            pooled = sum(p.get("rows", 0) for p in pools)
            rows.append(
                {
                    "route": route,
                    "workers": sum(p.get("workers", 0) for p in pools),
                    "batches": batches,
                    "rows": pooled,
                    "mean_fan_out": pooled / batches if batches else 0.0,
                    "peak_inflight": max(
                        (p.get("peak_inflight", 0) for p in pools), default=0
                    ),
                    "crashes": sum(p.get("crashes", 0) for p in pools),
                    "restarts": sum(p.get("restarts", 0) for p in pools),
                    "resubmitted": sum(
                        p.get("resubmitted", 0) for p in pools
                    ),
                }
            )
        return rows

    # -- export / rendering ---------------------------------------------------

    def to_json(self) -> str:
        """Audit export: every retained reading and alert, JSON-encoded.

        This is the dashboard's compliance artifact — "it facilitates the
        verification of AI systems for potential audits" (§I).
        """
        payload = {
            "sensors": {
                name: [
                    {
                        "value": r.value,
                        "property": r.property.value,
                        "timestamp": r.timestamp,
                        "model_version": r.model_version,
                        "details": r.details,
                    }
                    for r in series
                ]
                for name, series in self._series.items()
            },
            "alerts": [
                {
                    "sensor": a.rule.sensor,
                    "threshold": a.rule.threshold,
                    "direction": a.rule.direction,
                    "value": a.reading.value,
                    "acknowledged": a.acknowledged,
                }
                for a in self._alerts
            ],
        }
        if self._slo_status is not None:
            payload["slo"] = {
                "objectives": [
                    {
                        "slo": s.slo,
                        "source": s.source,
                        "budget_remaining": s.budget_remaining,
                        "short_burn": s.short_burn,
                        "long_burn": s.long_burn,
                        "firing": list(s.firing_rules),
                    }
                    for s in self._slo_status()
                ],
                "last_incident": (
                    self._slo_last_incident()
                    if self._slo_last_incident is not None
                    else None
                ),
            }
        if self._serving_summary is not None:
            summary = self._serving_summary()
            payload["serving"] = {
                "routes": self._serving_rows(summary),
                "pool": self._pool_rows(summary),
            }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render_text(self, width: int = 60) -> str:
        """Terminal rendering: one sparkline-style row per sensor + alerts."""
        lines = ["AI DASHBOARD", "=" * width]
        if self._slo_status is not None:
            summaries = list(self._slo_status())
            label_width = max(
                (len(f"{s.slo}/{s.source}") for s in summaries), default=0
            )
            for summary in summaries:
                state = (
                    "FIRING:" + ",".join(summary.firing_rules)
                    if summary.firing_rules
                    else "ok"
                )
                label = f"{summary.slo}/{summary.source}"
                lines.append(
                    f"SLO {label:<{label_width}}  "
                    f"budget {summary.budget_remaining:6.1%}  "
                    f"burn {summary.short_burn:.1f}x/{summary.long_burn:.1f}x"
                    f"  {state}"
                )
            last = (
                self._slo_last_incident()
                if self._slo_last_incident is not None
                else None
            )
            lines.append(f"last incident: {last if last else '(none)'}")
            lines.append("=" * width)
        if self._serving_summary is not None:
            summary = self._serving_summary()
            rows = self._serving_rows(summary)
            label_width = max((len(r["route"]) for r in rows), default=0)
            for row in rows:
                lines.append(
                    f"SERVE {row['route']:<{label_width}}  "
                    f"batches {row['batches']:>5} "
                    f"(mean {row['mean_batch']:4.1f})  "
                    f"cache {row['cache_hit_rate']:6.1%}  "
                    f"shed {row['shed_rows']}"
                )
            for row in self._pool_rows(summary):
                lines.append(
                    f"POOL  {row['route']:<{label_width}}  "
                    f"workers {row['workers']:>2}  "
                    f"fan-out {row['mean_fan_out']:4.1f}  "
                    f"peak {row['peak_inflight']}  "
                    f"crashes {row['crashes']} "
                    f"(resubmitted {row['resubmitted']})"
                )
            lines.append("=" * width)
        for name in self.sensors:
            values = self.values(name)
            latest = values[-1]
            bar_len = int(round(latest * 20))
            bar = "#" * bar_len + "." * (20 - bar_len)
            trend = self.drift(name)
            arrow = "↑" if trend > 0.01 else ("↓" if trend < -0.01 else "→")
            lines.append(
                f"{name:<24} [{bar}] {latest:5.3f} {arrow} ({len(values)} readings)"
            )
        pending = self.alerts()
        lines.append("-" * width)
        lines.append(f"alerts: {len(pending)} pending")
        for alert in pending[-5:]:
            lines.append("  ! " + alert.summary)
        return "\n".join(lines)
