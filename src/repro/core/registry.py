"""Sensor registry: where applications declare and instrument their sensors.

§IV motivates instrumenting sensors "across the pipeline" because every
stage can be hampered.  The registry keeps the application's sensor set,
binds sensors to pipeline stages (via :class:`repro.ml.pipeline.AIPipeline`
hooks), and answers which Fig. 3 vulnerabilities the current instrumentation
leaves unobserved.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.attacks.vulnerabilities import (
    PIPELINE_VULNERABILITIES,
    Vulnerability,
)
from repro.core.sensors import AISensor, ModelContext, SensorReading
from repro.ml.pipeline import AIPipeline, PipelineContext, StageKind
from repro.tracing import NULL_TRACER
from repro.trust.properties import TrustProperty


@dataclass
class PolledReading:
    """One sensor measurement plus its observability envelope.

    ``span`` is the per-sensor poll span (the shared no-op span when
    tracing is off); ``elapsed_ms`` is the *wall-clock* cost of the
    measurement, recorded even when untraced so monitoring rounds can
    attribute their latency sensor-by-sensor.
    """

    reading: SensorReading
    span: object
    elapsed_ms: float


class SensorRegistry:
    """A named collection of AI sensors plus their pipeline bindings."""

    def __init__(self) -> None:
        self._sensors: Dict[str, AISensor] = {}
        self._stage_bindings: Dict[str, List[StageKind]] = {}

    def register(self, sensor: AISensor) -> None:
        """Add a sensor; names must be unique across the application."""
        if sensor.name in self._sensors:
            raise ValueError(f"sensor {sensor.name!r} already registered")
        self._sensors[sensor.name] = sensor
        self._stage_bindings[sensor.name] = []

    def unregister(self, name: str) -> None:
        """Remove a sensor (micro-service replaced or retired)."""
        if name not in self._sensors:
            raise KeyError(f"unknown sensor {name!r}")
        del self._sensors[name]
        del self._stage_bindings[name]

    def get(self, name: str) -> AISensor:
        if name not in self._sensors:
            raise KeyError(f"unknown sensor {name!r}")
        return self._sensors[name]

    @property
    def sensors(self) -> List[AISensor]:
        return list(self._sensors.values())

    @property
    def properties_covered(self) -> frozenset:
        """The trustworthy properties the registered sensors quantify."""
        return frozenset(s.property for s in self._sensors.values())

    def poll(self, context: ModelContext) -> List[SensorReading]:
        """Take one measurement from every sensor (one monitoring round).

        Sensors are fault-isolated: one raising sensor must not abort the
        round (a monitoring layer that dies with its first broken probe
        observes nothing).  A failed measurement is replaced by the
        sensor's :meth:`~repro.core.sensors.AISensor.error_reading` —
        value 0.0, ``details["error"] == 1.0`` and the exception class in
        ``reading.error`` — so dashboards and alert rules see the outage.
        """
        return [p.reading for p in self.poll_spans(context)]

    def poll_spans(
        self,
        context: ModelContext,
        tracer=NULL_TRACER,
        parent=None,
    ) -> List[PolledReading]:
        """One monitoring round with per-sensor spans and timings.

        Each sensor's measurement runs inside its own ``sensor.poll``
        span (child of ``parent``) annotated with the sensor name, trust
        property and wall-clock ``elapsed_ms``; a raising sensor marks
        its span failed while the round continues.  :meth:`poll` is this
        method with the null tracer, keeping one fault-isolation path.
        """
        polled: List[PolledReading] = []
        for sensor in self._sensors.values():
            span = tracer.start_span("sensor.poll", parent=parent)
            if span.is_recording:
                span.set_attribute("sensor", sensor.name)
                span.set_attribute("property", sensor.property.value)
            started = time.perf_counter()
            try:
                reading = sensor.measure(context)
            except Exception as exc:
                reading = sensor.error_reading(context, exc)
                span.record_error(f"{type(exc).__name__}: {exc}")
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            if span.is_recording:
                span.set_attribute("elapsed_ms", elapsed_ms)
            span.end()
            polled.append(PolledReading(reading, span, elapsed_ms))
        return polled

    def poll_one(self, name: str, context: ModelContext) -> SensorReading:
        """Measure a single sensor by name (an AI-sensor API request)."""
        return self.get(name).measure(context)

    # -- pipeline instrumentation -------------------------------------------

    def instrument_pipeline(
        self,
        pipeline: AIPipeline,
        name: str,
        stage: StageKind,
        context_builder: Callable[[PipelineContext], ModelContext],
        sink: Optional[Callable[[SensorReading], None]] = None,
    ) -> None:
        """Bind a sensor to a pipeline stage (the Fig. 4b augmentation).

        After the stage body executes, the sensor measures a
        :class:`ModelContext` built from the live pipeline state and pushes
        the reading to ``sink`` (typically ``dashboard.add_reading``).
        """
        sensor = self.get(name)

        def hook(kind: StageKind, ctx: PipelineContext) -> None:
            reading = sensor.measure(context_builder(ctx))
            if sink is not None:
                sink(reading)

        pipeline.attach_hook(stage, hook)
        self._stage_bindings[name].append(stage)

    def stages_for(self, name: str) -> List[StageKind]:
        """Pipeline stages a sensor is currently bound to."""
        if name not in self._stage_bindings:
            raise KeyError(f"unknown sensor {name!r}")
        return list(self._stage_bindings[name])

    def unmonitored_vulnerabilities(self) -> List[Vulnerability]:
        """Fig. 3 vulnerabilities at stages no sensor is bound to.

        This is the registry's answer to §IV's "sensors are required to be
        instrumented across the pipeline": anything returned here is a blind
        spot in the current instrumentation.
        """
        covered_stages = {
            stage
            for stages in self._stage_bindings.values()
            for stage in stages
        }
        return [
            v for v in PIPELINE_VULNERABILITIES if v.stage not in covered_stages
        ]

    def coverage_report(self) -> Dict[str, object]:
        """Summary used by the dashboard's instrumentation panel."""
        gaps = self.unmonitored_vulnerabilities()
        return {
            "n_sensors": len(self._sensors),
            "properties": sorted(p.value for p in self.properties_covered),
            "stages_covered": sorted(
                {
                    s.value
                    for stages in self._stage_bindings.values()
                    for s in stages
                }
            ),
            "unmonitored_vulnerabilities": [v.name for v in gaps],
        }
