"""Stakeholder-tailored explanation narratives (§VIII / §IX).

"To obtain significant feedback from stakeholders, it is important that
explanations describing the overall trustworthiness of a model are tied to
specific domain terminology of stakeholders, e.g., tailored explanations
for end users and software developers.  An extra layer of transformation is
thus required to map understandable insights of a model to a specific
target audience.  A potential solution is to rely on large language models
(ChatGPT-like preamble) or a meta-model."

Offline we implement the *meta-model* option: a deterministic template
layer that renders the same sensor readings into audience-appropriate
prose — plain reassurance/warning for end users, metric-level diagnostics
for developers, and traceable compliance statements for auditors.  The
rendering contract is intentionally identical to what an LLM back-end
would satisfy, so swapping one in later changes no call sites.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List

from repro.core.sensors import SensorReading
from repro.slo.incidents import Incident
from repro.trust.properties import TrustProperty, conflicting_properties


class Audience(enum.Enum):
    """Stakeholder types the dashboard tailors explanations for."""

    END_USER = "end_user"
    DEVELOPER = "developer"
    AUDITOR = "auditor"


#: Per-property phrasing for the END_USER audience (plain language).
_END_USER_PHRASES: Dict[TrustProperty, str] = {
    TrustProperty.ACCURACY: "how often the system gets its answers right",
    TrustProperty.RESILIENCE: "how well the system withstands tampering",
    TrustProperty.FAIRNESS: "whether the system treats groups of people equally",
    TrustProperty.ACCOUNTABILITY: "how clearly the system can show what drove a decision",
    TrustProperty.EXPLAINABILITY: "how consistently the system explains similar cases",
    TrustProperty.VALIDITY: "the health of the data the system learns from",
    TrustProperty.PRIVACY: "how well personal information is protected",
}

_GENERIC_PHRASE = "this aspect of the system's trustworthiness"


def _quality_word(value: float) -> str:
    if value >= 0.9:
        return "good"
    if value >= 0.7:
        return "acceptable"
    if value >= 0.5:
        return "concerning"
    return "poor"


def _narrate_end_user(reading: SensorReading) -> str:
    phrase = _END_USER_PHRASES.get(reading.property, _GENERIC_PHRASE)
    if reading.error:
        return (
            f"We could not check {phrase} just now. "
            "Please treat important decisions with extra care until the "
            "check is back."
        )
    quality = _quality_word(reading.value)
    sentence = (
        f"Right now, {phrase} looks {quality} "
        f"(scored {reading.value:.0%} of the ideal)."
    )
    if reading.value < 0.7:
        sentence += " You may want to double-check important decisions."
    return sentence


def _narrate_developer(reading: SensorReading) -> str:
    if reading.error:
        return (
            f"[{reading.sensor}] poll FAILED on model "
            f"v{reading.model_version}: {reading.error} "
            f"(no {reading.property.value} measurement this round)"
        )
    details = ", ".join(
        f"{key}={value:.4g}" for key, value in sorted(reading.details.items())[:6]
    )
    sentence = (
        f"[{reading.sensor}] {reading.property.value}={reading.value:.3f} "
        f"on model v{reading.model_version}"
    )
    if details:
        sentence += f" ({details})"
    conflicts = conflicting_properties(reading.property)
    if reading.value < 0.7 and conflicts:
        names = ", ".join(p.value for p in conflicts)
        sentence += (
            f"; note: tuning {reading.property.value} up may pressure {names}"
        )
    return sentence


def _narrate_auditor(reading: SensorReading) -> str:
    if reading.error:
        return (
            f"Property '{reading.property.value}' measured by sensor "
            f"'{reading.sensor}' on model version "
            f"{reading.model_version} (timestamp {reading.timestamp:.3f}): "
            f"MEASUREMENT UNAVAILABLE ({reading.error}). REQUIRES REVIEW."
        )
    status = "COMPLIANT" if reading.value >= 0.7 else "REQUIRES REVIEW"
    return (
        f"Property '{reading.property.value}' measured by sensor "
        f"'{reading.sensor}' at {reading.value:.3f} on model version "
        f"{reading.model_version} (timestamp {reading.timestamp:.3f}): "
        f"{status}."
    )


_NARRATORS = {
    Audience.END_USER: _narrate_end_user,
    Audience.DEVELOPER: _narrate_developer,
    Audience.AUDITOR: _narrate_auditor,
}


def narrate_reading(reading: SensorReading, audience: Audience) -> str:
    """Render one sensor reading for one audience."""
    if audience not in _NARRATORS:
        raise ValueError(f"unknown audience {audience!r}")
    return _NARRATORS[audience](reading)


def narrate_report(
    readings: Iterable[SensorReading], audience: Audience
) -> List[str]:
    """Render a batch of readings, most alarming first."""
    ordered = sorted(readings, key=lambda r: r.value)
    return [narrate_reading(r, audience) for r in ordered]


# -- incident narratives ------------------------------------------------------
#
# The same meta-model stance as reading narration, applied to the SLO
# incident engine's evidence bundles: one deterministic template per
# audience, byte-stable under a fixed seed so reports can be golden-file
# tested and archived.


def _incident_end_user(incident: Incident) -> str:
    lines = [
        f"Some requests to the {incident.route} service are currently "
        "slower or less reliable than we promise.",
        "We detected this automatically and engineers have been notified "
        f"(reference {incident.incident_id}).",
    ]
    if incident.severity == "page":
        lines.append("Someone is being paged to look at it right away.")
    else:
        lines.append("It will be reviewed during working hours.")
    return "\n".join(lines)


def _incident_developer(incident: Incident) -> str:
    lines = [
        f"{incident.incident_id} [{incident.severity}] {incident.slo} on "
        f"{incident.source} — rule '{incident.rule}' firing at "
        f"t={incident.timestamp:.1f}s "
        f"(burn {incident.short_burn:.1f}x short / "
        f"{incident.long_burn:.1f}x long, threshold {incident.factor:.1f}x)"
    ]
    if incident.budget_remaining is not None:
        lines.append(
            f"  error budget remaining: {incident.budget_remaining:.1%}"
        )
    where = f"  route: {incident.route}"
    if incident.suspect_node:
        where += f"; suspect node: {incident.suspect_node}"
    lines.append(where)
    if incident.trace_ids:
        resolved = len(incident.trace_ids) - len(incident.missing_trace_ids)
        lines.append(
            f"  exemplars: {resolved}/{len(incident.trace_ids)} trace(s) "
            f"resolved ({', '.join(incident.trace_ids)})"
        )
    else:
        lines.append("  exemplars: none (no trace-labelled events in window)")
    if incident.stage_diffs:
        lines.append(
            f"  critical path vs healthy baseline "
            f"({incident.baseline_ms:.2f}ms -> {incident.observed_ms:.2f}ms):"
        )
        regressed = incident.regressed_stage
        for diff in incident.stage_diffs:
            marker = (
                "  <-- regressed"
                if regressed is not None and diff.stage == regressed.stage
                else ""
            )
            lines.append(
                f"    {diff.stage:<24} {diff.baseline_ms:>9.2f}ms -> "
                f"{diff.observed_ms:>9.2f}ms  ({diff.growth_ms:+.2f}ms)"
                f"{marker}"
            )
    for entry in incident.error_evidence:
        lines.append(
            f"  correlated error: {entry['source']} at "
            f"t={entry['timestamp']:.1f}s: {entry['error']}"
        )
    for entry in incident.sensor_evidence:
        lines.append(
            f"  correlated sensor: {entry['source']} "
            f"({entry['property']}) = {entry['value']:.3f} at "
            f"t={entry['timestamp']:.1f}s"
        )
    return "\n".join(lines)


def _incident_auditor(incident: Incident) -> str:
    lines = [
        f"Incident {incident.incident_id}: objective '{incident.slo}' on "
        f"monitored source '{incident.source}' breached its error-budget "
        f"policy at timestamp {incident.timestamp:.3f} "
        f"(severity: {incident.severity.upper()}).",
        f"Observed burn rates: {incident.short_burn:.2f}x (short window), "
        f"{incident.long_burn:.2f}x (long window) against a threshold of "
        f"{incident.factor:.2f}x.",
    ]
    if incident.budget_remaining is not None:
        lines.append(
            f"Error budget remaining at detection: "
            f"{incident.budget_remaining:.1%}."
        )
    evidence = (
        f"Supporting evidence on file: {len(incident.trace_ids)} request "
        f"trace(s), {len(incident.stage_diffs)} critical-path stage "
        f"comparison(s), {len(incident.sensor_evidence)} sensor "
        f"reading(s), {len(incident.error_evidence)} error event(s)."
    )
    lines.append(evidence)
    lines.append("Status: REQUIRES REVIEW.")
    return "\n".join(lines)


_INCIDENT_NARRATORS = {
    Audience.END_USER: _incident_end_user,
    Audience.DEVELOPER: _incident_developer,
    Audience.AUDITOR: _incident_auditor,
}


def narrate_incident(incident: Incident, audience: Audience) -> str:
    """Render one SLO incident bundle for one audience (multi-line)."""
    if audience not in _INCIDENT_NARRATORS:
        raise ValueError(f"unknown audience {audience!r}")
    return _INCIDENT_NARRATORS[audience](incident)
