"""Stakeholder-tailored explanation narratives (§VIII / §IX).

"To obtain significant feedback from stakeholders, it is important that
explanations describing the overall trustworthiness of a model are tied to
specific domain terminology of stakeholders, e.g., tailored explanations
for end users and software developers.  An extra layer of transformation is
thus required to map understandable insights of a model to a specific
target audience.  A potential solution is to rely on large language models
(ChatGPT-like preamble) or a meta-model."

Offline we implement the *meta-model* option: a deterministic template
layer that renders the same sensor readings into audience-appropriate
prose — plain reassurance/warning for end users, metric-level diagnostics
for developers, and traceable compliance statements for auditors.  The
rendering contract is intentionally identical to what an LLM back-end
would satisfy, so swapping one in later changes no call sites.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List

from repro.core.sensors import SensorReading
from repro.trust.properties import TrustProperty, conflicting_properties


class Audience(enum.Enum):
    """Stakeholder types the dashboard tailors explanations for."""

    END_USER = "end_user"
    DEVELOPER = "developer"
    AUDITOR = "auditor"


#: Per-property phrasing for the END_USER audience (plain language).
_END_USER_PHRASES: Dict[TrustProperty, str] = {
    TrustProperty.ACCURACY: "how often the system gets its answers right",
    TrustProperty.RESILIENCE: "how well the system withstands tampering",
    TrustProperty.FAIRNESS: "whether the system treats groups of people equally",
    TrustProperty.ACCOUNTABILITY: "how clearly the system can show what drove a decision",
    TrustProperty.EXPLAINABILITY: "how consistently the system explains similar cases",
    TrustProperty.VALIDITY: "the health of the data the system learns from",
    TrustProperty.PRIVACY: "how well personal information is protected",
}

_GENERIC_PHRASE = "this aspect of the system's trustworthiness"


def _quality_word(value: float) -> str:
    if value >= 0.9:
        return "good"
    if value >= 0.7:
        return "acceptable"
    if value >= 0.5:
        return "concerning"
    return "poor"


def _narrate_end_user(reading: SensorReading) -> str:
    phrase = _END_USER_PHRASES.get(reading.property, _GENERIC_PHRASE)
    quality = _quality_word(reading.value)
    sentence = (
        f"Right now, {phrase} looks {quality} "
        f"(scored {reading.value:.0%} of the ideal)."
    )
    if reading.value < 0.7:
        sentence += " You may want to double-check important decisions."
    return sentence


def _narrate_developer(reading: SensorReading) -> str:
    details = ", ".join(
        f"{key}={value:.4g}" for key, value in sorted(reading.details.items())[:6]
    )
    sentence = (
        f"[{reading.sensor}] {reading.property.value}={reading.value:.3f} "
        f"on model v{reading.model_version}"
    )
    if details:
        sentence += f" ({details})"
    conflicts = conflicting_properties(reading.property)
    if reading.value < 0.7 and conflicts:
        names = ", ".join(p.value for p in conflicts)
        sentence += (
            f"; note: tuning {reading.property.value} up may pressure {names}"
        )
    return sentence


def _narrate_auditor(reading: SensorReading) -> str:
    status = "COMPLIANT" if reading.value >= 0.7 else "REQUIRES REVIEW"
    return (
        f"Property '{reading.property.value}' measured by sensor "
        f"'{reading.sensor}' at {reading.value:.3f} on model version "
        f"{reading.model_version} (timestamp {reading.timestamp:.3f}): "
        f"{status}."
    )


_NARRATORS = {
    Audience.END_USER: _narrate_end_user,
    Audience.DEVELOPER: _narrate_developer,
    Audience.AUDITOR: _narrate_auditor,
}


def narrate_reading(reading: SensorReading, audience: Audience) -> str:
    """Render one sensor reading for one audience."""
    if audience not in _NARRATORS:
        raise ValueError(f"unknown audience {audience!r}")
    return _NARRATORS[audience](reading)


def narrate_report(
    readings: Iterable[SensorReading], audience: Audience
) -> List[str]:
    """Render a batch of readings, most alarming first."""
    ordered = sorted(readings, key=lambda r: r.value)
    return [narrate_reading(r, audience) for r in ordered]
