"""Continuous monitoring: periodic sensor polling onto the telemetry bus.

§V: monitoring "consists in requesting micro-service functionality
periodically.  For instance, every time an AI model is updated or there is a
change in any step of the construction of the model."  The monitor models
exactly those two triggers: scheduled rounds and model-update events.

Readings no longer land in the dashboard directly.  Each round publishes
:class:`~repro.telemetry.events.TelemetryEvent`\\ s onto a
:class:`~repro.telemetry.bus.TelemetryBus`; the dashboard is just one
subscriber among peers (WAL writer, rollup aggregator, alert fan-outs),
which is what decouples the observation path from any single consumer —
a slow dashboard can drop frames without stalling sensor polling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.core.dashboard import AIDashboard
from repro.core.registry import SensorRegistry
from repro.core.sensors import ModelContext, SensorReading
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import TelemetryEvent
from repro.telemetry.pipeline import SENSOR_TOPIC, TelemetryPipeline
from repro.tracing import NULL_TRACER


@dataclass
class MonitorRound:
    """Record of one polling round: why it ran and what it measured."""

    index: int
    trigger: str  # "scheduled" | "model_update"
    readings: List[SensorReading] = field(default_factory=list)
    #: Wall-clock cost of the whole round (poll + publish + pump).
    duration_ms: float = 0.0
    #: Per-sensor wall-clock measurement cost, sensor name → milliseconds.
    timings: Dict[str, float] = field(default_factory=dict)
    #: Names of sensors whose measurement raised this round.
    errors: List[str] = field(default_factory=list)
    #: Trace id of the round span (``None`` when tracing is off).
    trace_id: Optional[str] = None


class ContinuousMonitor:
    """Drives the sensor registry on a schedule and on model updates.

    Parameters
    ----------
    registry / dashboard:
        The application's sensors and the operator surface.  The dashboard
        is subscribed to the bus (bounded queue, ``drop_oldest``) rather
        than written to directly; pass ``None`` to run dashboard-less with
        other subscribers consuming the stream.
    context_provider:
        Zero-argument callable returning the current :class:`ModelContext`;
        called at every round so the monitor always measures live state.
    telemetry:
        Where readings are published: a :class:`TelemetryPipeline` (full
        bus → WAL → rollup stack), a bare :class:`TelemetryBus`, or
        ``None`` for a private in-memory bus.  A not-yet-started pipeline
        is started on first use.
    topic:
        Bus topic readings are published on.
    dashboard_queue_capacity:
        Bound on the dashboard subscription's queue; overflow drops the
        oldest frames (counted on the bus) instead of blocking polling.
    tracer:
        Span factory (defaults to the no-op tracer).  With a recording
        tracer each round becomes a ``monitor.round`` span with one
        ``sensor.poll`` child per sensor, and every published event
        carries its sensor span's exemplar labels.
    """

    def __init__(
        self,
        registry: SensorRegistry,
        dashboard: Optional[AIDashboard],
        context_provider: Callable[[], ModelContext],
        telemetry: Optional[Union[TelemetryPipeline, TelemetryBus]] = None,
        topic: str = SENSOR_TOPIC,
        dashboard_queue_capacity: int = 65536,
        tracer=NULL_TRACER,
    ) -> None:
        self.registry = registry
        self.dashboard = dashboard
        self.context_provider = context_provider
        self.topic = topic
        self.tracer = tracer
        self.rounds: List[MonitorRound] = []
        self._last_model_version: Optional[int] = None
        if telemetry is None:
            telemetry = TelemetryBus()
        if isinstance(telemetry, TelemetryPipeline) and not telemetry.started:
            telemetry.start()
        self.telemetry = telemetry
        #: The underlying bus (== ``telemetry`` when a bare bus was given).
        self.bus: TelemetryBus = getattr(telemetry, "bus", telemetry)
        if dashboard is not None:
            self._subscribe_dashboard(dashboard, dashboard_queue_capacity)

    def _subscribe_dashboard(
        self, dashboard: AIDashboard, capacity: int
    ) -> None:
        def deliver(event: TelemetryEvent) -> None:
            dashboard.add_reading(SensorReading.from_event(event))

        name = "dashboard"
        suffix = 1
        while True:
            try:
                self.bus.subscribe(
                    name,
                    topics=self.topic,
                    capacity=capacity,
                    policy="drop_oldest",
                    callback=deliver,
                )
                return
            except ValueError:  # shared bus, name taken by another monitor
                suffix += 1
                name = f"dashboard-{suffix}"

    def poll_once(self, trigger: str = "scheduled") -> MonitorRound:
        """Run one monitoring round: poll all sensors, publish to the bus.

        Each sensor is measured in its own span with wall-clock timing and
        error isolation (see :meth:`SensorRegistry.poll_spans`); the
        published events carry per-sensor ``elapsed_ms`` and their span's
        exemplar labels, so a slow or failing round is attributable to a
        specific sensor rather than just "the round was slow".
        """
        round_started = time.perf_counter()
        round_span = self.tracer.start_span("monitor.round")
        if round_span.is_recording:
            round_span.set_attribute("trigger", trigger)
            round_span.set_attribute("round", float(len(self.rounds)))
        context = self.context_provider()
        polled = self.registry.poll_spans(
            context, tracer=self.tracer, parent=round_span
        )
        record = MonitorRound(index=len(self.rounds), trigger=trigger)
        for item in polled:
            record.readings.append(item.reading)
            record.timings[item.reading.sensor] = item.elapsed_ms
            if item.reading.error:
                record.errors.append(item.reading.sensor)
            event = TelemetryEvent.from_reading(item.reading)
            event.attrs["elapsed_ms"] = item.elapsed_ms
            if item.span.is_recording:
                event.with_trace(item.span.trace_id, item.span.span_id)
            self.telemetry.publish(self.topic, event)
        # deliver synchronously so dashboards/rollups are current when the
        # round returns; production loops may instead pump on their own
        # cadence for batching
        self.telemetry.pump()
        record.duration_ms = (time.perf_counter() - round_started) * 1000.0
        if round_span.is_recording:
            record.trace_id = round_span.trace_id
            round_span.set_attribute("n_sensors", float(len(polled)))
            round_span.set_attribute("duration_ms", record.duration_ms)
            if record.errors:
                round_span.record_error(
                    "sensor errors: " + ", ".join(record.errors)
                )
        round_span.end()
        self.rounds.append(record)
        self._last_model_version = context.model_version
        return record

    def run(self, n_rounds: int) -> List[MonitorRound]:
        """Run a fixed number of scheduled rounds (simulated periodicity)."""
        if n_rounds < 0:
            raise ValueError("n_rounds must be non-negative")
        return [self.poll_once("scheduled") for __ in range(n_rounds)]

    def on_model_update(self) -> Optional[MonitorRound]:
        """Poll if (and only if) the model version changed since last round.

        This is the paper's "every time an AI model is updated" trigger;
        call it after pipeline runs.  Returns ``None`` when nothing changed.
        Any change counts — a version *decrease* (operator rollback) is as
        much a new model as an increase.
        """
        context = self.context_provider()
        if context.model_version == self._last_model_version:
            return None
        return self.poll_once("model_update")

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)
