"""Continuous monitoring: periodic sensor polling into the dashboard.

§V: monitoring "consists in requesting micro-service functionality
periodically.  For instance, every time an AI model is updated or there is a
change in any step of the construction of the model."  The monitor models
exactly those two triggers: scheduled rounds and model-update events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.dashboard import AIDashboard
from repro.core.registry import SensorRegistry
from repro.core.sensors import ModelContext, SensorReading


@dataclass
class MonitorRound:
    """Record of one polling round: why it ran and what it measured."""

    index: int
    trigger: str  # "scheduled" | "model_update"
    readings: List[SensorReading] = field(default_factory=list)


class ContinuousMonitor:
    """Drives the sensor registry on a schedule and on model updates.

    Parameters
    ----------
    registry / dashboard:
        The application's sensors and the operator surface readings land on.
    context_provider:
        Zero-argument callable returning the current :class:`ModelContext`;
        called at every round so the monitor always measures live state.
    """

    def __init__(
        self,
        registry: SensorRegistry,
        dashboard: AIDashboard,
        context_provider: Callable[[], ModelContext],
    ) -> None:
        self.registry = registry
        self.dashboard = dashboard
        self.context_provider = context_provider
        self.rounds: List[MonitorRound] = []
        self._last_model_version: Optional[int] = None

    def poll_once(self, trigger: str = "scheduled") -> MonitorRound:
        """Run one monitoring round: poll all sensors, push to dashboard."""
        context = self.context_provider()
        readings = self.registry.poll(context)
        for reading in readings:
            self.dashboard.add_reading(reading)
        record = MonitorRound(
            index=len(self.rounds), trigger=trigger, readings=readings
        )
        self.rounds.append(record)
        self._last_model_version = context.model_version
        return record

    def run(self, n_rounds: int) -> List[MonitorRound]:
        """Run a fixed number of scheduled rounds (simulated periodicity)."""
        if n_rounds < 0:
            raise ValueError("n_rounds must be non-negative")
        return [self.poll_once("scheduled") for __ in range(n_rounds)]

    def on_model_update(self) -> Optional[MonitorRound]:
        """Poll if (and only if) the model version changed since last round.

        This is the paper's "every time an AI model is updated" trigger;
        call it after pipeline runs.  Returns ``None`` when nothing changed.
        """
        context = self.context_provider()
        if context.model_version == self._last_model_version:
            return None
        return self.poll_once("model_update")

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)
