"""Human-in-the-loop feedback: operator actions applied back to the pipeline.

"This information is then used by human operators to comprehend possible
issues that influence the performance of AI models and adjust or counter
them" (§I); "Human feedback to change AI behavior is applied directly to the
AI pipeline" (§IV).  Each action encapsulates one corrective move the
dashboard's insights justify — label sanitisation after a poisoning alert,
retraining, or swapping the learning algorithm (§VIII "changing the machine
learning algorithm").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.ml.model import Classifier
from repro.ml.pipeline import AIPipeline, PipelineContext, StageKind


def sanitize_labels_knn(
    X: np.ndarray, y: np.ndarray, k: int = 5, threshold: float = 0.8
) -> np.ndarray:
    """kNN-majority label sanitisation (the paper's "label sanitization").

    For every sample, look at its ``k`` nearest neighbours (Euclidean); when
    at least ``threshold`` of them agree on a label different from the
    sample's own, relabel the sample to that majority.  Flipped labels sit in
    dense regions of the opposite class, which is exactly what this repairs.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    n = X.shape[0]
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, {n - 1}]")
    if not 0.5 < threshold <= 1.0:
        raise ValueError("threshold must be in (0.5, 1.0]")
    sq = np.sum(X**2, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
    np.fill_diagonal(d2, np.inf)
    neighbours = np.argsort(d2, axis=1)[:, :k]
    y_out = np.array(y, copy=True)
    for i in range(n):
        labels, counts = np.unique(y[neighbours[i]], return_counts=True)
        top = int(np.argmax(counts))
        if counts[top] / k >= threshold and labels[top] != y[i]:
            y_out[i] = labels[top]
    return y_out


class OperatorAction(ABC):
    """One corrective action a human operator can apply to a pipeline."""

    name: str = "operator_action"

    @abstractmethod
    def apply(self, pipeline: AIPipeline) -> PipelineContext:
        """Apply the action and return the resulting pipeline context."""


@dataclass
class LabelSanitizationAction(OperatorAction):
    """Sanitise training labels, then re-run from the labeling stage.

    This is the countermeasure the paper points at after the Fig. 6(a)-iv
    detector fires: "requiring to monitor further the model to apply
    corrective actions, e.g., Label sanitization methods."
    """

    k: int = 5
    threshold: float = 0.8
    name: str = "label_sanitization"

    def apply(self, pipeline: AIPipeline) -> PipelineContext:
        previous_labeler = pipeline.labeler

        def sanitising_labeler(X: np.ndarray, y: np.ndarray) -> np.ndarray:
            if previous_labeler is not None:
                y = previous_labeler(X, y)
            return sanitize_labels_knn(X, y, k=self.k, threshold=self.threshold)

        pipeline.update_labeler(sanitising_labeler)
        return pipeline.run(from_stage=StageKind.LABELING)


@dataclass
class RetrainAction(OperatorAction):
    """Retrain the model on current data (e.g. after a drift alert)."""

    name: str = "retrain"

    def apply(self, pipeline: AIPipeline) -> PipelineContext:
        return pipeline.retrain()


@dataclass
class ModelSwapAction(OperatorAction):
    """Change the learning algorithm and retrain (§VIII AI tuning).

    ``factory`` builds the replacement model — e.g. swapping a decision tree
    for the random forest the Fig. 6 experiments showed to be more
    poisoning-resilient.
    """

    factory: Optional[Callable[[], Classifier]] = None
    name: str = "model_swap"

    def apply(self, pipeline: AIPipeline) -> PipelineContext:
        if self.factory is None:
            raise ValueError("ModelSwapAction needs a model factory")
        pipeline.swap_model_factory(self.factory)
        return pipeline.retrain()
