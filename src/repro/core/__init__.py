"""SPATIAL core: AI sensors, the sensor registry, the continuous monitor,
the AI dashboard, and the human-in-the-loop feedback actions.

This package is the paper's primary contribution (Fig. 5): applications are
instrumented with AI sensors for each trustworthy property; sensor readings
flow to an AI dashboard where human operators gauge the AI's inference
capabilities and react — feeding corrective actions back into the pipeline.
"""

from repro.core.sensors import (
    AISensor,
    DataQualitySensor,
    ExplanationDriftSensor,
    ExplanationSensor,
    FairnessSensor,
    LimeExplanationSensor,
    ModelContext,
    PerformanceSensor,
    PrivacySensor,
    ResilienceSensor,
    SensorReading,
)
from repro.core.narrator import (
    Audience,
    narrate_incident,
    narrate_reading,
    narrate_report,
)
from repro.core.drift import (
    DataDriftSensor,
    dataset_drift_score,
    ks_statistic,
    population_stability_index,
)
from repro.core.audit import AuditFinding, AuditReport, verify_export
from repro.core.modelcard import generate_model_card
from repro.core.system import SpatialSystem
from repro.core.sensors import ImageExplanationSensor
from repro.core.registry import PolledReading, SensorRegistry
from repro.core.monitor import ContinuousMonitor, MonitorRound
from repro.core.dashboard import AIDashboard, Alert, AlertRule
from repro.core.feedback import (
    LabelSanitizationAction,
    ModelSwapAction,
    OperatorAction,
    RetrainAction,
    sanitize_labels_knn,
)

__all__ = [
    "AIDashboard",
    "AISensor",
    "Alert",
    "AlertRule",
    "Audience",
    "AuditFinding",
    "AuditReport",
    "ContinuousMonitor",
    "DataDriftSensor",
    "DataQualitySensor",
    "ExplanationDriftSensor",
    "ExplanationSensor",
    "FairnessSensor",
    "ImageExplanationSensor",
    "LabelSanitizationAction",
    "LimeExplanationSensor",
    "ModelContext",
    "ModelSwapAction",
    "MonitorRound",
    "OperatorAction",
    "PerformanceSensor",
    "PolledReading",
    "PrivacySensor",
    "ResilienceSensor",
    "RetrainAction",
    "SensorReading",
    "SensorRegistry",
    "SpatialSystem",
    "dataset_drift_score",
    "generate_model_card",
    "ks_statistic",
    "narrate_incident",
    "narrate_reading",
    "narrate_report",
    "population_stability_index",
    "sanitize_labels_knn",
    "verify_export",
]
