"""The SPATIAL facade: one object that augments an application (Fig. 5).

Everything in :mod:`repro.core` composes manually (pipeline + registry +
dashboard + monitor + feedback); :class:`SpatialSystem` wires the standard
composition so an application is augmented in three lines:

>>> spatial = SpatialSystem.attach(pipeline)        # doctest: +SKIP
>>> spatial.run_pipeline()                          # doctest: +SKIP
>>> print(spatial.dashboard.render_text())          # doctest: +SKIP

The facade owns the context plumbing (pipeline state → ModelContext),
polls on model updates automatically, and exposes the compliance artifacts
(trust score, model card, audit export) directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.dashboard import AIDashboard, Alert, AlertRule
from repro.core.feedback import OperatorAction
from repro.core.modelcard import generate_model_card
from repro.core.monitor import ContinuousMonitor, MonitorRound
from repro.core.registry import SensorRegistry
from repro.core.sensors import (
    AISensor,
    DataQualitySensor,
    ModelContext,
    PerformanceSensor,
)
from repro.ml.pipeline import AIPipeline, PipelineContext
from repro.trust.properties import TrustProperty
from repro.trust.score import TrustScore


class SpatialSystem:
    """Pipeline + sensors + dashboard + monitor, wired the standard way.

    Build with :meth:`attach`; the constructor takes pre-assembled parts
    for callers that need custom wiring.
    """

    def __init__(
        self,
        pipeline: AIPipeline,
        registry: SensorRegistry,
        dashboard: AIDashboard,
        monitor: ContinuousMonitor,
    ) -> None:
        self.pipeline = pipeline
        self.registry = registry
        self.dashboard = dashboard
        self.monitor = monitor

    # -- construction ----------------------------------------------------------

    @classmethod
    def attach(
        cls,
        pipeline: AIPipeline,
        sensors: Optional[Iterable[AISensor]] = None,
        rules: Optional[Iterable[AlertRule]] = None,
        telemetry=None,
    ) -> "SpatialSystem":
        """Augment a pipeline with SPATIAL.

        ``sensors`` defaults to the performance + data-quality pair every
        application needs; add property-specific sensors per the use case.
        ``telemetry`` optionally routes all readings through a
        :class:`repro.telemetry.TelemetryPipeline` (or bare bus) so they
        are WAL-persisted and rolled up alongside the dashboard.
        """
        registry = SensorRegistry()
        for sensor in sensors if sensors is not None else (
            PerformanceSensor(),
            DataQualitySensor(),
        ):
            registry.register(sensor)
        dashboard = AIDashboard()
        for rule in rules or ():
            dashboard.add_rule(rule)

        def context_provider() -> ModelContext:
            return cls._context_from(pipeline.context)

        monitor = ContinuousMonitor(
            registry, dashboard, context_provider, telemetry=telemetry
        )
        return cls(pipeline, registry, dashboard, monitor)

    @property
    def telemetry(self):
        """The monitor's telemetry target (pipeline or bus)."""
        return self.monitor.telemetry

    @staticmethod
    def _context_from(ctx: PipelineContext) -> ModelContext:
        return ModelContext(
            model=ctx.model,
            X_train=ctx.X_train,
            y_train=ctx.y_train,
            X_test=ctx.X_test,
            y_test=ctx.y_test,
            model_version=ctx.model_version,
            extras=dict(ctx.extras),
        )

    # -- operation ---------------------------------------------------------------

    def run_pipeline(self) -> PipelineContext:
        """Run the pipeline end to end and poll sensors on the new model."""
        context = self.pipeline.run()
        self.monitor.on_model_update()
        return context

    def poll(self, n_rounds: int = 1) -> List[MonitorRound]:
        """Scheduled monitoring rounds (the periodic sensor requests)."""
        return self.monitor.run(n_rounds)

    def apply(self, action: OperatorAction) -> PipelineContext:
        """Apply an operator action and re-poll (the Fig. 4(b) feedback edge)."""
        context = action.apply(self.pipeline)
        self.monitor.on_model_update()
        return context

    # -- insight -------------------------------------------------------------------

    def trust_score(
        self, weights: Optional[Dict[TrustProperty, float]] = None
    ) -> TrustScore:
        """The dashboard's aggregate trust panel."""
        return self.dashboard.trust_panel(weights)

    def alerts(self) -> List[Alert]:
        """Pending (unacknowledged) alerts."""
        return self.dashboard.alerts()

    def model_card(self, model_name: str = "model", intended_use: str = "") -> str:
        """Generate the transparency artifact from the live state."""
        return generate_model_card(
            self.pipeline,
            dashboard=self.dashboard,
            registry=self.registry,
            model_name=model_name,
            intended_use=intended_use,
        )

    def audit_export(self) -> str:
        """The dashboard's JSON audit trail."""
        return self.dashboard.to_json()

    def coverage_report(self) -> Dict[str, object]:
        """Instrumentation summary incl. unmonitored Fig. 3 vulnerabilities."""
        return self.registry.coverage_report()
