"""Audit-trail verification for dashboard exports.

§I: the AI dashboard "facilitates the verification of AI systems for
potential audits and ensures compliance with accountability regulations".
The export side lives in :meth:`AIDashboard.to_json`; this module is the
auditor's side — load an export, reconstruct the reading history, and run
integrity checks (well-formed values, monotone time, non-decreasing model
versions, alert consistency) producing a findings list a compliance review
can act on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.trust.properties import TrustProperty


@dataclass
class AuditFinding:
    """One integrity problem discovered in an export."""

    severity: str  # "error" | "warning"
    sensor: str
    message: str


@dataclass
class AuditReport:
    """Outcome of verifying one dashboard export."""

    n_sensors: int
    n_readings: int
    n_alerts: int
    findings: List[AuditFinding] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no error-severity findings exist."""
        return not any(f.severity == "error" for f in self.findings)


def load_export(payload: str) -> Dict:
    """Parse a dashboard JSON export, validating its top-level shape."""
    data = json.loads(payload)
    if not isinstance(data, dict) or "sensors" not in data or "alerts" not in data:
        raise ValueError("not a dashboard export: missing sensors/alerts keys")
    return data


def verify_export(payload: str) -> AuditReport:
    """Run the integrity checks over a dashboard export."""
    data = load_export(payload)
    findings: List[AuditFinding] = []
    n_readings = 0
    known_properties = {p.value for p in TrustProperty}

    for sensor, readings in data["sensors"].items():
        n_readings += len(readings)
        last_time = -float("inf")
        last_version = -1
        for index, reading in enumerate(readings):
            value = reading.get("value")
            if value is None or not 0.0 <= value <= 1.0:
                findings.append(
                    AuditFinding(
                        "error",
                        sensor,
                        f"reading {index} value {value!r} outside [0, 1]",
                    )
                )
            prop = reading.get("property")
            if prop not in known_properties:
                findings.append(
                    AuditFinding(
                        "error",
                        sensor,
                        f"reading {index} has unknown property {prop!r}",
                    )
                )
            timestamp = reading.get("timestamp", 0.0)
            if timestamp < last_time:
                findings.append(
                    AuditFinding(
                        "error",
                        sensor,
                        f"reading {index} timestamp regressed "
                        f"({timestamp} < {last_time})",
                    )
                )
            last_time = max(last_time, timestamp)
            version = reading.get("model_version", 0)
            if version < last_version:
                findings.append(
                    AuditFinding(
                        "warning",
                        sensor,
                        f"reading {index} model version regressed "
                        f"({version} < {last_version}) — rollback or clock skew?",
                    )
                )
            last_version = max(last_version, version)

    for index, alert in enumerate(data["alerts"]):
        sensor = alert.get("sensor", "?")
        if sensor not in data["sensors"]:
            findings.append(
                AuditFinding(
                    "error",
                    sensor,
                    f"alert {index} references a sensor with no readings",
                )
            )
        value = alert.get("value")
        threshold = alert.get("threshold")
        direction = alert.get("direction")
        if value is not None and threshold is not None:
            consistent = (
                value < threshold if direction == "below" else value > threshold
            )
            if not consistent:
                findings.append(
                    AuditFinding(
                        "error",
                        sensor,
                        f"alert {index} value {value} does not violate its "
                        f"threshold {threshold} ({direction})",
                    )
                )

    return AuditReport(
        n_sensors=len(data["sensors"]),
        n_readings=n_readings,
        n_alerts=len(data["alerts"]),
        findings=findings,
    )
