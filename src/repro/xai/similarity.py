"""Explanation-similarity metrics — the Fig. 6(a)-iv poisoning detector.

The paper's procedure: "we determine the five nearest neighbours regarding
the Euclidean distance for each fall instance in the retained clean test
set.  We then measure the average distance of the corresponding SHAP
explanations.  Finally, we average the average distances of explanations,
resulting in an average distance of explanations of similar instances
across the test set".  On a healthy model, similar inputs get similar
explanations; poisoning scrambles the learned logic, so the dissimilarity
rises with the poison rate — which is exactly what makes it a detector.
"""

from __future__ import annotations

import numpy as np


def explanation_distance(e1: np.ndarray, e2: np.ndarray) -> float:
    """Euclidean distance between two explanation vectors."""
    e1 = np.asarray(e1, dtype=np.float64).reshape(-1)
    e2 = np.asarray(e2, dtype=np.float64).reshape(-1)
    if e1.shape != e2.shape:
        raise ValueError(f"explanation shapes differ: {e1.shape} vs {e2.shape}")
    return float(np.linalg.norm(e1 - e2))


def nearest_neighbours(X: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k nearest rows (Euclidean) for every row of ``X``.

    Returns shape (n, k); a row is never its own neighbour.
    """
    X = np.asarray(X, dtype=np.float64)
    n = X.shape[0]
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, {n - 1}], got {k}")
    sq = np.sum(X**2, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
    np.fill_diagonal(d2, np.inf)
    return np.argsort(d2, axis=1)[:, :k]


def knn_explanation_dissimilarity(
    X: np.ndarray, explanations: np.ndarray, k: int = 5
) -> float:
    """The Fig. 6(a)-iv metric.

    Parameters
    ----------
    X:
        Instances (e.g. the fall rows of the clean test set), shape (n, d).
    explanations:
        Matching SHAP explanation vectors, shape (n, d_e).
    k:
        Neighbourhood size (paper: 5).

    Returns the grand mean, over instances, of the mean explanation distance
    to each instance's k nearest input-space neighbours.  Higher values mean
    the model explains similar inputs inconsistently — the poisoning signal.
    """
    X = np.asarray(X, dtype=np.float64)
    explanations = np.asarray(explanations, dtype=np.float64)
    if X.shape[0] != explanations.shape[0]:
        raise ValueError("X and explanations disagree on instance count")
    if X.shape[0] < k + 1:
        raise ValueError(f"need at least {k + 1} instances for k={k}")
    neighbours = nearest_neighbours(X, k)
    per_instance = np.empty(X.shape[0])
    for i in range(X.shape[0]):
        dists = [
            explanation_distance(explanations[i], explanations[j])
            for j in neighbours[i]
        ]
        per_instance[i] = float(np.mean(dists))
    return float(per_instance.mean())
