"""Explainable-AI substrate: the metrics behind SPATIAL's accountability sensors.

SHAP supports the paper's accountability analysis ("SHAP fosters transparency
of inference capabilities of AI by highlighting the most important part of
the data used for learning"), LIME and occlusion sensitivity power the
image-explanation micro-services of the capacity experiments, and the
similarity module implements the SHAP-dissimilarity poisoning detector of
Fig. 6(a)-iv.
"""

from repro.xai.shap import KernelShapExplainer, exact_shap_values
from repro.xai.lime import LimeTabularExplainer
from repro.xai.lime_image import LimeImageExplainer, grid_superpixels
from repro.xai.occlusion import occlusion_sensitivity
from repro.xai.permutation import permutation_importance
from repro.xai.similarity import (
    explanation_distance,
    knn_explanation_dissimilarity,
    nearest_neighbours,
)

__all__ = [
    "KernelShapExplainer",
    "LimeImageExplainer",
    "LimeTabularExplainer",
    "exact_shap_values",
    "explanation_distance",
    "grid_superpixels",
    "knn_explanation_dissimilarity",
    "nearest_neighbours",
    "occlusion_sensitivity",
    "permutation_importance",
]
