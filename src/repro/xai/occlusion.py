"""Occlusion sensitivity maps.

§VIII: "explainability can be generated using occlusion sensitivity to
identify the most relevant area on an image contributing with the object
detection".  The method slides an occluding window over the image, replaces
the covered pixels with a baseline value, and records how much the target
class probability drops — large drops mark regions the model relies on.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

ImagePredictFn = Callable[[np.ndarray], np.ndarray]


def occlusion_sensitivity(
    predict_fn: ImagePredictFn,
    image: np.ndarray,
    class_index: int,
    window: int = 4,
    stride: Optional[int] = None,
    baseline: Optional[float] = None,
) -> np.ndarray:
    """Return an (H, W) sensitivity map for one image and class.

    Parameters
    ----------
    predict_fn:
        Maps (n, H, W) image batches to (n, n_classes) probabilities.
    window:
        Side of the square occluder in pixels.
    stride:
        Step between occluder positions (defaults to ``window`` — tiling).
    baseline:
        Fill value for occluded pixels (default: image mean).

    The map holds, at every pixel, the probability drop caused by the
    occluder covering it (overlapping positions average).
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D grayscale image, got {image.shape}")
    h, w = image.shape
    if not 1 <= window <= min(h, w):
        raise ValueError(f"window {window} out of range for image {image.shape}")
    if stride is None:
        stride = window
    if stride < 1:
        raise ValueError("stride must be >= 1")
    fill = float(image.mean()) if baseline is None else baseline

    reference = np.asarray(predict_fn(image[None]))[0]
    ref_prob = reference[class_index] if reference.ndim else float(reference)

    positions = [
        (top, left)
        for top in range(0, h - window + 1, stride)
        for left in range(0, w - window + 1, stride)
    ]
    batch = np.repeat(image[None], len(positions), axis=0)
    for k, (top, left) in enumerate(positions):
        batch[k, top : top + window, left : left + window] = fill
    probs = np.asarray(predict_fn(batch))
    occluded = probs[:, class_index] if probs.ndim == 2 else probs

    heat = np.zeros((h, w))
    counts = np.zeros((h, w))
    for k, (top, left) in enumerate(positions):
        drop = ref_prob - occluded[k]
        heat[top : top + window, left : left + window] += drop
        counts[top : top + window, left : left + window] += 1.0
    counts[counts == 0] = 1.0
    return heat / counts
