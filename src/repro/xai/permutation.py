"""Permutation feature importance — the model-agnostic global baseline.

Breiman-style: shuffle one feature column at a time and measure the score
drop.  SPATIAL uses it in two roles: a cheap global-importance metric for
dashboards that cannot afford SHAP, and an *independent cross-check* of the
Kernel SHAP implementation (their global rankings must broadly agree on
models with clear signal — property-tested in the suite and compared in
the ablation bench).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.ml.metrics import accuracy_score
from repro.ml.model import Classifier


def permutation_importance(
    model: Classifier,
    X: np.ndarray,
    y: np.ndarray,
    n_repeats: int = 5,
    scorer: Optional[Callable[[np.ndarray, np.ndarray], float]] = None,
    seed: int = 0,
) -> np.ndarray:
    """Mean score drop per feature over ``n_repeats`` shuffles.

    Returns shape (n_features,).  Values near zero mean the model ignores
    the feature; negative values (shuffling *helped*) are kept as-is — they
    are a useful overfitting signal.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
        raise ValueError("X must be 2-D and aligned with a non-empty y")
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    scorer = scorer or accuracy_score
    baseline = scorer(y, model.predict(X))
    rng = np.random.default_rng(seed)
    n = X.shape[0]
    importances = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        # one model call covers every repeat: stack the n_repeats shuffled
        # copies row-wise and predict the (n_repeats · n, d) block at once
        # (the per-repeat rng.permutation order is kept, so seeded results
        # match the old repeat-at-a-time loop)
        stacked = np.tile(X, (n_repeats, 1))
        for r in range(n_repeats):
            stacked[r * n : (r + 1) * n, j] = rng.permutation(X[:, j])
        preds = model.predict(stacked)
        drops = [
            baseline - scorer(y, preds[r * n : (r + 1) * n])
            for r in range(n_repeats)
        ]
        importances[j] = float(np.mean(drops))
    return importances
