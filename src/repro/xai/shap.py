"""Kernel SHAP: model-agnostic Shapley-value feature attributions.

Same estimator family as Lundberg & Lee's KernelExplainer: sample feature
coalitions, evaluate the model with absent features marginalised over a
background dataset, and solve the Shapley-kernel-weighted linear regression
under the additivity constraint.  For small feature counts the exact
enumeration over all 2^d coalitions is used, which makes the additivity and
symmetry axioms hold to numerical precision (property-tested in the suite).

The estimation pipeline is fully vectorized: all (coalition × background)
model inputs are stacked into one matrix by broadcasting and evaluated in a
single ``predict_fn`` call (chunked only past a fixed row budget), per-
coalition means come from one grouped ``np.add.reduceat``, kernel weights
are a per-size table lookup, and mask enumeration is arithmetic on an
``arange``.  :meth:`KernelShapExplainer.shap_values_batch` explains a whole
batch through one shared coalition sample and one KKT solve whose
factorisation is reused across every instance and output column.  The
per-coalition loop implementation is preserved verbatim in
``repro.xai._reference`` as the equivalence oracle for tests and benches.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

PredictFn = Callable[[np.ndarray], np.ndarray]

# One batched model call covers at most this many stacked rows; above it the
# (n_groups × n_background) stack is chunked so peak memory stays bounded
# and the model's working set stays cache-resident (very large single calls
# measurably degrade per-row throughput), while typical workloads
# (256 coalitions × 100 background rows) remain a single call.
_MAX_ROWS_PER_CALL = 1 << 15


def _kernel_weights_by_size(d: int) -> np.ndarray:
    """Shapley kernel weight per coalition *size*: a (d + 1,) lookup table.

    The weight depends on the mask only through its popcount, so it is
    computed once per size here and applied to every mask by indexing —
    not recomputed per coalition.  Empty and full coalitions get a
    near-infinite weight (the standard constraint-enforcement trick).
    """
    table = np.full(d + 1, 1e9)
    for size in range(1, d):
        table[size] = (d - 1) / (math.comb(d, size) * size * (d - size))
    return table


def _enumerate_masks(d: int, include_trivial: bool = False) -> np.ndarray:
    """All coalition masks as a (n_masks, d) bool matrix, in id order.

    Row ``i`` holds the bits of integer ``i`` (column ``j`` = bit ``j``),
    produced by shifting an ``arange`` — no Python-level double loop.  By
    default the empty and full coalitions are excluded (the Kernel SHAP
    regression constrains them exactly); ``include_trivial`` keeps them for
    exact enumeration.
    """
    start, stop = (0, 2**d) if include_trivial else (1, 2**d - 1)
    ids = np.arange(start, stop, dtype=np.int64)
    return ((ids[:, None] >> np.arange(d, dtype=np.int64)) & 1).astype(bool)


def _predict_2d(predict_fn: PredictFn, X: np.ndarray) -> np.ndarray:
    """Evaluate the model and normalise the output to (n, n_outputs)."""
    preds = np.asarray(predict_fn(X), dtype=np.float64)
    if preds.ndim == 1:
        preds = preds[:, None]
    return preds


def _grouped_marginal_means(
    predict_fn: PredictFn,
    X: np.ndarray,
    background: np.ndarray,
    masks: np.ndarray,
) -> np.ndarray:
    """E_b[f(x_i with off-coalition features from b)] per (instance, mask).

    Builds the stacked ``(n_instances · n_masks · n_background, d)`` input
    by broadcasting ``np.where(mask, x, background)``, evaluates the model
    in as few calls as the row budget allows (one, typically), and reduces
    each contiguous background block to its mean with one grouped
    ``np.add.reduceat``.  Returns shape (n_instances, n_masks, n_outputs).
    """
    n_inst, d = X.shape
    n_masks = masks.shape[0]
    n_bg = background.shape[0]
    n_groups = n_inst * n_masks
    # one group per (instance, mask) pair; instances vary slowest
    group_mask = np.broadcast_to(masks, (n_inst, n_masks, d)).reshape(n_groups, d)
    group_x = np.repeat(X, n_masks, axis=0)
    groups_per_call = max(1, _MAX_ROWS_PER_CALL // n_bg)
    chunks = []
    for start in range(0, n_groups, groups_per_call):
        gm = group_mask[start : start + groups_per_call]
        gx = group_x[start : start + groups_per_call]
        stacked = np.where(gm[:, None, :], gx[:, None, :], background[None, :, :])
        preds = _predict_2d(predict_fn, stacked.reshape(-1, d))
        offsets = np.arange(0, preds.shape[0], n_bg)
        chunks.append(np.add.reduceat(preds, offsets, axis=0) / n_bg)
    means = chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=0)
    return means.reshape(n_inst, n_masks, -1)


def _solve_weighted(
    Z: np.ndarray, y: np.ndarray, weights: np.ndarray, total: np.ndarray
) -> np.ndarray:
    """Constrained weighted least squares: min ||Zφ−y||_W s.t. Σφ = total.

    ``y`` and ``total`` may be matrices (one column per instance × output
    pair); the factorisation ``pinv(ZᵀWZ)`` depends only on the coalition
    design, so a whole batch shares one solve.
    """
    W = weights[:, None]
    A = Z.T @ (W * Z)
    A_inv = np.linalg.pinv(A)
    ones = np.ones(Z.shape[1])
    b = Z.T @ (W * y)
    # KKT multiplier per output column
    denom = ones @ A_inv @ ones
    lam = (ones @ A_inv @ b - total) / denom
    return A_inv @ (b - np.outer(ones, lam))


def exact_shap_values(
    predict_fn: PredictFn,
    x: np.ndarray,
    background: np.ndarray,
) -> np.ndarray:
    """Exact Shapley values by full enumeration (use for d ≤ ~12).

    Returns an array of shape (d, n_outputs): the attribution of each feature
    to each model output, satisfying ``base + Σφ = f(x)`` exactly.

    All 2^d coalition values come from one batched model evaluation; the
    Shapley sum per feature is a weighted dot product between the
    marginal-contribution matrix and a precomputed factorial-coefficient
    table indexed by coalition size.
    """
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    background = np.asarray(background, dtype=np.float64)
    d = x.shape[0]
    if d > 16:
        raise ValueError(f"exact enumeration infeasible for d={d}; use KernelShapExplainer")

    masks = _enumerate_masks(d, include_trivial=True)  # row i == subset bits of i
    v = _grouped_marginal_means(predict_fn, x.reshape(1, -1), background, masks)[0]

    fact = np.array([math.factorial(k) for k in range(d + 1)], dtype=np.float64)
    # coeff[s] = s!(d-s-1)!/d! for a coalition of size s that excludes j
    coeff = fact[:d] * fact[d - 1 - np.arange(d)] / fact[d] if d else fact[:0]
    sizes = masks.sum(axis=1)
    ids = np.arange(2**d, dtype=np.int64)
    phi = np.zeros((d, v.shape[1]))
    for j in range(d):
        without = ids[(ids >> j) & 1 == 0]
        with_j = without | (1 << j)
        phi[j] = coeff[sizes[without]] @ (v[with_j] - v[without])
    return phi


class KernelShapExplainer:
    """Sampling-based Kernel SHAP explainer.

    Parameters
    ----------
    predict_fn:
        Callable mapping (n, d) inputs to (n, n_outputs) predictions —
        typically ``model.predict_proba``.
    background:
        Background dataset used to marginalise absent features; a
        representative sample of ~50-200 training rows.
    n_coalitions:
        Sampled coalitions per explanation (ignored when full enumeration is
        cheaper).  More samples → tighter attributions.
    seed:
        RNG seed for coalition sampling.
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        background: np.ndarray,
        n_coalitions: int = 256,
        seed: int = 0,
    ) -> None:
        background = np.asarray(background, dtype=np.float64)
        if background.ndim != 2 or background.shape[0] == 0:
            raise ValueError("background must be a non-empty 2-D array")
        if n_coalitions < 8:
            raise ValueError("n_coalitions must be >= 8")
        self.predict_fn = predict_fn
        self.background = background
        self.n_coalitions = n_coalitions
        self.seed = seed
        self.base_values_ = np.atleast_1d(
            np.asarray(predict_fn(background)).mean(axis=0)
        )

    @property
    def n_features(self) -> int:
        return self.background.shape[1]

    def _coalitions(self, d: int):
        """Coalition design for one explanation run: (masks, weights).

        Reseeded per call, exactly like the per-row estimator always was —
        which is what lets a whole batch share one coalition sample.  Small
        feature counts enumerate every non-trivial mask (vectorized bit
        arithmetic); larger ones use paired antithetic sampling, whose RNG
        call sequence is kept verbatim so seeded runs match the loop
        reference implementation mask-for-mask.
        """
        rng = np.random.default_rng(self.seed)
        n_possible = 2**d - 2 if d < 30 else np.inf
        if n_possible <= self.n_coalitions:
            masks = _enumerate_masks(d)
        else:
            # paired antithetic sampling over coalition sizes
            sizes = rng.integers(1, d, size=self.n_coalitions // 2)
            rows = np.zeros((2 * sizes.shape[0], d), dtype=bool)
            for i, size in enumerate(sizes):
                rows[2 * i, rng.choice(d, size=size, replace=False)] = True
            rows[1::2] = ~rows[::2]
            masks = np.unique(rows, axis=0)
            counts = masks.sum(axis=1)
            masks = masks[(counts > 0) & (counts < d)]
        weights = _kernel_weights_by_size(d)[masks.sum(axis=1)]
        return masks, weights

    def _explain_batch(
        self, X: np.ndarray, class_index: Optional[int]
    ) -> np.ndarray:
        """Shared-design batch estimation: returns (n, d) or (n, d, n_out)."""
        n_inst, d = X.shape
        f_X = _predict_2d(self.predict_fn, X)
        total = f_X - self.base_values_
        masks, weights = self._coalitions(d)
        means = _grouped_marginal_means(self.predict_fn, X, self.background, masks)
        y = means - self.base_values_  # (n_inst, n_masks, n_out)
        n_out = f_X.shape[1]
        # fold (instance, output) into columns: one KKT solve for everything
        y_cols = y.transpose(1, 0, 2).reshape(masks.shape[0], n_inst * n_out)
        phi = _solve_weighted(
            masks.astype(np.float64), y_cols, weights, total.reshape(-1)
        )
        phi = phi.reshape(d, n_inst, n_out).transpose(1, 0, 2)
        if class_index is not None:
            return phi[:, :, class_index]
        return phi

    def shap_values(
        self,
        x: np.ndarray,
        class_index: Optional[int] = None,
        tracer=None,
        parent=None,
    ) -> np.ndarray:
        """Attribution per feature for one instance.

        Returns shape (d,) when ``class_index`` is given, else (d, n_outputs).
        ``tracer``/``parent`` are duck-typed (``xai`` may not import the
        tracing package): when given, the whole estimation runs inside an
        ``xai.shap`` span timed by the tracer's injected clock.
        """
        if tracer is not None:
            with tracer.span("xai.shap", parent=parent) as span:
                span.set_attribute("n_coalitions", float(self.n_coalitions))
                span.set_attribute("n_features", float(self.n_features))
                return self._shap_values(x, class_index)
        return self._shap_values(x, class_index)

    def _shap_values(
        self, x: np.ndarray, class_index: Optional[int] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        d = x.shape[0]
        if d != self.n_features:
            raise ValueError(
                f"instance has {d} features, background has {self.n_features}"
            )
        return self._explain_batch(x.reshape(1, -1), class_index)[0]

    def shap_values_batch(
        self, X: np.ndarray, class_index: Optional[int] = None
    ) -> np.ndarray:
        """Explain many instances through one shared coalition design.

        Every row reuses the same sampled masks, the same stacked model
        evaluation and the same KKT factorisation (instances are extra
        columns of the weighted least-squares solve) — numerically the same
        estimate the per-row path produces, since that path reseeds its
        sampler per call anyway.  Returns (n, d) with ``class_index``, else
        (n, d, n_outputs).
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be a 2-D (n, d) array")
        if X.shape[1] != self.n_features:
            raise ValueError(
                f"instance has {X.shape[1]} features, background has {self.n_features}"
            )
        if X.shape[0] == 0:
            n_out = self.base_values_.shape[0]
            shape = (0, X.shape[1]) if class_index is not None else (0, X.shape[1], n_out)
            return np.zeros(shape)
        return self._explain_batch(X, class_index)

    def shap_values_batch_exact(
        self, X: np.ndarray, class_index: Optional[int] = None
    ) -> np.ndarray:
        """Batch explanation bitwise-equal to per-row ``shap_values``.

        The serving layer promises that batching never changes a result
        (benchmarks/bench_serving.py asserts bitwise equality), which
        :meth:`shap_values_batch` cannot: folding instances into extra
        columns of one KKT solve changes BLAS blocking, so results drift
        at ~1e-7 from the per-row path.  This variant shares everything
        that *is* row-stable — the coalition design and the grouped
        marginal evaluation (``np.add.reduceat`` reduces each
        instance's segments independently, and the compiled forests are
        row-stable under stacking) — then runs the weighted solve per
        instance with exactly the shapes the per-row path uses.  The
        cost kept by sharing dominates (model evaluation), so this stays
        within ~2x of the fully-fused solve while matching the
        per-request oracle bit for bit.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be a 2-D (n, d) array")
        if X.shape[1] != self.n_features:
            raise ValueError(
                f"instance has {X.shape[1]} features, background has {self.n_features}"
            )
        n_inst, d = X.shape
        n_out = self.base_values_.shape[0]
        if n_inst == 0:
            shape = (0, d) if class_index is not None else (0, d, n_out)
            return np.zeros(shape)
        f_X = _predict_2d(self.predict_fn, X)
        total = f_X - self.base_values_
        masks, weights = self._coalitions(d)
        means = _grouped_marginal_means(self.predict_fn, X, self.background, masks)
        y = means - self.base_values_  # (n_inst, n_masks, n_out)
        Z = masks.astype(np.float64)
        phi = np.empty((n_inst, d, n_out))
        for i in range(n_inst):
            phi[i] = _solve_weighted(Z, y[i], weights, total[i])
        if class_index is not None:
            return phi[:, :, class_index]
        return phi

    def mean_abs_importance(
        self, X: np.ndarray, class_index: int
    ) -> np.ndarray:
        """Global importance: mean |SHAP| per feature over a set of rows.

        This is the ranking the Fig. 7(a/b) before/after-evasion comparison
        is built from.
        """
        return np.abs(self.shap_values_batch(X, class_index)).mean(axis=0)
