"""Kernel SHAP: model-agnostic Shapley-value feature attributions.

Same estimator family as Lundberg & Lee's KernelExplainer: sample feature
coalitions, evaluate the model with absent features marginalised over a
background dataset, and solve the Shapley-kernel-weighted linear regression
under the additivity constraint.  For small feature counts the exact
enumeration over all 2^d coalitions is used, which makes the additivity and
symmetry axioms hold to numerical precision (property-tested in the suite).
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Callable, Optional

import numpy as np

PredictFn = Callable[[np.ndarray], np.ndarray]


def _coalition_weight(d: int, size: int) -> float:
    """Shapley kernel weight for a coalition of ``size`` of ``d`` players."""
    if size == 0 or size == d:
        return 1e9  # enforced via near-infinite weight (standard trick)
    return (d - 1) / (math.comb(d, size) * size * (d - size))


def _marginalised_prediction(
    predict_fn: PredictFn,
    x: np.ndarray,
    background: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """E_b[f(x with masked-off features replaced by background rows)]."""
    tiled = np.array(background, copy=True)
    tiled[:, mask] = x[mask]
    return np.asarray(predict_fn(tiled)).mean(axis=0)


def _solve_weighted(
    Z: np.ndarray, y: np.ndarray, weights: np.ndarray, total: np.ndarray
) -> np.ndarray:
    """Constrained weighted least squares: min ||Zφ−y||_W s.t. Σφ = total.

    ``y`` and ``total`` may be vectors (one column per output class); the
    solve is shared across columns.
    """
    W = weights[:, None]
    A = Z.T @ (W * Z)
    A_inv = np.linalg.pinv(A)
    ones = np.ones(Z.shape[1])
    b = Z.T @ (W * y)
    # KKT multiplier per output column
    denom = ones @ A_inv @ ones
    lam = (ones @ A_inv @ b - total) / denom
    return A_inv @ (b - np.outer(ones, lam))


def exact_shap_values(
    predict_fn: PredictFn,
    x: np.ndarray,
    background: np.ndarray,
) -> np.ndarray:
    """Exact Shapley values by full enumeration (use for d ≤ ~12).

    Returns an array of shape (d, n_outputs): the attribution of each feature
    to each model output, satisfying ``base + Σφ = f(x)`` exactly.
    """
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    background = np.asarray(background, dtype=np.float64)
    d = x.shape[0]
    if d > 16:
        raise ValueError(f"exact enumeration infeasible for d={d}; use KernelShapExplainer")

    def value(subset: frozenset) -> np.ndarray:
        mask = np.zeros(d, dtype=bool)
        mask[list(subset)] = True
        return _marginalised_prediction(predict_fn, x, background, mask)

    cache = {}

    def cached_value(subset: frozenset) -> np.ndarray:
        if subset not in cache:
            cache[subset] = value(subset)
        return cache[subset]

    n_outputs = np.atleast_1d(cached_value(frozenset())).shape[0]
    phi = np.zeros((d, n_outputs))
    players = list(range(d))
    for j in players:
        others = [p for p in players if p != j]
        for size in range(d):
            coeff = (
                math.factorial(size) * math.factorial(d - size - 1) / math.factorial(d)
            )
            for subset in combinations(others, size):
                s = frozenset(subset)
                phi[j] += coeff * (cached_value(s | {j}) - cached_value(s))
    return phi


class KernelShapExplainer:
    """Sampling-based Kernel SHAP explainer.

    Parameters
    ----------
    predict_fn:
        Callable mapping (n, d) inputs to (n, n_outputs) predictions —
        typically ``model.predict_proba``.
    background:
        Background dataset used to marginalise absent features; a
        representative sample of ~50-200 training rows.
    n_coalitions:
        Sampled coalitions per explanation (ignored when full enumeration is
        cheaper).  More samples → tighter attributions.
    seed:
        RNG seed for coalition sampling.
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        background: np.ndarray,
        n_coalitions: int = 256,
        seed: int = 0,
    ) -> None:
        background = np.asarray(background, dtype=np.float64)
        if background.ndim != 2 or background.shape[0] == 0:
            raise ValueError("background must be a non-empty 2-D array")
        if n_coalitions < 8:
            raise ValueError("n_coalitions must be >= 8")
        self.predict_fn = predict_fn
        self.background = background
        self.n_coalitions = n_coalitions
        self.seed = seed
        self.base_values_ = np.atleast_1d(
            np.asarray(predict_fn(background)).mean(axis=0)
        )

    @property
    def n_features(self) -> int:
        return self.background.shape[1]

    def shap_values(
        self,
        x: np.ndarray,
        class_index: Optional[int] = None,
        tracer=None,
        parent=None,
    ) -> np.ndarray:
        """Attribution per feature for one instance.

        Returns shape (d,) when ``class_index`` is given, else (d, n_outputs).
        ``tracer``/``parent`` are duck-typed (``xai`` may not import the
        tracing package): when given, the whole estimation runs inside an
        ``xai.shap`` span timed by the tracer's injected clock.
        """
        if tracer is not None:
            with tracer.span("xai.shap", parent=parent) as span:
                span.set_attribute("n_coalitions", float(self.n_coalitions))
                span.set_attribute("n_features", float(self.n_features))
                return self._shap_values(x, class_index)
        return self._shap_values(x, class_index)

    def _shap_values(
        self, x: np.ndarray, class_index: Optional[int] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        d = x.shape[0]
        if d != self.n_features:
            raise ValueError(
                f"instance has {d} features, background has {self.n_features}"
            )
        f_x = np.atleast_1d(np.asarray(self.predict_fn(x.reshape(1, -1)))[0])
        total = f_x - self.base_values_

        rng = np.random.default_rng(self.seed)
        n_possible = 2**d - 2 if d < 30 else np.inf
        if n_possible <= self.n_coalitions:
            masks = np.array(
                [
                    [(i >> j) & 1 for j in range(d)]
                    for i in range(1, 2**d - 1)
                ],
                dtype=bool,
            )
        else:
            # paired antithetic sampling over coalition sizes
            sizes = rng.integers(1, d, size=self.n_coalitions // 2)
            rows = []
            for size in sizes:
                mask = np.zeros(d, dtype=bool)
                mask[rng.choice(d, size=size, replace=False)] = True
                rows.append(mask)
                rows.append(~mask)
            masks = np.unique(np.array(rows, dtype=bool), axis=0)
            interior = (masks.sum(axis=1) > 0) & (masks.sum(axis=1) < d)
            masks = masks[interior]

        weights = np.array([_coalition_weight(d, int(m.sum())) for m in masks])
        values = np.vstack(
            [
                _marginalised_prediction(self.predict_fn, x, self.background, m)
                for m in masks
            ]
        )
        y = values - self.base_values_
        phi = _solve_weighted(masks.astype(np.float64), y, weights, total)
        if class_index is not None:
            return phi[:, class_index]
        return phi

    def shap_values_batch(
        self, X: np.ndarray, class_index: Optional[int] = None
    ) -> np.ndarray:
        """Explain many instances; stacks :meth:`shap_values` row-wise."""
        X = np.asarray(X, dtype=np.float64)
        return np.array([self.shap_values(x, class_index) for x in X])

    def mean_abs_importance(
        self, X: np.ndarray, class_index: int
    ) -> np.ndarray:
        """Global importance: mean |SHAP| per feature over a set of rows.

        This is the ranking the Fig. 7(a/b) before/after-evasion comparison
        is built from.
        """
        return np.abs(self.shap_values_batch(X, class_index)).mean(axis=0)
