"""Tabular LIME: local surrogate explanations via weighted ridge regression.

LIME "divides [the input] into multiple section areas and ranks each
accordingly to measure their contribution to the overall model prediction"
(§VIII).  For tabular data the sections are the features themselves: sample
perturbations around the instance, weight them by proximity, and fit a
sparse linear surrogate whose coefficients are the explanation.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

PredictFn = Callable[[np.ndarray], np.ndarray]


def _ridge_fit(
    Z: np.ndarray, y: np.ndarray, weights: np.ndarray, alpha: float
) -> np.ndarray:
    """Weighted ridge regression with intercept; returns (d+1,) coefs."""
    n, d = Z.shape
    Z1 = np.hstack([np.ones((n, 1)), Z])
    W = weights[:, None]
    A = Z1.T @ (W * Z1)
    A[1:, 1:] += alpha * np.eye(d)
    b = Z1.T @ (weights * y)
    return np.linalg.solve(A, b)


class LimeTabularExplainer:
    """LIME for tabular models.

    Parameters
    ----------
    predict_fn:
        Maps (n, d) inputs to (n, n_classes) probabilities.
    training_data:
        Reference data; per-feature scale for perturbation and
        standardisation is estimated from it.
    n_samples:
        Perturbations per explanation.
    kernel_width:
        Width of the RBF proximity kernel in standardised units
        (default ``0.75 * sqrt(d)``, LIME's own heuristic).
    seed:
        RNG seed for perturbation sampling.
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        training_data: np.ndarray,
        n_samples: int = 500,
        kernel_width: Optional[float] = None,
        alpha: float = 1.0,
        seed: int = 0,
    ) -> None:
        training_data = np.asarray(training_data, dtype=np.float64)
        if training_data.ndim != 2 or training_data.shape[0] < 2:
            raise ValueError("training_data must be 2-D with >= 2 rows")
        if n_samples < 10:
            raise ValueError("n_samples must be >= 10")
        self.predict_fn = predict_fn
        self.mean_ = training_data.mean(axis=0)
        scale = training_data.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        self.n_samples = n_samples
        d = training_data.shape[1]
        self.kernel_width = kernel_width or 0.75 * np.sqrt(d)
        self.alpha = alpha
        self.seed = seed

    def explain(
        self,
        x: np.ndarray,
        class_index: int,
        tracer=None,
        parent=None,
    ) -> np.ndarray:
        """Return (d,) surrogate coefficients for one instance and class.

        ``tracer``/``parent`` are duck-typed (``xai`` may not import the
        tracing package): when given, the fit runs inside an ``xai.lime``
        span timed by the tracer's injected clock.
        """
        if tracer is not None:
            with tracer.span("xai.lime", parent=parent) as span:
                span.set_attribute("n_samples", float(self.n_samples))
                return self._explain(x, class_index)
        return self._explain(x, class_index)

    def _explain(self, x: np.ndarray, class_index: int) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        if x.shape[0] != self.mean_.shape[0]:
            raise ValueError(
                f"instance has {x.shape[0]} features, expected {self.mean_.shape[0]}"
            )
        rng = np.random.default_rng(self.seed)
        # perturb in standardised space around the instance
        z_std = rng.normal(0.0, 1.0, size=(self.n_samples, x.shape[0]))
        Z = x + z_std * self.scale_
        Z[0] = x  # include the instance itself
        probs = np.asarray(self.predict_fn(Z))
        if probs.ndim == 1:
            y = probs
        else:
            y = probs[:, class_index]
        distances = np.linalg.norm((Z - x) / self.scale_, axis=1)
        weights = np.exp(-(distances**2) / (self.kernel_width**2))
        coefs = _ridge_fit((Z - self.mean_) / self.scale_, y, weights, self.alpha)
        return coefs[1:]

    def feature_ranking(self, x: np.ndarray, class_index: int) -> np.ndarray:
        """Indices of features sorted by |coefficient|, most important first."""
        return np.argsort(-np.abs(self.explain(x, class_index)))
