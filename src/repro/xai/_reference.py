"""Loop-based Kernel SHAP reference — the pre-vectorization implementation.

This module preserves, essentially verbatim, the per-coalition estimator
that ``repro.xai.shap`` replaced with the batched single-call engine.  It
exists for exactly two consumers:

* the equivalence property tests, which assert that the vectorized engine
  reproduces these numbers (same seed → same masks → matching attributions),
* ``benchmarks/bench_inference.py``, which measures the speedup against it.

It is deliberately slow — one model call per coalition — and must not be
used from production paths.  The ``predict-in-loop`` lint rule flags it;
the findings are baselined with this rationale.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.xai.shap import PredictFn


def _coalition_weight(d: int, size: int) -> float:
    """Shapley kernel weight for a coalition of ``size`` of ``d`` players."""
    if size == 0 or size == d:
        return 1e9  # enforced via near-infinite weight (standard trick)
    return (d - 1) / (math.comb(d, size) * size * (d - size))


def _marginalised_prediction(
    predict_fn: PredictFn,
    x: np.ndarray,
    background: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """E_b[f(x with masked-off features replaced by background rows)]."""
    tiled = np.array(background, copy=True)
    tiled[:, mask] = x[mask]
    return np.asarray(predict_fn(tiled)).mean(axis=0)


def _solve_weighted(
    Z: np.ndarray, y: np.ndarray, weights: np.ndarray, total: np.ndarray
) -> np.ndarray:
    """Constrained weighted least squares (single-instance loop variant)."""
    W = weights[:, None]
    A = Z.T @ (W * Z)
    A_inv = np.linalg.pinv(A)
    ones = np.ones(Z.shape[1])
    b = Z.T @ (W * y)
    denom = ones @ A_inv @ ones
    lam = (ones @ A_inv @ b - total) / denom
    return A_inv @ (b - np.outer(ones, lam))


def loop_shap_values(
    predict_fn: PredictFn,
    background: np.ndarray,
    x: np.ndarray,
    n_coalitions: int = 256,
    seed: int = 0,
    class_index: Optional[int] = None,
) -> np.ndarray:
    """One-instance Kernel SHAP, one model call per coalition (reference)."""
    background = np.asarray(background, dtype=np.float64)
    base_values = np.atleast_1d(np.asarray(predict_fn(background)).mean(axis=0))
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    d = x.shape[0]
    f_x = np.atleast_1d(np.asarray(predict_fn(x.reshape(1, -1)))[0])
    total = f_x - base_values

    rng = np.random.default_rng(seed)
    n_possible = 2**d - 2 if d < 30 else np.inf
    if n_possible <= n_coalitions:
        masks = np.array(
            [[(i >> j) & 1 for j in range(d)] for i in range(1, 2**d - 1)],
            dtype=bool,
        )
    else:
        # paired antithetic sampling over coalition sizes
        sizes = rng.integers(1, d, size=n_coalitions // 2)
        rows = []
        for size in sizes:
            mask = np.zeros(d, dtype=bool)
            mask[rng.choice(d, size=size, replace=False)] = True
            rows.append(mask)
            rows.append(~mask)
        masks = np.unique(np.array(rows, dtype=bool), axis=0)
        interior = (masks.sum(axis=1) > 0) & (masks.sum(axis=1) < d)
        masks = masks[interior]

    weights = np.array([_coalition_weight(d, int(m.sum())) for m in masks])
    values = np.vstack(
        [
            _marginalised_prediction(predict_fn, x, background, m)
            for m in masks
        ]
    )
    y = values - base_values
    phi = _solve_weighted(masks.astype(np.float64), y, weights, total)
    if class_index is not None:
        return phi[:, class_index]
    return phi


def loop_shap_values_batch(
    predict_fn: PredictFn,
    background: np.ndarray,
    X: np.ndarray,
    n_coalitions: int = 256,
    seed: int = 0,
    class_index: Optional[int] = None,
) -> np.ndarray:
    """Row-at-a-time batch explanation (the old ``shap_values_batch``)."""
    X = np.asarray(X, dtype=np.float64)
    return np.array(
        [
            loop_shap_values(
                predict_fn, background, x, n_coalitions, seed, class_index
            )
            for x in X
        ]
    )
