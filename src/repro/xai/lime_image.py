"""Image LIME on grid superpixels — the heavy workload of Experiment 2.

"When analyzing image-based samples, the analysis of methods, such as LIME,
SHAP and Occlusion sensitivity increases [in cost]" (§VI-B).  Image LIME
perturbs whole superpixels (here: grid patches), runs the classifier on
every perturbed image, and fits a weighted linear surrogate over patch
on/off indicators.  Its cost is ``n_samples`` full model evaluations on
images, which is why the Fig. 8(d) image-LIME micro-service saturates at
far lower concurrency than the tabular services.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.xai.lime import _ridge_fit

ImagePredictFn = Callable[[np.ndarray], np.ndarray]
# maps a batch of images (n, H, W) to class probabilities (n, n_classes)


def grid_superpixels(shape: Tuple[int, int], patch: int) -> np.ndarray:
    """Segment an H×W image into a grid; returns an int label map (H, W).

    Patches at the right/bottom edges absorb the remainder rows/columns so
    every pixel belongs to exactly one superpixel.
    """
    h, w = shape
    if patch < 1 or patch > min(h, w):
        raise ValueError(f"patch {patch} out of range for image {shape}")
    rows = h // patch
    cols = w // patch
    segments = np.empty((h, w), dtype=np.int64)
    for i in range(h):
        for j in range(w):
            r = min(i // patch, rows - 1)
            c = min(j // patch, cols - 1)
            segments[i, j] = r * cols + c
    return segments


class LimeImageExplainer:
    """LIME over superpixel masks.

    Parameters
    ----------
    predict_fn:
        Maps (n, H, W) image batches to (n, n_classes) probabilities.
    patch:
        Superpixel grid size in pixels.
    n_samples:
        Random masks evaluated per explanation (each costs one model call
        on a full image — the dominant expense).
    baseline:
        Value that fills masked-off superpixels (default: image mean).
    seed:
        RNG seed for mask sampling.
    """

    def __init__(
        self,
        predict_fn: ImagePredictFn,
        patch: int = 4,
        n_samples: int = 300,
        baseline: float = None,
        alpha: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_samples < 10:
            raise ValueError("n_samples must be >= 10")
        self.predict_fn = predict_fn
        self.patch = patch
        self.n_samples = n_samples
        self.baseline = baseline
        self.alpha = alpha
        self.seed = seed

    def explain(self, image: np.ndarray, class_index: int) -> np.ndarray:
        """Return per-superpixel weights (1-D, one per grid patch)."""
        image = np.asarray(image, dtype=np.float64)
        if image.ndim != 2:
            raise ValueError(f"expected a 2-D grayscale image, got {image.shape}")
        segments = grid_superpixels(image.shape, self.patch)
        n_segments = int(segments.max()) + 1
        fill = float(image.mean()) if self.baseline is None else self.baseline
        rng = np.random.default_rng(self.seed)

        masks = rng.random((self.n_samples, n_segments)) < 0.5
        masks[0] = True  # the unperturbed image anchors the surrogate
        batch = np.empty((self.n_samples, *image.shape))
        for k in range(self.n_samples):
            img = image.copy()
            off = ~masks[k]
            if off.any():
                img[np.isin(segments, np.flatnonzero(off))] = fill
            batch[k] = img
        probs = np.asarray(self.predict_fn(batch))
        y = probs[:, class_index] if probs.ndim == 2 else probs
        # proximity: fraction of superpixels kept
        kept = masks.mean(axis=1)
        weights = np.exp(-((1.0 - kept) ** 2) / 0.25)
        coefs = _ridge_fit(masks.astype(np.float64), y, weights, self.alpha)
        return coefs[1:]

    def heatmap(self, image: np.ndarray, class_index: int) -> np.ndarray:
        """Expand superpixel weights back to an (H, W) saliency map."""
        weights = self.explain(image, class_index)
        segments = grid_superpixels(np.asarray(image).shape, self.patch)
        return weights[segments]
