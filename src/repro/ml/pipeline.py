"""The staged AI pipeline of Fig. 4 — the unit SPATIAL instruments.

Fig. 4(a) shows the standard pipeline (data collection → data preparation →
labeling → training → evaluation → deployment); Fig. 4(b) augments it with
trustworthy-analysis steps and a human-feedback edge.  :class:`AIPipeline`
implements both: every stage exposes an instrumentation hook where AI sensors
attach, and operator feedback re-enters the pipeline by re-running from a
chosen stage (e.g. label sanitisation followed by retraining).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.ml.metrics import accuracy_score, f1_score, precision_score, recall_score
from repro.ml.model import Classifier, clone
from repro.ml.preprocessing import drop_duplicates, impute_missing, train_test_split


class StageKind(enum.Enum):
    """The six stages of the standard AI pipeline (Fig. 4a)."""

    DATA_COLLECTION = "data_collection"
    DATA_CLEANING = "data_cleaning"
    LABELING = "labeling"
    TRAINING = "training"
    EVALUATION = "evaluation"
    DEPLOYMENT = "deployment"


STAGE_ORDER: Tuple[StageKind, ...] = (
    StageKind.DATA_COLLECTION,
    StageKind.DATA_CLEANING,
    StageKind.LABELING,
    StageKind.TRAINING,
    StageKind.EVALUATION,
    StageKind.DEPLOYMENT,
)


@dataclass
class PipelineContext:
    """Mutable state threaded through the stages of one pipeline run."""

    X_raw: Optional[np.ndarray] = None
    y_raw: Optional[np.ndarray] = None
    X_clean: Optional[np.ndarray] = None
    y_clean: Optional[np.ndarray] = None
    X_train: Optional[np.ndarray] = None
    y_train: Optional[np.ndarray] = None
    X_test: Optional[np.ndarray] = None
    y_test: Optional[np.ndarray] = None
    model: Optional[Classifier] = None
    evaluation: Dict[str, float] = field(default_factory=dict)
    deployed: bool = False
    model_version: int = 0
    extras: Dict[str, Any] = field(default_factory=dict)


@dataclass
class PipelineStage:
    """A named stage plus the sensors hooked onto it."""

    kind: StageKind
    run: Callable[[PipelineContext], None]
    hooks: List[Callable[[StageKind, PipelineContext], None]] = field(
        default_factory=list
    )


@dataclass
class StageRecord:
    """Audit record of one stage execution (feeds accountability sensors)."""

    kind: StageKind
    duration_s: float
    model_version: int
    note: str = ""


class AIPipeline:
    """Standard ML pipeline with per-stage instrumentation hooks.

    Parameters
    ----------
    data_provider:
        Zero-argument callable returning ``(X, y)`` raw data.
    model_factory:
        Zero-argument callable building a fresh unfitted classifier.
    test_size / seed:
        Hold-out split configuration; the test split stays clean even when
        the training data is poisoned, matching the paper's procedure
        ("evaluated with the retained clean test data set").
    labeler:
        Optional callable ``(X, y) -> y`` applied at the labeling stage —
        this is where human annotation, label sanitisation, and label-level
        attacks plug in.
    """

    def __init__(
        self,
        data_provider: Callable[[], Tuple[np.ndarray, np.ndarray]],
        model_factory: Callable[[], Classifier],
        test_size: float = 0.25,
        seed: int = 0,
        labeler: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
        impute_strategy: str = "mean",
        deduplicate: bool = True,
    ) -> None:
        self.data_provider = data_provider
        self.model_factory = model_factory
        self.test_size = test_size
        self.seed = seed
        self.labeler = labeler
        self.impute_strategy = impute_strategy
        self.deduplicate = deduplicate
        self.context = PipelineContext()
        self.history: List[StageRecord] = []
        self._stages: Dict[StageKind, PipelineStage] = {
            StageKind.DATA_COLLECTION: PipelineStage(
                StageKind.DATA_COLLECTION, self._collect
            ),
            StageKind.DATA_CLEANING: PipelineStage(
                StageKind.DATA_CLEANING, self._clean
            ),
            StageKind.LABELING: PipelineStage(StageKind.LABELING, self._label),
            StageKind.TRAINING: PipelineStage(StageKind.TRAINING, self._train),
            StageKind.EVALUATION: PipelineStage(
                StageKind.EVALUATION, self._evaluate
            ),
            StageKind.DEPLOYMENT: PipelineStage(
                StageKind.DEPLOYMENT, self._deploy
            ),
        }

    # -- instrumentation ---------------------------------------------------

    def attach_hook(
        self,
        kind: StageKind,
        hook: Callable[[StageKind, PipelineContext], None],
    ) -> None:
        """Instrument a stage with an AI-sensor callback (Fig. 4b).

        Hooks run after the stage body with the stage kind and the live
        context; sensors use them to take measurements in place.
        """
        self._stages[kind].hooks.append(hook)

    def attach_hook_all_stages(
        self, hook: Callable[[StageKind, PipelineContext], None]
    ) -> None:
        """Instrument every stage — "sensors are required to be instrumented
        across the pipeline" (§IV)."""
        for kind in STAGE_ORDER:
            self._stages[kind].hooks.append(hook)

    # -- stage bodies --------------------------------------------------------

    def _collect(self, ctx: PipelineContext) -> None:
        X, y = self.data_provider()
        ctx.X_raw = np.asarray(X, dtype=np.float64)
        ctx.y_raw = np.asarray(y)

    def _clean(self, ctx: PipelineContext) -> None:
        if ctx.X_raw is None or ctx.y_raw is None:
            raise RuntimeError("cleaning stage reached without collected data")
        X = impute_missing(ctx.X_raw, strategy=self.impute_strategy)
        y = ctx.y_raw
        if self.deduplicate:
            X, y = drop_duplicates(X, y)
        ctx.X_clean, ctx.y_clean = X, y

    def _label(self, ctx: PipelineContext) -> None:
        if ctx.X_clean is None or ctx.y_clean is None:
            raise RuntimeError("labeling stage reached without cleaned data")
        if self.labeler is not None:
            ctx.y_clean = np.asarray(self.labeler(ctx.X_clean, ctx.y_clean))
        X_train, X_test, y_train, y_test = train_test_split(
            ctx.X_clean, ctx.y_clean, test_size=self.test_size, seed=self.seed
        )
        ctx.X_train, ctx.X_test = X_train, X_test
        ctx.y_train, ctx.y_test = y_train, y_test

    def _train(self, ctx: PipelineContext) -> None:
        if ctx.X_train is None or ctx.y_train is None:
            raise RuntimeError("training stage reached without labeled data")
        model = self.model_factory()
        model.fit(ctx.X_train, ctx.y_train)
        ctx.model = model
        ctx.model_version += 1

    def _evaluate(self, ctx: PipelineContext) -> None:
        if ctx.model is None or ctx.X_test is None or ctx.y_test is None:
            raise RuntimeError("evaluation stage reached without a trained model")
        y_pred = ctx.model.predict(ctx.X_test)
        ctx.evaluation = {
            "accuracy": accuracy_score(ctx.y_test, y_pred),
            "precision": precision_score(ctx.y_test, y_pred),
            "recall": recall_score(ctx.y_test, y_pred),
            "f1": f1_score(ctx.y_test, y_pred),
        }

    def _deploy(self, ctx: PipelineContext) -> None:
        if not ctx.evaluation:
            raise RuntimeError("deployment stage reached without evaluation")
        ctx.deployed = True

    # -- execution -----------------------------------------------------------

    def run(
        self,
        from_stage: StageKind = StageKind.DATA_COLLECTION,
        tracer=None,
        parent=None,
    ) -> PipelineContext:
        """Execute the pipeline from ``from_stage`` to deployment.

        Re-running from an intermediate stage is the human-feedback path of
        Fig. 4(b): e.g. after label sanitisation an operator restarts from
        ``LABELING`` without re-collecting data.

        ``tracer``/``parent`` are duck-typed (anything with the
        ``repro.tracing`` tracer interface): ``ml`` is a bottom-layer
        substrate that may not import the tracing package, so callers
        inject the tracer and each stage (body + sensor hooks) becomes a
        ``pipeline.<stage>`` span; a raising stage marks its span failed
        before propagating.
        """
        start_index = STAGE_ORDER.index(from_stage)
        for kind in STAGE_ORDER[start_index:]:
            stage = self._stages[kind]
            span = (
                None
                if tracer is None
                else tracer.start_span(f"pipeline.{kind.value}", parent=parent)
            )
            started = time.perf_counter()
            try:
                stage.run(self.context)
            except Exception as exc:
                if span is not None:
                    span.record_error(f"{type(exc).__name__}: {exc}").end()
                raise
            duration = time.perf_counter() - started
            self.history.append(
                StageRecord(
                    kind=kind,
                    duration_s=duration,
                    model_version=self.context.model_version,
                )
            )
            for hook in stage.hooks:
                hook(kind, self.context)
            if span is not None:
                span.set_attribute("duration_ms", duration * 1000.0)
                span.set_attribute(
                    "model_version", float(self.context.model_version)
                )
                span.end()
        return self.context

    def retrain(self) -> PipelineContext:
        """Operator action: rebuild the model on the current training data."""
        return self.run(from_stage=StageKind.TRAINING)

    def update_labeler(
        self, labeler: Callable[[np.ndarray, np.ndarray], np.ndarray]
    ) -> None:
        """Operator action: swap the labeling function (e.g. sanitiser)."""
        self.labeler = labeler

    def swap_model_factory(self, factory: Callable[[], Classifier]) -> None:
        """Operator action: change the learning algorithm (§VIII tuning)."""
        self.model_factory = factory

    @property
    def model(self) -> Optional[Classifier]:
        """The currently deployed (or last trained) model, if any."""
        return self.context.model

    def snapshot_model(self) -> Optional[Classifier]:
        """Return an unfitted clone of the current model's configuration."""
        if self.context.model is None:
            return None
        return clone(self.context.model)
