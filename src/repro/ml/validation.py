"""Model evaluation helpers: k-fold cross-validation and stratified splits.

The paper's standard pipeline evaluates models "e.g., using cross-validation";
these utilities implement that evaluation stage.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.ml.metrics import accuracy_score
from repro.ml.model import Classifier, clone


class KFold:
    """Deterministic k-fold splitter with optional shuffling."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (train_idx, test_idx) pairs covering every sample once."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            rng.shuffle(indices)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits)
        fold_sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test_idx = indices[start : start + size]
            train_idx = np.concatenate([indices[:start], indices[start + size :]])
            yield train_idx, test_idx
            start += size


def cross_val_score(
    model: Classifier,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    scorer: Optional[Callable[[np.ndarray, np.ndarray], float]] = None,
    seed: int = 0,
) -> List[float]:
    """Fit a fresh clone per fold and return the per-fold scores."""
    X = np.asarray(X)
    y = np.asarray(y)
    scorer = scorer or accuracy_score
    scores = []
    for train_idx, test_idx in KFold(n_splits, seed=seed).split(X.shape[0]):
        fold_model = clone(model)
        fold_model.fit(X[train_idx], y[train_idx])
        scores.append(float(scorer(y[test_idx], fold_model.predict(X[test_idx]))))
    return scores


def stratified_split(
    y: np.ndarray, test_size: float = 0.25, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Return (train_idx, test_idx) with per-class proportional sampling."""
    y = np.asarray(y)
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    rng = np.random.default_rng(seed)
    test_parts = []
    for label in np.unique(y):
        idx = np.flatnonzero(y == label)
        rng.shuffle(idx)
        n_test = int(round(len(idx) * test_size))
        if len(idx) >= 2:
            n_test = min(max(n_test, 1), len(idx) - 1)
        test_parts.append(idx[:n_test])
    test_idx = np.sort(np.concatenate(test_parts))
    mask = np.ones(len(y), dtype=bool)
    mask[test_idx] = False
    return np.flatnonzero(mask), test_idx
