"""Data-preparation utilities for the "data collection & cleaning" stage.

The paper's standard pipeline (Fig. 4a) starts by cleaning and preparing data
"using common methods to enhance its quality, e.g., missing data, removing
duplicates"; these helpers implement that stage plus the scaling/encoding the
models need.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class StandardScaler:
    """Per-feature standardisation to zero mean and unit variance.

    Constant features are left centred but un-scaled (divisor forced to 1) so
    transform never divides by zero.
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler used before fit()")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler used before fit()")
        X = np.asarray(X, dtype=np.float64)
        return X * self.scale_ + self.mean_


class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integer codes."""

    def __init__(self) -> None:
        self.classes_: Optional[np.ndarray] = None

    def fit(self, y: np.ndarray) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder used before fit()")
        y = np.asarray(y)
        codes = np.searchsorted(self.classes_, y)
        valid = (codes < len(self.classes_)) & (codes >= 0)
        if not np.all(valid) or not np.all(self.classes_[codes] == y):
            unknown = set(np.asarray(y).tolist()) - set(self.classes_.tolist())
            raise ValueError(f"unknown labels: {sorted(map(str, unknown))}")
        return codes

    def fit_transform(self, y: np.ndarray) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, codes: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder used before fit()")
        codes = np.asarray(codes)
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.classes_)):
            raise ValueError("codes outside the fitted label range")
        return self.classes_[codes]


def impute_missing(X: np.ndarray, strategy: str = "mean") -> np.ndarray:
    """Replace NaNs column-wise with the column mean, median or zero.

    Columns that are entirely NaN are filled with zero regardless of strategy.
    """
    X = np.array(X, dtype=np.float64, copy=True)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if strategy not in {"mean", "median", "zero"}:
        raise ValueError(f"unknown strategy {strategy!r}")
    for j in range(X.shape[1]):
        col = X[:, j]
        mask = np.isnan(col)
        if not mask.any():
            continue
        observed = col[~mask]
        if observed.size == 0 or strategy == "zero":
            fill = 0.0
        elif strategy == "mean":
            fill = float(observed.mean())
        else:
            fill = float(np.median(observed))
        col[mask] = fill
    return X


def drop_duplicates(
    X: np.ndarray, y: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Remove duplicate rows (first occurrence kept, original order preserved).

    When ``y`` is given, duplicates are keyed on the (row, label) pair so two
    identical feature rows with different labels are both retained.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    labels = None if y is None else np.asarray(y)
    n = X.shape[0]
    if n == 0:
        return X, labels
    if X.shape[1] == 0:
        # zero-width rows all compare equal: keep the first occurrence of
        # each label (or the single first row when unlabelled)
        if labels is None:
            keep_idx = np.zeros(1, dtype=np.int64)
            return X[keep_idx], None
        keep_idx = np.sort(np.unique(labels, return_index=True)[1])
        return X[keep_idx], labels[keep_idx]
    # bytewise row keys: a void view compares rows exactly as tobytes() did
    # (NaN and -0.0 stay distinct from each other and from 0.0)
    rows = np.ascontiguousarray(X).view(
        np.dtype((np.void, X.dtype.itemsize * X.shape[1]))
    ).reshape(n)
    if labels is None:
        keyed = rows
    else:
        # pair each row with its (integer-coded) label so identical feature
        # rows under different labels are both retained
        codes = np.unique(labels, return_inverse=True)[1].astype(np.int64)
        keyed = np.empty(n, dtype=[("row", rows.dtype), ("label", np.int64)])
        keyed["row"] = rows
        keyed["label"] = codes
    # unique's first-occurrence indices, re-sorted to the original row order
    __, first = np.unique(keyed, return_index=True)
    keep_idx = np.sort(first)
    if labels is None:
        return X[keep_idx], None
    return X[keep_idx], labels[keep_idx]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.25,
    stratify: bool = True,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle-split into train/test, stratified per class by default.

    Stratification guarantees every class with at least two samples appears in
    both splits, which the heavily skewed network-traffic dataset (304/34/44)
    needs to stay evaluable.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y disagree on sample count")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    rng = np.random.default_rng(seed)
    test_mask = np.zeros(X.shape[0], dtype=bool)
    if stratify:
        for label in np.unique(y):
            idx = np.flatnonzero(y == label)
            rng.shuffle(idx)
            n_test = int(round(len(idx) * test_size))
            if len(idx) >= 2:
                n_test = min(max(n_test, 1), len(idx) - 1)
            test_mask[idx[:n_test]] = True
    else:
        idx = rng.permutation(X.shape[0])
        n_test = max(1, int(round(X.shape[0] * test_size)))
        test_mask[idx[:n_test]] = True
    train_mask = ~test_mask
    return X[train_mask], X[test_mask], y[train_mask], y[test_mask]
