"""Model persistence: save/load fitted classifiers without pickle.

Deployments need to move models between the training pipeline and the
serving side (and auditors need artifacts they can archive); this module
serialises every supported model family to a single ``.npz`` file with a
JSON header — no arbitrary-code-execution surface, unlike pickle.

Supported: :class:`LogisticRegressionClassifier`, :class:`MLPClassifier`
/ :class:`DNNClassifier`, :class:`DecisionTreeClassifier`,
:class:`RandomForestClassifier`, :class:`GradientBoostedTreesClassifier`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.ml.flattree import FlatTree
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import GradientBoostedTreesClassifier
from repro.ml.linear import LogisticRegressionClassifier
from repro.ml.model import Classifier
from repro.ml.neural import DNNClassifier, MLPClassifier
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

_SUPPORTED = {
    "LogisticRegressionClassifier": LogisticRegressionClassifier,
    "MLPClassifier": MLPClassifier,
    "DNNClassifier": DNNClassifier,
    "DecisionTreeClassifier": DecisionTreeClassifier,
    "RandomForestClassifier": RandomForestClassifier,
    "GradientBoostedTreesClassifier": GradientBoostedTreesClassifier,
}


def _restore_tree(tree, arrays: dict, value_width: int) -> None:
    """Adopt persisted arrays as the tree's flat form (and node list).

    The flat arrays *are* the serialized layout, so loading is a dtype
    normalisation plus a value-width slice — no per-node reconstruction
    loop.  The ``nodes_`` list is rebuilt from the flat form because
    introspection (depth, leaf counts, split importances) reads it.
    """
    flat = FlatTree.from_arrays(
        feature=arrays["features"],
        threshold=arrays["thresholds"],
        left=arrays["lefts"],
        right=arrays["rights"],
        value=arrays["values"][:, :value_width],
        n_samples=arrays["counts"],
    )
    tree._flat = flat
    tree.nodes_ = flat.to_nodes()


def _tree_payload(prefix: str, tree, payload: dict) -> None:
    """Serialize one fitted tree: its flat arrays, keyed by ``prefix``."""
    flat = tree.flat_
    payload[f"{prefix}features"] = flat.feature
    payload[f"{prefix}thresholds"] = flat.threshold
    payload[f"{prefix}lefts"] = flat.left
    payload[f"{prefix}rights"] = flat.right
    payload[f"{prefix}counts"] = flat.n_samples
    payload[f"{prefix}values"] = flat.value


def _load_tree_arrays(prefix: str, data) -> dict:
    return {
        key: data[f"{prefix}{key}"]
        for key in ("features", "thresholds", "lefts", "rights", "counts", "values")
    }


def save_model(model: Classifier, path: Union[str, Path]) -> None:
    """Serialise a fitted model to ``path`` (``.npz``)."""
    name = type(model).__name__
    if name not in _SUPPORTED:
        raise TypeError(f"unsupported model type {name}")
    if not model.is_fitted:
        raise ValueError("cannot save an unfitted model")
    payload: dict = {"classes": model.classes_}
    header = {"type": name, "params": _jsonable(model.get_params())}

    if isinstance(model, (MLPClassifier, DNNClassifier)):
        for i, (W, b) in enumerate(zip(model.weights_, model.biases_)):
            payload[f"W{i}"] = W
            payload[f"b{i}"] = b
        header["n_layers"] = len(model.weights_)
    elif isinstance(model, LogisticRegressionClassifier):
        payload["weights"] = model.weights_
        payload["bias"] = model.bias_
    elif isinstance(model, DecisionTreeClassifier):
        _tree_payload("tree_", model, payload)
        header["n_features"] = model.n_features_
    elif isinstance(model, RandomForestClassifier):
        header["n_trees"] = len(model.trees_)
        header["n_features"] = model.trees_[0].n_features_
        for t, tree in enumerate(model.trees_):
            _tree_payload(f"t{t}_", tree, payload)
            payload[f"t{t}_classes"] = tree.classes_
    elif isinstance(model, GradientBoostedTreesClassifier):
        header["n_rounds"] = len(model.trees_)
        header["n_classes"] = len(model.classes_)
        payload["base_score"] = model.base_score_
        for r, round_trees in enumerate(model.trees_):
            for c, tree in enumerate(round_trees):
                _tree_payload(f"r{r}c{c}_", tree, payload)
    payload["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **payload)


def _jsonable(params: dict) -> dict:
    out = {}
    for key, value in params.items():
        if isinstance(value, (list, tuple)):
            out[key] = list(value)
        elif isinstance(value, (int, float, str, bool)) or value is None:
            out[key] = value
        # non-JSON params (callables etc.) are dropped; defaults apply on load
    return out


def load_model(path: Union[str, Path]) -> Classifier:
    """Load a model saved by :func:`save_model`."""
    with np.load(Path(path), allow_pickle=False) as data:
        header = json.loads(bytes(data["__header__"].tobytes()).decode("utf-8"))
        name = header["type"]
        if name not in _SUPPORTED:
            raise TypeError(f"unsupported model type {name}")
        params = header.get("params", {})
        if "hidden_layers" in params:
            params["hidden_layers"] = tuple(params["hidden_layers"])
        model = _SUPPORTED[name](**params)
        classes = data["classes"]

        if isinstance(model, (MLPClassifier, DNNClassifier)):
            model.classes_ = classes
            model.weights_ = [data[f"W{i}"] for i in range(header["n_layers"])]
            model.biases_ = [data[f"b{i}"] for i in range(header["n_layers"])]
        elif isinstance(model, LogisticRegressionClassifier):
            model.classes_ = classes
            model.weights_ = data["weights"]
            model.bias_ = data["bias"]
        elif isinstance(model, DecisionTreeClassifier):
            model.classes_ = classes
            model.n_features_ = header["n_features"]
            _restore_tree(model, _load_tree_arrays("tree_", data), len(classes))
        elif isinstance(model, RandomForestClassifier):
            model.classes_ = classes
            model.trees_ = []
            for t in range(header["n_trees"]):
                tree = DecisionTreeClassifier()
                tree.classes_ = data[f"t{t}_classes"]
                tree.n_features_ = header["n_features"]
                _restore_tree(tree, _load_tree_arrays(f"t{t}_", data), len(tree.classes_))
                model.trees_.append(tree)
        elif isinstance(model, GradientBoostedTreesClassifier):
            model.classes_ = classes
            model.base_score_ = data["base_score"]
            model.trees_ = []
            for r in range(header["n_rounds"]):
                round_trees = []
                for c in range(header["n_classes"]):
                    tree = DecisionTreeRegressor()
                    _restore_tree(tree, _load_tree_arrays(f"r{r}c{c}_", data), 1)
                    round_trees.append(tree)
                model.trees_.append(round_trees)
        return model
