"""Feed-forward neural networks (the paper's MLP, DNN and "NN" models).

Implements full backpropagation over dense ReLU layers with a softmax
cross-entropy head, plus **analytic input gradients** — the capability the
white-box FGSM attack of use case 2 needs ("adding a small amount in the
direction of the gradient of the loss function with respect to the input").
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.linear import softmax
from repro.ml.model import Classifier, check_Xy, encode_labels, one_hot


def relu(z: np.ndarray) -> np.ndarray:
    """Element-wise rectified linear unit."""
    return np.maximum(z, 0.0)


class MLPClassifier(Classifier):
    """Multi-layer perceptron trained with mini-batch Adam.

    Parameters
    ----------
    hidden_layers:
        Units per hidden layer, e.g. ``(64, 32)``.
    learning_rate / n_epochs / batch_size:
        Adam step size and training schedule.
    l2:
        Weight decay applied to all weight matrices (not biases).
    seed:
        RNG seed for initialisation and shuffling.
    """

    def __init__(
        self,
        hidden_layers: Sequence[int] = (64, 32),
        learning_rate: float = 1e-3,
        n_epochs: int = 60,
        batch_size: int = 64,
        l2: float = 1e-5,
        seed: int = 0,
    ) -> None:
        self._record_params(locals())
        if any(h <= 0 for h in hidden_layers):
            raise ValueError("hidden layer sizes must be positive")
        self.hidden_layers = tuple(hidden_layers)
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self.weights_: List[np.ndarray] = []
        self.biases_: List[np.ndarray] = []
        self.classes_ = np.empty(0)

    # -- forward/backward -------------------------------------------------

    def _forward(self, X: np.ndarray) -> Tuple[List[np.ndarray], np.ndarray]:
        """Return (pre-activation list per layer, output probabilities)."""
        activations = [X]
        pre_acts: List[np.ndarray] = []
        a = X
        for i, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            z = a @ W + b
            pre_acts.append(z)
            a = z if i == len(self.weights_) - 1 else relu(z)
            activations.append(a)
        self._activations = activations
        return pre_acts, softmax(activations[-1])

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X, y = check_Xy(X, y)
        self.classes_, y_idx = encode_labels(y)
        n_samples, n_features = X.shape
        n_classes = len(self.classes_)
        targets = one_hot(y_idx, n_classes)
        rng = np.random.default_rng(self.seed)

        sizes = [n_features, *self.hidden_layers, n_classes]
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(2.0 / fan_in)  # He initialisation for ReLU
            self.weights_.append(rng.normal(0.0, limit, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

        # Adam state
        m_w = [np.zeros_like(W) for W in self.weights_]
        v_w = [np.zeros_like(W) for W in self.weights_]
        m_b = [np.zeros_like(b) for b in self.biases_]
        v_b = [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        batch = min(max(1, self.batch_size), n_samples)
        for __ in range(self.n_epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, batch):
                idx = order[start : start + batch]
                xb, tb = X[idx], targets[idx]
                pre_acts, probs = self._forward(xb)
                acts = self._activations
                delta = (probs - tb) / len(idx)
                grads_w: List[np.ndarray] = [None] * len(self.weights_)
                grads_b: List[np.ndarray] = [None] * len(self.biases_)
                for layer in range(len(self.weights_) - 1, -1, -1):
                    grads_w[layer] = acts[layer].T @ delta + self.l2 * self.weights_[layer]
                    grads_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self.weights_[layer].T) * (
                            pre_acts[layer - 1] > 0
                        )
                step += 1
                lr_t = (
                    self.learning_rate
                    * np.sqrt(1 - beta2**step)
                    / (1 - beta1**step)
                )
                for layer in range(len(self.weights_)):
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grads_w[layer]
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * grads_w[layer] ** 2
                    self.weights_[layer] -= lr_t * m_w[layer] / (
                        np.sqrt(v_w[layer]) + eps
                    )
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grads_b[layer]
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * grads_b[layer] ** 2
                    self.biases_[layer] -= lr_t * m_b[layer] / (
                        np.sqrt(v_b[layer]) + eps
                    )
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.weights_:
            raise RuntimeError("model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        __, probs = self._forward(X)
        return probs

    # -- parameter access & incremental training (federated learning) ------

    def get_parameters(self) -> List[np.ndarray]:
        """Flat parameter list [W0, b0, W1, b1, ...] (copies)."""
        if not self.weights_:
            raise RuntimeError("model used before fit()/initialize()")
        params: List[np.ndarray] = []
        for W, b in zip(self.weights_, self.biases_):
            params.append(W.copy())
            params.append(b.copy())
        return params

    def set_parameters(self, params: List[np.ndarray]) -> None:
        """Install parameters produced by :meth:`get_parameters`."""
        if len(params) != 2 * len(self.weights_) or not self.weights_:
            raise ValueError(
                "parameter list does not match the network topology; "
                "initialize the model first"
            )
        for layer in range(len(self.weights_)):
            W, b = params[2 * layer], params[2 * layer + 1]
            if W.shape != self.weights_[layer].shape or (
                b.shape != self.biases_[layer].shape
            ):
                raise ValueError(f"shape mismatch at layer {layer}")
            self.weights_[layer] = W.copy()
            self.biases_[layer] = b.copy()

    def initialize(self, n_features: int, classes: np.ndarray) -> "MLPClassifier":
        """Set up topology and random weights without training.

        Federated training needs a global model whose parameters exist
        before any data has been seen; the class set must be known up front
        so every client's updates align.
        """
        classes = np.asarray(classes)
        if classes.ndim != 1 or len(classes) < 2:
            raise ValueError("need at least two classes")
        self.classes_ = np.unique(classes)
        rng = np.random.default_rng(self.seed)
        sizes = [n_features, *self.hidden_layers, len(self.classes_)]
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(2.0 / fan_in)
            self.weights_.append(rng.normal(0.0, limit, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))
        return self

    def partial_fit(
        self, X: np.ndarray, y: np.ndarray, n_epochs: int = 1
    ) -> "MLPClassifier":
        """Continue training from the current weights with plain SGD.

        Used for the local-update step of federated learning — unlike
        :meth:`fit` it neither reinitialises the weights nor changes the
        class set (labels outside ``classes_`` raise).
        """
        if not self.weights_:
            raise RuntimeError("partial_fit needs initialize() or fit() first")
        X, y = check_Xy(X, y)
        class_index = {c: i for i, c in enumerate(self.classes_.tolist())}
        try:
            y_idx = np.array([class_index[label] for label in y.tolist()])
        except KeyError as exc:
            raise ValueError(f"unknown class {exc.args[0]!r}") from exc
        targets = one_hot(y_idx, len(self.classes_))
        rng = np.random.default_rng(self.seed + 1)
        batch = min(max(1, self.batch_size), X.shape[0])
        lr = self.learning_rate * 10.0  # plain SGD needs a larger step than Adam
        for __ in range(max(1, n_epochs)):
            order = rng.permutation(X.shape[0])
            for start in range(0, X.shape[0], batch):
                idx = order[start : start + batch]
                pre_acts, probs = self._forward(X[idx])
                acts = self._activations
                delta = (probs - targets[idx]) / len(idx)
                for layer in range(len(self.weights_) - 1, -1, -1):
                    grad_w = acts[layer].T @ delta + self.l2 * self.weights_[layer]
                    grad_b = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self.weights_[layer].T) * (
                            pre_acts[layer - 1] > 0
                        )
                    self.weights_[layer] -= lr * grad_w
                    self.biases_[layer] -= lr * grad_b
        return self

    def input_gradient(
        self, x: np.ndarray, target_class: Optional[int] = None
    ) -> np.ndarray:
        """Gradient of cross-entropy loss w.r.t. the input row(s).

        ``target_class`` defaults to the model's own prediction per row (the
        standard untargeted FGSM formulation).  Accepts a single row or a
        batch and returns gradients of the same shape.
        """
        if not self.weights_:
            raise RuntimeError("model used before fit()")
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        xb = x.reshape(1, -1) if single else x
        pre_acts, probs = self._forward(xb)
        if target_class is None:
            target_idx = np.argmax(probs, axis=1)
        else:
            target_idx = np.full(xb.shape[0], int(target_class))
        targets = one_hot(target_idx, probs.shape[1])
        delta = probs - targets
        for layer in range(len(self.weights_) - 1, 0, -1):
            delta = (delta @ self.weights_[layer].T) * (pre_acts[layer - 1] > 0)
        grad = delta @ self.weights_[0].T
        return grad[0] if single else grad


class DNNClassifier(MLPClassifier):
    """Deeper MLP preset — the paper's "DNN" model.

    Identical machinery to :class:`MLPClassifier` with a deeper default
    topology, mirroring how the paper distinguishes its MLP and DNN entries.
    """

    def __init__(
        self,
        hidden_layers: Sequence[int] = (128, 64, 32),
        learning_rate: float = 1e-3,
        n_epochs: int = 80,
        batch_size: int = 64,
        l2: float = 1e-5,
        seed: int = 0,
    ) -> None:
        super().__init__(
            hidden_layers=hidden_layers,
            learning_rate=learning_rate,
            n_epochs=n_epochs,
            batch_size=batch_size,
            l2=l2,
            seed=seed,
        )
        self._record_params(locals())
