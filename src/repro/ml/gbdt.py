"""Gradient-boosted decision trees — the LightGBM / XGBoost stand-ins.

Use case 2 trains "NN, LightGBM and XGBoost" classifiers on the network
traffic dataset.  Offline we cannot ship those libraries, so this module
provides a single boosted-trees implementation with two presets that mirror
the libraries' main algorithmic split:

* ``lightgbm_like()`` — leaf-wise (best-first) tree growth with a leaf cap,
* ``xgboost_like()``  — level-wise growth with L2-regularised Newton leaves.

Both optimise multi-class softmax cross-entropy with one regression tree per
class per round, exactly the scheme the real libraries use.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.flattree import FlatForest
from repro.ml.linear import softmax
from repro.ml.model import Classifier, check_Xy, encode_labels, one_hot
from repro.ml.tree import DecisionTreeRegressor


class GradientBoostedTreesClassifier(Classifier):
    """Multi-class gradient boosting over regression trees.

    Parameters
    ----------
    n_estimators:
        Boosting rounds (each round fits one tree per class).
    learning_rate:
        Shrinkage applied to every tree's contribution.
    max_depth:
        Depth cap of each weak learner.
    max_leaves:
        Leaf cap used when ``growth == "leaf"`` (LightGBM-style).
    growth:
        ``"level"`` (XGBoost-style) or ``"leaf"`` (LightGBM-style).
    l2:
        L2 regularisation on leaf values (Newton denominator).
    subsample:
        Row-sampling fraction per round (stochastic gradient boosting).
    min_samples_leaf:
        Minimum rows per leaf in the weak learners.
    seed:
        RNG seed for row subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 40,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        max_leaves: Optional[int] = None,
        growth: str = "level",
        l2: float = 1.0,
        subsample: float = 1.0,
        min_samples_leaf: int = 5,
        seed: int = 0,
    ) -> None:
        self._record_params(locals())
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if growth not in {"level", "leaf"}:
            raise ValueError(f"unknown growth {growth!r}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.max_leaves = max_leaves
        self.growth = growth
        self.l2 = l2
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.classes_ = np.empty(0)
        self.trees_: List[List[DecisionTreeRegressor]] = []
        self.base_score_: Optional[np.ndarray] = None
        self._flat_forest: Optional[FlatForest] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTreesClassifier":
        X, y = check_Xy(X, y)
        self.classes_, y_idx = encode_labels(y)
        n_samples = X.shape[0]
        n_classes = len(self.classes_)
        targets = one_hot(y_idx, n_classes)
        # log-prior initial scores keep skewed datasets (304/34/44) calibrated
        prior = np.clip(targets.mean(axis=0), 1e-6, None)
        self.base_score_ = np.log(prior)
        scores = np.tile(self.base_score_, (n_samples, 1))
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        self._flat_forest = None
        for __ in range(self.n_estimators):
            probs = softmax(scores)
            gradients = targets - probs  # negative gradient of CE loss
            hessians = probs * (1.0 - probs)
            if self.subsample < 1.0:
                n_sub = max(2 * self.min_samples_leaf, int(n_samples * self.subsample))
                rows = rng.choice(n_samples, size=min(n_sub, n_samples), replace=False)
            else:
                rows = np.arange(n_samples)
            round_trees: List[DecisionTreeRegressor] = []
            for c in range(n_classes):
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    max_leaves=self.max_leaves,
                    growth=self.growth,
                    l2=self.l2,
                )
                tree.fit(X[rows], gradients[rows, c], hessians[rows, c])
                scores[:, c] += self.learning_rate * tree.predict(X)
                round_trees.append(tree)
            self.trees_.append(round_trees)
        return self

    @property
    def flat_forest_(self) -> FlatForest:
        """Every weak learner in one compiled arena (lazy, cached).

        Trees enter in round-major / class-minor order with leaf values
        pre-scaled by the learning rate and mapped into their class
        column, so arena accumulation reproduces the reference's
        ``scores[:, c] += lr * tree.predict(X)`` additions exactly.
        """
        if not self.trees_:
            raise RuntimeError("model used before fit()")
        n_weak = sum(len(r) for r in self.trees_)
        if self._flat_forest is None or self._flat_forest.n_trees != n_weak:
            flats, columns, scales = [], [], []
            for round_trees in self.trees_:
                for c, tree in enumerate(round_trees):
                    flats.append(tree.flat_)
                    columns.append(np.array([c]))
                    scales.append(self.learning_rate)
            self._flat_forest = FlatForest.from_trees(
                flats,
                width=len(self.trees_[0]),
                columns=columns,
                scales=scales,
            )
        return self._flat_forest

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw additive scores per class before the softmax link.

        All weak learners traverse at once through the flat arena kernel;
        the accumulation order (round-major, class-minor, starting from
        the base score) matches the recursive reference bit for bit.
        """
        if not self.trees_ or self.base_score_ is None:
            raise RuntimeError("model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        scores = np.tile(self.base_score_, (X.shape[0], 1))
        return self.flat_forest_.accumulate(X, scores)

    def decision_function_recursive(self, X: np.ndarray) -> np.ndarray:
        """Per-node recursive reference path (equivalence oracle / bench)."""
        if not self.trees_ or self.base_score_ is None:
            raise RuntimeError("model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        scores = np.tile(self.base_score_, (X.shape[0], 1))
        for round_trees in self.trees_:
            for c, tree in enumerate(round_trees):
                scores[:, c] += self.learning_rate * tree.predict_recursive(X)
        return scores

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return softmax(self.decision_function(X))

    @property
    def n_trees(self) -> int:
        """Total weak learners across all rounds and classes."""
        return sum(len(r) for r in self.trees_)


def lightgbm_like(
    n_estimators: int = 40,
    learning_rate: float = 0.2,
    max_leaves: int = 15,
    seed: int = 0,
    **kwargs,
) -> GradientBoostedTreesClassifier:
    """LightGBM-flavoured preset: leaf-wise growth, leaf-count cap."""
    return GradientBoostedTreesClassifier(
        n_estimators=n_estimators,
        learning_rate=learning_rate,
        max_depth=8,
        max_leaves=max_leaves,
        growth="leaf",
        l2=0.5,
        seed=seed,
        **kwargs,
    )


def xgboost_like(
    n_estimators: int = 40,
    learning_rate: float = 0.2,
    max_depth: int = 4,
    seed: int = 0,
    **kwargs,
) -> GradientBoostedTreesClassifier:
    """XGBoost-flavoured preset: level-wise growth, stronger L2."""
    return GradientBoostedTreesClassifier(
        n_estimators=n_estimators,
        learning_rate=learning_rate,
        max_depth=max_depth,
        growth="level",
        l2=1.0,
        seed=seed,
        **kwargs,
    )
