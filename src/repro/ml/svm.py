"""Linear support vector machine (hinge loss, one-vs-rest).

§III names SVM among the algorithms a pipeline may select ("e.g., Random
Forrest, Support Vector Machine"), and Fig. 1 carries an SVM row in the
attack taxonomy (evasion by James et al., poisoning defences by
Weerasinghe et al.).  This implementation is a primal linear SVM trained
with sub-gradient descent on the hinge loss plus L2 regularisation, wrapped
one-vs-rest for multi-class problems.  Probabilities come from a softmax
over margins (Platt-style calibration is overkill for the sensor use).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.linear import softmax
from repro.ml.model import Classifier, check_Xy, encode_labels


class SVMClassifier(Classifier):
    """One-vs-rest linear SVM.

    Parameters
    ----------
    learning_rate:
        Sub-gradient step size (decayed as 1/sqrt(t)).
    n_epochs:
        Passes over the training data.
    c:
        Inverse regularisation strength (larger = harder margin).
    batch_size:
        Mini-batch size for the sub-gradient steps.
    seed:
        RNG seed for shuffling and initialisation.
    """

    def __init__(
        self,
        learning_rate: float = 0.05,
        n_epochs: int = 40,
        c: float = 1.0,
        batch_size: int = 64,
        seed: int = 0,
    ) -> None:
        self._record_params(locals())
        if learning_rate <= 0 or n_epochs <= 0 or c <= 0:
            raise ValueError("learning_rate, n_epochs and c must be positive")
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.c = c
        self.batch_size = batch_size
        self.seed = seed
        self.weights_: Optional[np.ndarray] = None  # (n_features, n_classes)
        self.bias_: Optional[np.ndarray] = None
        self.classes_ = np.empty(0)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVMClassifier":
        X, y = check_Xy(X, y)
        self.classes_, y_idx = encode_labels(y)
        n_samples, n_features = X.shape
        n_classes = len(self.classes_)
        # one-vs-rest targets in {-1, +1}
        targets = -np.ones((n_samples, n_classes))
        targets[np.arange(n_samples), y_idx] = 1.0
        rng = np.random.default_rng(self.seed)
        self.weights_ = rng.normal(0.0, 0.01, size=(n_features, n_classes))
        self.bias_ = np.zeros(n_classes)
        lam = 1.0 / (self.c * n_samples)
        batch = min(max(1, self.batch_size), n_samples)
        step = 0
        for __ in range(self.n_epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, batch):
                idx = order[start : start + batch]
                step += 1
                eta = self.learning_rate / np.sqrt(step)
                margins = (X[idx] @ self.weights_ + self.bias_) * targets[idx]
                violating = margins < 1.0  # hinge active
                # sub-gradient: -y*x on violators, plus L2 on weights
                grad_w = lam * self.weights_ - (
                    X[idx].T @ (targets[idx] * violating)
                ) / len(idx)
                grad_b = -(targets[idx] * violating).mean(axis=0)
                self.weights_ -= eta * grad_w
                self.bias_ -= eta * grad_b
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Per-class margins (one-vs-rest)."""
        if self.weights_ is None or self.bias_ is None:
            raise RuntimeError("model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.weights_ + self.bias_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return softmax(self.decision_function(X))

    def input_gradient(self, x: np.ndarray, target_class: int) -> np.ndarray:
        """Gradient of the softmax-margin cross-entropy w.r.t. one input —
        linear SVMs are white-box evadable too (Fig. 1's SVM row)."""
        if self.weights_ is None:
            raise RuntimeError("model used before fit()")
        x = np.asarray(x, dtype=np.float64).reshape(1, -1)
        probs = softmax(self.decision_function(x))[0]
        grad_margin = probs.copy()
        grad_margin[target_class] -= 1.0
        return self.weights_ @ grad_margin

    @property
    def support_fraction(self) -> Optional[float]:
        """Not tracked for the primal solver; present for API clarity."""
        return None
