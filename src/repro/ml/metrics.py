"""Classification metrics used by the performance sensor and every benchmark.

The paper reports accuracy, precision and recall for both use cases
(Fig. 6(a) i-iii and the use-case-2 baselines) and uses metric drift as the
"impact" signal for poisoning attacks, so these implementations are the
measurement backbone of the reproduction.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true shape {y_true.shape} != y_pred shape {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("cannot score empty label arrays")
    return y_true, y_pred


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly-matching predictions."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    labels: Optional[Sequence] = None,
) -> np.ndarray:
    """Return matrix C where C[i, j] counts true label i predicted as j."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    n = len(labels)
    cm = np.zeros((n, n), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        if t in index and p in index:
            cm[index[t], index[p]] += 1
    return cm


def _per_class_prf(
    y_true: np.ndarray, y_pred: np.ndarray, labels: Optional[Sequence] = None
) -> tuple:
    """Return (labels, precision[], recall[], support[]) per class."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    cm = confusion_matrix(y_true, y_pred, labels)
    tp = np.diag(cm).astype(np.float64)
    predicted = cm.sum(axis=0).astype(np.float64)
    actual = cm.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, tp / predicted, 0.0)
        recall = np.where(actual > 0, tp / actual, 0.0)
    return labels, precision, recall, actual


def _average(values: np.ndarray, support: np.ndarray, average: str) -> float:
    if average == "macro":
        return float(np.mean(values))
    if average == "weighted":
        total = support.sum()
        if total == 0:
            return 0.0
        return float(np.sum(values * support) / total)
    raise ValueError(f"unknown average {average!r}; use 'macro' or 'weighted'")


def precision_score(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    average: str = "macro",
    labels: Optional[Sequence] = None,
) -> float:
    """Averaged per-class precision (macro or support-weighted)."""
    __, precision, __, support = _per_class_prf(y_true, y_pred, labels)
    return _average(precision, support, average)


def recall_score(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    average: str = "macro",
    labels: Optional[Sequence] = None,
) -> float:
    """Averaged per-class recall (macro or support-weighted)."""
    __, __, recall, support = _per_class_prf(y_true, y_pred, labels)
    return _average(recall, support, average)


def f1_score(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    average: str = "macro",
    labels: Optional[Sequence] = None,
) -> float:
    """Averaged per-class F1 (harmonic mean of precision and recall)."""
    __, precision, recall, support = _per_class_prf(y_true, y_pred, labels)
    with np.errstate(divide="ignore", invalid="ignore"):
        denom = precision + recall
        f1 = np.where(denom > 0, 2.0 * precision * recall / denom, 0.0)
    return _average(f1, support, average)


def classification_report(
    y_true: np.ndarray, y_pred: np.ndarray
) -> Dict[str, Dict[str, float]]:
    """Per-class precision/recall/F1/support plus macro and weighted rows."""
    labels, precision, recall, support = _per_class_prf(y_true, y_pred)
    with np.errstate(divide="ignore", invalid="ignore"):
        denom = precision + recall
        f1 = np.where(denom > 0, 2.0 * precision * recall / denom, 0.0)
    report: Dict[str, Dict[str, float]] = {}
    for i, label in enumerate(labels.tolist()):
        report[str(label)] = {
            "precision": float(precision[i]),
            "recall": float(recall[i]),
            "f1": float(f1[i]),
            "support": float(support[i]),
        }
    for avg in ("macro", "weighted"):
        report[avg] = {
            "precision": _average(precision, support, avg),
            "recall": _average(recall, support, avg),
            "f1": _average(f1, support, avg),
            "support": float(support.sum()),
        }
    report["accuracy"] = {
        "precision": accuracy_score(y_true, y_pred),
        "recall": accuracy_score(y_true, y_pred),
        "f1": accuracy_score(y_true, y_pred),
        "support": float(support.sum()),
    }
    return report


def performance_drift(
    baseline: Dict[str, float], current: Dict[str, float]
) -> Dict[str, float]:
    """Per-metric drop relative to a baseline snapshot (positive = degraded).

    This is the quantity the paper's poisoning "impact" metric is built on:
    the drift of any performance metric of the model after an attack.
    """
    drift = {}
    for name, base_value in baseline.items():
        if name in current:
            drift[name] = float(base_value - current[name])
    return drift
