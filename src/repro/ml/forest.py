"""Random forest: bagged CART trees with per-node feature subsampling.

The paper singles out the random forest as the model most resilient to label
flipping (holding ~93 % accuracy at a 30 % poison rate).  That robustness
comes from bootstrap aggregation — each tree sees a different noisy resample
and the majority vote averages the corrupted minority out — and this
implementation reproduces exactly that mechanism.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.flattree import FlatForest
from repro.ml.model import Classifier, check_Xy, encode_labels
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier(Classifier):
    """Bootstrap-aggregated decision trees with soft (probability) voting.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth / min_samples_leaf / criterion:
        Passed through to each tree.
    max_features:
        Features sampled per node; ``None`` means ``round(sqrt(n_features))``.
    bootstrap:
        Draw each tree's training set with replacement (n samples).
    seed:
        Seeds the per-tree bootstraps and feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        criterion: str = "gini",
        max_features: Optional[int] = None,
        bootstrap: bool = True,
        seed: int = 0,
    ) -> None:
        self._record_params(locals())
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.criterion = criterion
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self.trees_: List[DecisionTreeClassifier] = []
        self.classes_ = np.empty(0)
        self._flat_forest: Optional[FlatForest] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = check_Xy(X, y)
        self.classes_, y_idx = encode_labels(y)
        n_samples, n_features = X.shape
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(round(np.sqrt(n_features))))
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        self._flat_forest = None
        for t in range(self.n_estimators):
            if self.bootstrap:
                idx = rng.integers(0, n_samples, size=n_samples)
            else:
                idx = np.arange(n_samples)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                criterion=self.criterion,
                max_features=max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            # Trees index into the forest's class set so votes always align,
            # even when a bootstrap misses a rare class.
            tree.fit(X[idx], y_idx[idx])
            self.trees_.append(tree)
        return self

    @property
    def flat_forest_(self) -> FlatForest:
        """All trees as one compiled arena (built lazily, cached)."""
        if not self.trees_:
            raise RuntimeError("model used before fit()")
        if (
            self._flat_forest is None
            or self._flat_forest.n_trees != len(self.trees_)
        ):
            self._flat_forest = FlatForest.from_trees(
                [tree.flat_ for tree in self.trees_],
                width=len(self.classes_),
                # map each tree's (integer-coded) classes into forest columns
                columns=[tree.classes_.astype(int) for tree in self.trees_],
            )
        return self._flat_forest

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Soft vote through the flat arena kernel.

        All trees traverse simultaneously via :class:`~repro.ml.flattree
        .FlatForest` (one state matrix, ``max_depth`` wide gather steps);
        the accumulation stays *sequential* per tree — with zeros in the
        class columns a bootstrap never saw — so the float summation
        order, and therefore the output bit for bit, matches the
        recursive reference.
        """
        if not self.trees_:
            raise RuntimeError("model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        total = np.zeros((X.shape[0], len(self.classes_)))
        self.flat_forest_.accumulate(X, total)
        return total / len(self.trees_)

    def predict_proba_recursive(self, X: np.ndarray) -> np.ndarray:
        """Per-node recursive reference path (equivalence oracle / bench)."""
        if not self.trees_:
            raise RuntimeError("model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        n_classes = len(self.classes_)
        total = np.zeros((X.shape[0], n_classes))
        for tree in self.trees_:
            proba = tree.predict_proba_recursive(X)
            cols = tree.classes_.astype(int)
            total[:, cols] += proba
        return total / len(self.trees_)

    def feature_importances(self) -> np.ndarray:
        """Mean split-frequency importance across trees (sums to 1)."""
        if not self.trees_:
            raise RuntimeError("model used before fit()")
        n_features = self.trees_[0].n_features_
        counts = np.zeros(n_features)
        for tree in self.trees_:
            for node in tree.nodes_:
                if not node.is_leaf:
                    counts[node.feature] += node.n_samples
        total = counts.sum()
        return counts / total if total > 0 else counts
