"""CART decision tree with vectorised split search.

The tree serves three roles in the reproduction: the DT model of use case 1,
the base learner of the random forest, and (as a regression variant) the weak
learner inside the gradient-boosted ensembles standing in for
LightGBM/XGBoost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.ml.flattree import FlatTree, _Node
from repro.ml.model import Classifier, check_Xy, encode_labels


def _gini_from_counts(counts: np.ndarray, total: float) -> float:
    if total <= 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


def _entropy_from_counts(counts: np.ndarray, total: float) -> float:
    if total <= 0:
        return 0.0
    p = counts / total
    p = p[p > 0]
    return float(-np.sum(p * np.log2(p)))


@dataclass
class _SplitResult:
    feature: int
    threshold: float
    gain: float
    left_mask: np.ndarray = field(repr=False, default=None)


def _best_split_classification(
    X: np.ndarray,
    y_idx: np.ndarray,
    n_classes: int,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
    criterion: str,
) -> Optional[_SplitResult]:
    """Exact best split over the candidate features (sorted prefix-sum scan)."""
    n = X.shape[0]
    impurity_fn = _gini_from_counts if criterion == "gini" else _entropy_from_counts
    parent_counts = np.bincount(y_idx, minlength=n_classes).astype(np.float64)
    parent_impurity = impurity_fn(parent_counts, float(n))
    best: Optional[_SplitResult] = None
    for f in feature_indices:
        order = np.argsort(X[:, f], kind="mergesort")
        values = X[order, f]
        labels = y_idx[order]
        # prefix class counts: counts[i, c] = #{labels[:i] == c}
        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), labels] = 1.0
        prefix = np.cumsum(onehot, axis=0)
        # candidate cut between position i-1 and i wherever the value changes
        diff = np.flatnonzero(values[1:] != values[:-1]) + 1
        if diff.size == 0:
            continue
        valid = diff[(diff >= min_samples_leaf) & (n - diff >= min_samples_leaf)]
        if valid.size == 0:
            continue
        left_counts = prefix[valid - 1]
        right_counts = parent_counts - left_counts
        left_n = valid.astype(np.float64)
        right_n = n - left_n
        if criterion == "gini":
            left_imp = 1.0 - np.sum((left_counts / left_n[:, None]) ** 2, axis=1)
            right_imp = 1.0 - np.sum((right_counts / right_n[:, None]) ** 2, axis=1)
        else:
            with np.errstate(divide="ignore", invalid="ignore"):
                pl = left_counts / left_n[:, None]
                pr = right_counts / right_n[:, None]
                left_imp = -np.nansum(np.where(pl > 0, pl * np.log2(pl), 0.0), axis=1)
                right_imp = -np.nansum(np.where(pr > 0, pr * np.log2(pr), 0.0), axis=1)
        weighted = (left_n * left_imp + right_n * right_imp) / n
        gains = parent_impurity - weighted
        k = int(np.argmax(gains))
        if gains[k] <= 1e-12:
            continue
        cut = valid[k]
        threshold = 0.5 * (values[cut - 1] + values[cut])
        if best is None or gains[k] > best.gain:
            best = _SplitResult(
                feature=int(f),
                threshold=float(threshold),
                gain=float(gains[k]),
                left_mask=X[:, f] <= threshold,
            )
    return best


class DecisionTreeClassifier(Classifier):
    """CART classifier (gini or entropy) with depth and leaf-size controls.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until pure or leaf-size limited.
    min_samples_split:
        Minimum samples a node needs to be considered for splitting.
    min_samples_leaf:
        Minimum samples each child must retain.
    criterion:
        ``"gini"`` or ``"entropy"``.
    max_features:
        If set, the number of features sampled (without replacement) at every
        node — the randomisation that powers the random forest.
    seed:
        RNG seed for the per-node feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        criterion: str = "gini",
        max_features: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self._record_params(locals())
        if criterion not in {"gini", "entropy"}:
            raise ValueError(f"unknown criterion {criterion!r}")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid leaf/split minimums")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.criterion = criterion
        self.max_features = max_features
        self.seed = seed
        self.nodes_: List[_Node] = []
        self.classes_ = np.empty(0)
        self.n_features_: int = 0
        self._flat: Optional[FlatTree] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X, y = check_Xy(X, y)
        self.classes_, y_idx = encode_labels(y)
        self.n_features_ = X.shape[1]
        n_classes = len(self.classes_)
        rng = np.random.default_rng(self.seed)
        self.nodes_ = []
        self._flat = None
        self._grow(X, y_idx, n_classes, depth=0, rng=rng)
        self._flat = FlatTree.from_nodes(self.nodes_)
        return self

    @property
    def flat_(self) -> FlatTree:
        """The compiled flat-array form (built on fit/load, cached)."""
        if not self.nodes_:
            raise RuntimeError("model used before fit()")
        if self._flat is None or self._flat.n_nodes != len(self.nodes_):
            self._flat = FlatTree.from_nodes(self.nodes_)
        return self._flat

    def _grow(
        self,
        X: np.ndarray,
        y_idx: np.ndarray,
        n_classes: int,
        depth: int,
        rng: np.random.Generator,
    ) -> int:
        node_id = len(self.nodes_)
        counts = np.bincount(y_idx, minlength=n_classes).astype(np.float64)
        node = _Node(value=counts / counts.sum(), n_samples=len(y_idx))
        self.nodes_.append(node)
        depth_ok = self.max_depth is None or depth < self.max_depth
        if (
            depth_ok
            and len(y_idx) >= self.min_samples_split
            and np.count_nonzero(counts) > 1
        ):
            if self.max_features is not None and self.max_features < X.shape[1]:
                feats = rng.choice(X.shape[1], size=self.max_features, replace=False)
            else:
                feats = np.arange(X.shape[1])
            split = _best_split_classification(
                X, y_idx, n_classes, feats, self.min_samples_leaf, self.criterion
            )
            if split is not None:
                left_mask = split.left_mask
                node.feature = split.feature
                node.threshold = split.threshold
                node.left = self._grow(
                    X[left_mask], y_idx[left_mask], n_classes, depth + 1, rng
                )
                node.right = self._grow(
                    X[~left_mask], y_idx[~left_mask], n_classes, depth + 1, rng
                )
        return node_id

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.nodes_:
            raise RuntimeError("model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected (n, {self.n_features_}) input, got {X.shape}"
            )
        return self.flat_.predict_value(X)

    def predict_proba_recursive(self, X: np.ndarray) -> np.ndarray:
        """Recursive reference walk — kept only as the equivalence oracle.

        The flat kernel must agree with this bitwise; the property tests
        and ``benchmarks/bench_inference.py`` are its only callers.
        """
        if not self.nodes_:
            raise RuntimeError("model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected (n, {self.n_features_}) input, got {X.shape}"
            )
        out = np.empty((X.shape[0], len(self.classes_)))
        self._route(X, np.arange(X.shape[0]), 0, out)
        return out

    def _route(
        self, X: np.ndarray, idx: np.ndarray, node_id: int, out: np.ndarray
    ) -> None:
        node = self.nodes_[node_id]
        if node.is_leaf:
            out[idx] = node.value
            return
        go_left = X[idx, node.feature] <= node.threshold
        if go_left.any():
            self._route(X, idx[go_left], node.left, out)
        if (~go_left).any():
            self._route(X, idx[~go_left], node.right, out)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree (root = 0)."""
        if not self.nodes_:
            return 0

        def walk(node_id: int) -> int:
            node = self.nodes_[node_id]
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(0)

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes in the fitted tree."""
        return sum(1 for node in self.nodes_ if node.is_leaf)


class DecisionTreeRegressor:
    """Variance-reduction CART regressor (weak learner for boosting).

    Minimal interface: ``fit(X, residuals)`` / ``predict(X)``.  Supports the
    leaf-wise ("best-first", LightGBM-like) and level-wise (depth-first,
    XGBoost-like) growth strategies via ``growth``.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        max_leaves: Optional[int] = None,
        growth: str = "level",
        l2: float = 0.0,
        seed: int = 0,
    ) -> None:
        if growth not in {"level", "leaf"}:
            raise ValueError(f"unknown growth {growth!r}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_leaves = max_leaves
        self.growth = growth
        self.l2 = l2
        self.seed = seed
        self.nodes_: List[_Node] = []
        self._flat: Optional[FlatTree] = None

    def _leaf_value(self, residuals: np.ndarray, hessian: np.ndarray) -> float:
        return float(residuals.sum() / (hessian.sum() + self.l2))

    def _best_split(
        self, X: np.ndarray, g: np.ndarray, h: np.ndarray
    ) -> Optional[_SplitResult]:
        """Best squared-error (Newton gain) split over all features."""
        n = X.shape[0]
        g_total, h_total = g.sum(), h.sum()
        parent_score = g_total * g_total / (h_total + self.l2)
        best: Optional[_SplitResult] = None
        for f in range(X.shape[1]):
            order = np.argsort(X[:, f], kind="mergesort")
            values = X[order, f]
            g_prefix = np.cumsum(g[order])
            h_prefix = np.cumsum(h[order])
            diff = np.flatnonzero(values[1:] != values[:-1]) + 1
            if diff.size == 0:
                continue
            valid = diff[
                (diff >= self.min_samples_leaf) & (n - diff >= self.min_samples_leaf)
            ]
            if valid.size == 0:
                continue
            gl = g_prefix[valid - 1]
            hl = h_prefix[valid - 1]
            gr = g_total - gl
            hr = h_total - hl
            gains = (
                gl * gl / (hl + self.l2)
                + gr * gr / (hr + self.l2)
                - parent_score
            )
            k = int(np.argmax(gains))
            if gains[k] <= 1e-12:
                continue
            cut = valid[k]
            threshold = 0.5 * (values[cut - 1] + values[cut])
            if best is None or gains[k] > best.gain:
                best = _SplitResult(
                    feature=int(f),
                    threshold=float(threshold),
                    gain=float(gains[k]),
                    left_mask=X[:, f] <= threshold,
                )
        return best

    def fit(
        self,
        X: np.ndarray,
        gradients: np.ndarray,
        hessians: Optional[np.ndarray] = None,
    ) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        g = np.asarray(gradients, dtype=np.float64)
        h = (
            np.ones_like(g)
            if hessians is None
            else np.asarray(hessians, dtype=np.float64)
        )
        self.nodes_ = []
        self._flat = None
        if self.growth == "level":
            self._grow_level(X, g, h, depth=0)
        else:
            self._grow_leafwise(X, g, h)
        self._flat = FlatTree.from_nodes(self.nodes_)
        return self

    @property
    def flat_(self) -> FlatTree:
        """The compiled flat-array form (built on fit/load, cached)."""
        if not self.nodes_:
            raise RuntimeError("model used before fit()")
        if self._flat is None or self._flat.n_nodes != len(self.nodes_):
            self._flat = FlatTree.from_nodes(self.nodes_)
        return self._flat

    def _grow_level(
        self, X: np.ndarray, g: np.ndarray, h: np.ndarray, depth: int
    ) -> int:
        node_id = len(self.nodes_)
        node = _Node(value=np.array([self._leaf_value(g, h)]), n_samples=len(g))
        self.nodes_.append(node)
        if depth < self.max_depth and len(g) >= 2 * self.min_samples_leaf:
            split = self._best_split(X, g, h)
            if split is not None:
                mask = split.left_mask
                node.feature = split.feature
                node.threshold = split.threshold
                node.left = self._grow_level(X[mask], g[mask], h[mask], depth + 1)
                node.right = self._grow_level(
                    X[~mask], g[~mask], h[~mask], depth + 1
                )
        return node_id

    def _grow_leafwise(self, X: np.ndarray, g: np.ndarray, h: np.ndarray) -> None:
        """Best-first growth: always expand the leaf with the largest gain."""
        max_leaves = self.max_leaves or (2**self.max_depth)
        root = _Node(value=np.array([self._leaf_value(g, h)]), n_samples=len(g))
        self.nodes_.append(root)
        # frontier entries: (node_id, row index array, depth, cached split)
        idx_all = np.arange(X.shape[0])
        frontier = [(0, idx_all, 0, self._best_split(X, g, h))]
        n_leaves = 1
        while n_leaves < max_leaves:
            candidates = [f for f in frontier if f[3] is not None]
            if not candidates:
                break
            best_i = max(range(len(candidates)), key=lambda i: candidates[i][3].gain)
            node_id, idx, depth, split = candidates[best_i]
            frontier.remove(candidates[best_i])
            mask = split.left_mask
            left_idx, right_idx = idx[mask], idx[~mask]
            node = self.nodes_[node_id]
            node.feature = split.feature
            node.threshold = split.threshold
            for child_idx in (left_idx, right_idx):
                child_id = len(self.nodes_)
                gc, hc = g[child_idx], h[child_idx]
                child = _Node(
                    value=np.array([self._leaf_value(gc, hc)]),
                    n_samples=len(child_idx),
                )
                self.nodes_.append(child)
                if node.left < 0:
                    node.left = child_id
                else:
                    node.right = child_id
                child_split = None
                if (
                    depth + 1 < self.max_depth
                    and len(child_idx) >= 2 * self.min_samples_leaf
                ):
                    child_split = self._best_split(X[child_idx], gc, hc)
                frontier.append((child_id, child_idx, depth + 1, child_split))
            n_leaves += 1

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.nodes_:
            raise RuntimeError("model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        return self.flat_.predict_value(X)[:, 0]

    def predict_recursive(self, X: np.ndarray) -> np.ndarray:
        """Recursive reference walk (equivalence oracle; see classifier)."""
        if not self.nodes_:
            raise RuntimeError("model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(X.shape[0])
        self._route(X, np.arange(X.shape[0]), 0, out)
        return out

    def _route(
        self, X: np.ndarray, idx: np.ndarray, node_id: int, out: np.ndarray
    ) -> None:
        node = self.nodes_[node_id]
        if node.is_leaf:
            out[idx] = node.value[0]
            return
        go_left = X[idx, node.feature] <= node.threshold
        if go_left.any():
            self._route(X, idx[go_left], node.left, out)
        if (~go_left).any():
            self._route(X, idx[~go_left], node.right, out)
